//! Hand-rolled argument parsing for `recipe-mine` (no external parser
//! dependency; the surface is small and stable).

use std::collections::HashMap;
use std::fmt;

/// A parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `train --out <path> [--recipes N] [--seed S] [--threads T]
    /// [--trace] [--metrics-out PATH] [--trace-out PATH]
    /// [--trace-sample R]`
    Train {
        /// Artifact output path.
        out: String,
        /// Corpus size to train on.
        recipes: usize,
        /// Corpus/training seed.
        seed: u64,
        /// Worker threads (0 = `RECIPE_THREADS` env / detected cores).
        threads: usize,
        /// Observability flags (`--trace`, `--metrics-out`,
        /// `--trace-out`, `--trace-sample`).
        obs: ObsArgs,
    },
    /// `extract --model <path> [--threads T] [--no-cache] [--quantized]
    /// [--trace] [--metrics-out PATH] [--trace-out PATH]
    /// [--trace-sample R] [--explain] <phrase>...`
    Extract {
        /// Trained artifact path (`.json` pipeline or binary `.rma`).
        model: String,
        /// Ingredient phrases to extract.
        phrases: Vec<String>,
        /// Worker threads (0 = `RECIPE_THREADS` env / detected cores).
        threads: usize,
        /// Disable the phrase-level extraction cache.
        no_cache: bool,
        /// Decode with the i16 quantized kernels (`.rma` models only).
        quantized: bool,
        /// Observability flags, including `--explain`.
        obs: ObsArgs,
    },
    /// `compile --out <model.rma> [--model <model.json>] [--recipes N]
    /// [--seed S] [--threads T]`: write a zero-copy binary artifact from
    /// an existing JSON pipeline (or a freshly trained one).
    Compile {
        /// Existing JSON pipeline to compile; `None` trains fresh.
        model: Option<String>,
        /// Binary artifact output path.
        out: String,
        /// Corpus size when training fresh.
        recipes: usize,
        /// Corpus/training seed when training fresh.
        seed: u64,
        /// Worker threads (0 = `RECIPE_THREADS` env / detected cores).
        threads: usize,
    },
    /// `mine --model <path> [--threads T] [--no-cache] [--trace]
    /// [--metrics-out PATH] [--trace-out PATH] [--trace-sample R]
    /// [--explain] <recipe.txt>...`
    Mine {
        /// Trained artifact path.
        model: String,
        /// Recipe text files to mine.
        files: Vec<String>,
        /// Worker threads (0 = `RECIPE_THREADS` env / detected cores).
        threads: usize,
        /// Disable the phrase-level extraction cache.
        no_cache: bool,
        /// Observability flags, including `--explain`.
        obs: ObsArgs,
    },
    /// `explain --model <path> [--threads T] <phrase>...`: extract each
    /// phrase with provenance recording on and print the per-decision
    /// trail (Viterbi margins, cache origin, dictionary votes).
    Explain {
        /// Trained artifact path.
        model: String,
        /// Ingredient phrases to explain.
        phrases: Vec<String>,
        /// Worker threads (0 = `RECIPE_THREADS` env / detected cores).
        threads: usize,
    },
    /// `serve --model <path> [--addr HOST:PORT] [--threads T]
    /// [--quantized] [--queue-cap N] [--batch-max B]
    /// [--batch-window-us U] [--no-monitoring] [--no-profiling]
    /// [--drift-sample N]
    /// [--keepalive-max-requests N] [--keepalive-idle-ms MS]
    /// [--slo-availability R] [--slo-latency-ms MS]`:
    /// run the long-lived HTTP serving layer over the model (see
    /// `crates/serve`).
    Serve {
        /// Trained artifact path (`.json` pipeline or binary `.rma`).
        model: String,
        /// Bind address (`host:port`; port 0 picks an ephemeral port).
        addr: String,
        /// Worker shards (0 = `RECIPE_THREADS` env / detected cores).
        threads: usize,
        /// Decode with the i16 quantized kernels (`.rma` models only).
        quantized: bool,
        /// Bounded request-queue capacity (admission control depth).
        queue_cap: usize,
        /// Max requests drained into one micro-batch.
        batch_max: usize,
        /// Micro-batch fill window in microseconds.
        batch_window_us: u64,
        /// Collect windowed metrics, SLO outcomes, slow-request
        /// exemplars and drift samples (`--no-monitoring` disables).
        monitoring: bool,
        /// Attribute per-request stage costs on the always-on request
        /// profiler behind `/admin/profile` (`--no-profiling`
        /// disables).
        profiling: bool,
        /// Sample every Nth `/extract` request for drift scoring
        /// (`0` disables sampling).
        drift_sample: u64,
        /// Requests served per keep-alive connection before close.
        keepalive_max_requests: u32,
        /// Idle milliseconds before a parked keep-alive connection is
        /// reaped.
        keepalive_idle_ms: u64,
        /// Availability SLO target in `(0.0, 1.0)` (good requests /
        /// total), reflected in `/admin/slo`.
        slo_availability: f64,
        /// Per-request latency SLO threshold in milliseconds; requests
        /// slower than this count against the latency objective.
        slo_latency_ms: f64,
    },
    /// `bench-diff [--history PATH] [--benchmark NAME] [--warn-pct P]
    /// [--fail-pct P] [--smoke]`: compare the latest bench run in the
    /// history file against its baseline and exit nonzero on regression.
    BenchDiff(BenchDiffOptions),
    /// `monitor [--addr HOST:PORT] [--interval-ms N] [--count N]
    /// [--out PATH] [--once]`: poll a running server's `/metrics`,
    /// `/admin/slo` and `/admin/profile`, render a live delta view,
    /// and optionally append one JSONL snapshot per poll.
    Monitor(MonitorOptions),
    /// `profile <profile.json> [--fold] [--diff <other.json>]
    /// [--top N]`: validate a profile document written by
    /// `--profile-out`, render its stage attribution (or emit
    /// collapsed-stack folded lines with `--fold`), and optionally
    /// diff it against a second profile, ranking regressed stages.
    Profile(ProfileOptions),
    /// `generate --out <dir> [--recipes N] [--seed S]`
    Generate {
        /// Output directory for the recipe text files + corpus.jsonl.
        out: String,
        /// Number of recipes.
        recipes: usize,
        /// Corpus seed.
        seed: u64,
    },
    /// `lint [--format human|json|sarif] [--deny-warnings] [--deny-new] ...`
    Lint(LintOptions),
    /// `stats <metrics.json>`: validate and pretty-print a telemetry
    /// document written by `--metrics-out`.
    Stats {
        /// Path to the telemetry JSON document.
        path: String,
    },
    /// `help`
    Help,
}

/// Observability flags shared by `train`, `extract`, and `mine`.
/// Everything here is additive: none of these flags may change the
/// `results` block of the command's output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsArgs {
    /// Enable tracing and attach a `telemetry` block to the output.
    pub trace: bool,
    /// Write the full telemetry document to this path.
    pub metrics_out: Option<String>,
    /// Write a Chrome-trace-format event timeline to this path
    /// (implies telemetry collection).
    pub trace_out: Option<String>,
    /// Deterministic span-event sample rate in `0.0..=1.0`
    /// (default 1.0 = every span).
    pub trace_sample: Option<f64>,
    /// Attach a `provenance` block (per-token margins, cache origin,
    /// dictionary votes) to the output. `extract`/`mine` only.
    pub explain: bool,
    /// Write a collapsed-stack profile document (per-stage tick
    /// attribution over the span sites) to this path (implies
    /// telemetry collection).
    pub profile_out: Option<String>,
}

/// Options for the `bench-diff` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiffOptions {
    /// Bench history file (JSONL, one run per line).
    pub history: String,
    /// Only compare runs of this benchmark.
    pub benchmark: Option<String>,
    /// Warn threshold as a percent slowdown (default 5, smoke 50).
    pub warn_pct: Option<f64>,
    /// Fail threshold as a percent slowdown (default 10, smoke 200).
    pub fail_pct: Option<f64>,
    /// Use the loose smoke-run thresholds (CI runners are noisy).
    pub smoke: bool,
}

impl Default for BenchDiffOptions {
    fn default() -> Self {
        BenchDiffOptions {
            history: "results/bench_history.jsonl".to_string(),
            benchmark: None,
            warn_pct: None,
            fail_pct: None,
            smoke: false,
        }
    }
}

/// Options for the `monitor` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorOptions {
    /// Server address to poll (`host:port`).
    pub addr: String,
    /// Poll interval in milliseconds.
    pub interval_ms: u64,
    /// Stop after this many polls (`None` = until the server goes away).
    pub count: Option<u64>,
    /// Append one JSONL snapshot per poll to this path.
    pub out: Option<String>,
    /// Poll exactly once and exit (CI smoke probe; same as `--count 1`).
    pub once: bool,
}

impl Default for MonitorOptions {
    fn default() -> Self {
        MonitorOptions {
            addr: "127.0.0.1:7878".to_string(),
            interval_ms: 2000,
            count: None,
            out: None,
            once: false,
        }
    }
}

/// Options for the `profile` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOptions {
    /// Profile JSON document to load (written by `--profile-out`).
    pub path: String,
    /// Emit collapsed-stack folded lines (`a;b;c N`) instead of the
    /// human table.
    pub fold: bool,
    /// Diff against this second profile (the "after" side), ranking
    /// regressed stages.
    pub diff: Option<String>,
    /// Stages shown in a diff (most-regressed first).
    pub top: usize,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            path: String::new(),
            fold: false,
            diff: None,
            top: 5,
        }
    }
}

/// Options for the `lint` subcommand (see [`crate::commands::run`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LintOptions {
    /// Output format: `"human"` (rustc-style) or `"json"`.
    pub format: String,
    /// Treat warning-level findings as errors.
    pub deny_warnings: bool,
    /// Lint a saved artifact instead of training a fresh pipeline.
    pub model: Option<String>,
    /// Size of the generated corpus to lint (and train on).
    pub recipes: usize,
    /// Corpus/training seed.
    pub seed: u64,
    /// Run the source scanner over this directory (`--workspace [ROOT]`,
    /// default `.` when the flag is given without a value).
    pub workspace: Option<String>,
    /// Rule codes to silence (`--allow RA301,RA107`).
    pub allow: Vec<String>,
    /// Rule codes to promote to errors (`--deny RA002`).
    pub deny: Vec<String>,
    /// Print the rule catalog and exit.
    pub list_rules: bool,
    /// Worker threads (0 = `RECIPE_THREADS` env / detected cores).
    pub threads: usize,
    /// Fail only on diagnostics absent from the baseline file.
    pub deny_new: bool,
    /// Baseline path override (`--baseline PATH`); defaults to
    /// `lint_baseline.json` under the workspace root.
    pub baseline: Option<String>,
    /// Regenerate the baseline from this run's findings and exit.
    pub write_baseline: bool,
    /// Run only the source passes (`RA3xx`/`RA4xx`): no corpus
    /// generation, no training, no invariant audits.
    pub source_only: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            format: "human".to_string(),
            deny_warnings: false,
            model: None,
            recipes: 120,
            seed: 42,
            workspace: None,
            allow: Vec::new(),
            deny: Vec::new(),
            list_rules: false,
            threads: 0,
            deny_new: false,
            baseline: None,
            write_baseline: false,
            source_only: false,
        }
    }
}

/// Result of [`parse_args`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// The subcommand to run.
    pub command: Command,
}

/// Errors produced by argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    Missing,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A required flag was not supplied.
    MissingFlag(&'static str),
    /// A flag value failed to parse.
    BadValue(&'static str, String),
    /// Positional arguments were required but absent.
    MissingPositional(&'static str),
    /// A flag that needs a value appeared without one.
    MissingValue(&'static str),
    /// An argument the subcommand does not understand.
    UnexpectedArg(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::Missing => write!(f, "no subcommand; try `recipe-mine help`"),
            ArgsError::UnknownCommand(c) => write!(f, "unknown subcommand {c:?}"),
            ArgsError::MissingFlag(flag) => write!(f, "missing required flag --{flag}"),
            ArgsError::BadValue(flag, v) => write!(f, "bad value for --{flag}: {v:?}"),
            ArgsError::MissingPositional(what) => write!(f, "expected at least one {what}"),
            ArgsError::MissingValue(flag) => write!(f, "flag --{flag} requires a value"),
            ArgsError::UnexpectedArg(arg) => write!(f, "unexpected argument {arg:?}"),
        }
    }
}

impl std::error::Error for ArgsError {}

/// Split args into `--flag value` pairs plus positionals.
fn split_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (flags, positional)
}

/// Parse a CLI invocation (without the program name).
pub fn parse_args(args: &[String]) -> Result<ParsedArgs, ArgsError> {
    let Some(cmd) = args.first() else {
        return Err(ArgsError::Missing);
    };
    // `--no-cache`, `--trace`, `--explain`, and `--quantized` are
    // boolean, so they must be stripped before `split_flags` pairs every
    // `--flag` with the following token. `--no-cache` and `--explain`
    // are accepted by `extract` and `mine`; `--trace` also by `train`;
    // `--quantized` by `extract` and `serve`; elsewhere all four are
    // explicit errors.
    let mut no_cache = false;
    let mut trace = false;
    let mut explain = false;
    let mut quantized = false;
    let mut no_monitoring = false;
    let mut no_profiling = false;
    let rest: Vec<String> = args[1..]
        .iter()
        .filter(|a| match a.as_str() {
            "--no-cache" => {
                no_cache = true;
                false
            }
            "--trace" => {
                trace = true;
                false
            }
            "--explain" => {
                explain = true;
                false
            }
            "--quantized" => {
                quantized = true;
                false
            }
            "--no-monitoring" => {
                no_monitoring = true;
                false
            }
            "--no-profiling" => {
                no_profiling = true;
                false
            }
            _ => true,
        })
        .cloned()
        .collect();
    if no_cache && !matches!(cmd.as_str(), "extract" | "mine") {
        return Err(ArgsError::UnexpectedArg("--no-cache".to_string()));
    }
    if trace && !matches!(cmd.as_str(), "train" | "extract" | "mine") {
        return Err(ArgsError::UnexpectedArg("--trace".to_string()));
    }
    if explain && !matches!(cmd.as_str(), "extract" | "mine") {
        return Err(ArgsError::UnexpectedArg("--explain".to_string()));
    }
    if quantized && !matches!(cmd.as_str(), "extract" | "serve") {
        return Err(ArgsError::UnexpectedArg("--quantized".to_string()));
    }
    if no_monitoring && cmd.as_str() != "serve" {
        return Err(ArgsError::UnexpectedArg("--no-monitoring".to_string()));
    }
    if no_profiling && cmd.as_str() != "serve" {
        return Err(ArgsError::UnexpectedArg("--no-profiling".to_string()));
    }
    let rest = rest.as_slice();
    let (flags, positional) = split_flags(rest);
    let command = match cmd.as_str() {
        "help" | "--help" | "-h" => Command::Help,
        "train" => {
            let out = flags
                .get("out")
                .cloned()
                .ok_or(ArgsError::MissingFlag("out"))?;
            let recipes = match flags.get("recipes") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("recipes", v.clone()))?,
                None => 1000,
            };
            let seed = match flags.get("seed") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("seed", v.clone()))?,
                None => 42,
            };
            let threads = parse_threads(&flags)?;
            Command::Train {
                out,
                recipes,
                seed,
                threads,
                obs: parse_obs(&flags, trace, explain)?,
            }
        }
        "generate" => {
            let out = flags
                .get("out")
                .cloned()
                .ok_or(ArgsError::MissingFlag("out"))?;
            let recipes = match flags.get("recipes") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("recipes", v.clone()))?,
                None => 100,
            };
            let seed = match flags.get("seed") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("seed", v.clone()))?,
                None => 42,
            };
            Command::Generate { out, recipes, seed }
        }
        "extract" => {
            let model = flags
                .get("model")
                .cloned()
                .ok_or(ArgsError::MissingFlag("model"))?;
            if positional.is_empty() {
                return Err(ArgsError::MissingPositional("phrase"));
            }
            Command::Extract {
                model,
                phrases: positional,
                threads: parse_threads(&flags)?,
                no_cache,
                quantized,
                obs: parse_obs(&flags, trace, explain)?,
            }
        }
        "compile" => {
            let out = flags
                .get("out")
                .cloned()
                .ok_or(ArgsError::MissingFlag("out"))?;
            let recipes = match flags.get("recipes") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("recipes", v.clone()))?,
                None => 1000,
            };
            let seed = match flags.get("seed") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("seed", v.clone()))?,
                None => 42,
            };
            Command::Compile {
                model: flags.get("model").cloned(),
                out,
                recipes,
                seed,
                threads: parse_threads(&flags)?,
            }
        }
        "explain" => {
            let model = flags
                .get("model")
                .cloned()
                .ok_or(ArgsError::MissingFlag("model"))?;
            if positional.is_empty() {
                return Err(ArgsError::MissingPositional("phrase"));
            }
            Command::Explain {
                model,
                phrases: positional,
                threads: parse_threads(&flags)?,
            }
        }
        "mine" => {
            let model = flags
                .get("model")
                .cloned()
                .ok_or(ArgsError::MissingFlag("model"))?;
            if positional.is_empty() {
                return Err(ArgsError::MissingPositional("recipe file"));
            }
            Command::Mine {
                model,
                files: positional,
                threads: parse_threads(&flags)?,
                no_cache,
                obs: parse_obs(&flags, trace, explain)?,
            }
        }
        "serve" => {
            let model = flags
                .get("model")
                .cloned()
                .ok_or(ArgsError::MissingFlag("model"))?;
            let addr = flags
                .get("addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7878".to_string());
            let queue_cap = match flags.get("queue-cap") {
                Some(v) => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| ArgsError::BadValue("queue-cap", v.clone()))?;
                    if n == 0 {
                        return Err(ArgsError::BadValue("queue-cap", v.clone()));
                    }
                    n
                }
                None => 128,
            };
            let batch_max = match flags.get("batch-max") {
                Some(v) => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| ArgsError::BadValue("batch-max", v.clone()))?;
                    if n == 0 {
                        return Err(ArgsError::BadValue("batch-max", v.clone()));
                    }
                    n
                }
                None => 8,
            };
            let batch_window_us = match flags.get("batch-window-us") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("batch-window-us", v.clone()))?,
                None => 500,
            };
            let drift_sample = match flags.get("drift-sample") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("drift-sample", v.clone()))?,
                None => 8,
            };
            let keepalive_max_requests = match flags.get("keepalive-max-requests") {
                Some(v) => {
                    let n: u32 = v
                        .parse()
                        .map_err(|_| ArgsError::BadValue("keepalive-max-requests", v.clone()))?;
                    if n == 0 {
                        return Err(ArgsError::BadValue("keepalive-max-requests", v.clone()));
                    }
                    n
                }
                None => 64,
            };
            let keepalive_idle_ms = match flags.get("keepalive-idle-ms") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("keepalive-idle-ms", v.clone()))?,
                None => 5_000,
            };
            let slo_availability = match flags.get("slo-availability") {
                Some(v) => {
                    let r: f64 = v
                        .parse()
                        .map_err(|_| ArgsError::BadValue("slo-availability", v.clone()))?;
                    // 0.0 and 1.0 are excluded: a 0-target objective is
                    // vacuous and a 1.0 target makes every error an
                    // infinite burn rate.
                    if !r.is_finite() || r <= 0.0 || r >= 1.0 {
                        return Err(ArgsError::BadValue("slo-availability", v.clone()));
                    }
                    r
                }
                None => 0.999,
            };
            let slo_latency_ms = match flags.get("slo-latency-ms") {
                Some(v) => {
                    let ms: f64 = v
                        .parse()
                        .map_err(|_| ArgsError::BadValue("slo-latency-ms", v.clone()))?;
                    if !ms.is_finite() || ms <= 0.0 {
                        return Err(ArgsError::BadValue("slo-latency-ms", v.clone()));
                    }
                    ms
                }
                None => 250.0,
            };
            Command::Serve {
                model,
                addr,
                threads: parse_threads(&flags)?,
                quantized,
                queue_cap,
                batch_max,
                batch_window_us,
                monitoring: !no_monitoring,
                profiling: !no_profiling,
                drift_sample,
                keepalive_max_requests,
                keepalive_idle_ms,
                slo_availability,
                slo_latency_ms,
            }
        }
        // `lint` and `bench-diff` have boolean flags, so they parse
        // `rest` themselves instead of going through the `--flag value`
        // pairing of `split_flags`.
        "lint" => Command::Lint(parse_lint(rest)?),
        "bench-diff" => Command::BenchDiff(parse_bench_diff(rest)?),
        "monitor" => Command::Monitor(parse_monitor(rest)?),
        "profile" => Command::Profile(parse_profile(rest)?),
        "stats" => {
            let Some(path) = positional.first() else {
                return Err(ArgsError::MissingPositional("metrics file"));
            };
            Command::Stats { path: path.clone() }
        }
        other => return Err(ArgsError::UnknownCommand(other.to_string())),
    };
    Ok(ParsedArgs { command })
}

/// Parse the optional `--threads` flag (0 = unset: fall back to the
/// `RECIPE_THREADS` environment variable, then detected cores).
fn parse_threads(flags: &HashMap<String, String>) -> Result<usize, ArgsError> {
    match flags.get("threads") {
        Some(v) => v
            .parse()
            .map_err(|_| ArgsError::BadValue("threads", v.clone())),
        None => Ok(0),
    }
}

/// Resolve the shared observability flags for `train`/`extract`/`mine`.
/// `trace` and `explain` were stripped as booleans before `split_flags`.
fn parse_obs(
    flags: &HashMap<String, String>,
    trace: bool,
    explain: bool,
) -> Result<ObsArgs, ArgsError> {
    let trace_sample = match flags.get("trace-sample") {
        Some(v) => {
            let rate: f64 = v
                .parse()
                .map_err(|_| ArgsError::BadValue("trace-sample", v.clone()))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(ArgsError::BadValue("trace-sample", v.clone()));
            }
            Some(rate)
        }
        None => None,
    };
    Ok(ObsArgs {
        trace,
        metrics_out: flags.get("metrics-out").cloned(),
        trace_out: flags.get("trace-out").cloned(),
        trace_sample,
        explain,
        profile_out: flags.get("profile-out").cloned(),
    })
}

fn parse_bench_diff(rest: &[String]) -> Result<BenchDiffOptions, ArgsError> {
    let mut opts = BenchDiffOptions::default();
    let mut i = 0usize;
    while i < rest.len() {
        match rest[i].as_str() {
            "--smoke" => {
                opts.smoke = true;
                i += 1;
            }
            flag @ ("--history" | "--benchmark" | "--warn-pct" | "--fail-pct") => {
                let name: &'static str = match flag {
                    "--history" => "history",
                    "--benchmark" => "benchmark",
                    "--warn-pct" => "warn-pct",
                    _ => "fail-pct",
                };
                let Some(v) = rest.get(i + 1) else {
                    return Err(ArgsError::MissingValue(name));
                };
                match name {
                    "history" => opts.history = v.clone(),
                    "benchmark" => opts.benchmark = Some(v.clone()),
                    pct => {
                        let parsed: f64 =
                            v.parse().map_err(|_| ArgsError::BadValue(pct, v.clone()))?;
                        if !parsed.is_finite() || parsed < 0.0 {
                            return Err(ArgsError::BadValue(pct, v.clone()));
                        }
                        if pct == "warn-pct" {
                            opts.warn_pct = Some(parsed);
                        } else {
                            opts.fail_pct = Some(parsed);
                        }
                    }
                }
                i += 2;
            }
            other => return Err(ArgsError::UnexpectedArg(other.to_string())),
        }
    }
    Ok(opts)
}

fn parse_monitor(rest: &[String]) -> Result<MonitorOptions, ArgsError> {
    let mut opts = MonitorOptions::default();
    let mut i = 0usize;
    while i < rest.len() {
        match rest[i].as_str() {
            "--once" => {
                opts.once = true;
                i += 1;
            }
            flag @ ("--addr" | "--interval-ms" | "--count" | "--out") => {
                let name: &'static str = match flag {
                    "--addr" => "addr",
                    "--interval-ms" => "interval-ms",
                    "--count" => "count",
                    _ => "out",
                };
                let Some(v) = rest.get(i + 1) else {
                    return Err(ArgsError::MissingValue(name));
                };
                match name {
                    "addr" => opts.addr = v.clone(),
                    "out" => opts.out = Some(v.clone()),
                    "interval-ms" => {
                        opts.interval_ms = v
                            .parse()
                            .map_err(|_| ArgsError::BadValue("interval-ms", v.clone()))?;
                    }
                    _ => {
                        let n: u64 = v
                            .parse()
                            .map_err(|_| ArgsError::BadValue("count", v.clone()))?;
                        if n == 0 {
                            return Err(ArgsError::BadValue("count", v.clone()));
                        }
                        opts.count = Some(n);
                    }
                }
                i += 2;
            }
            other => return Err(ArgsError::UnexpectedArg(other.to_string())),
        }
    }
    Ok(opts)
}

fn parse_profile(rest: &[String]) -> Result<ProfileOptions, ArgsError> {
    let mut opts = ProfileOptions::default();
    let mut i = 0usize;
    while i < rest.len() {
        match rest[i].as_str() {
            "--fold" => {
                opts.fold = true;
                i += 1;
            }
            flag @ ("--diff" | "--top") => {
                let name: &'static str = match flag {
                    "--diff" => "diff",
                    _ => "top",
                };
                let Some(v) = rest.get(i + 1) else {
                    return Err(ArgsError::MissingValue(name));
                };
                match name {
                    "diff" => opts.diff = Some(v.clone()),
                    _ => {
                        let n: usize = v
                            .parse()
                            .map_err(|_| ArgsError::BadValue("top", v.clone()))?;
                        if n == 0 {
                            return Err(ArgsError::BadValue("top", v.clone()));
                        }
                        opts.top = n;
                    }
                }
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(ArgsError::UnexpectedArg(other.to_string()));
            }
            positional => {
                if !opts.path.is_empty() {
                    return Err(ArgsError::UnexpectedArg(positional.to_string()));
                }
                opts.path = positional.to_string();
                i += 1;
            }
        }
    }
    if opts.path.is_empty() {
        return Err(ArgsError::MissingPositional("profile file"));
    }
    Ok(opts)
}

fn parse_lint(rest: &[String]) -> Result<LintOptions, ArgsError> {
    let mut opts = LintOptions::default();
    let mut i = 0usize;
    while i < rest.len() {
        match rest[i].as_str() {
            "--deny-warnings" => {
                opts.deny_warnings = true;
                i += 1;
            }
            "--list-rules" => {
                opts.list_rules = true;
                i += 1;
            }
            "--deny-new" => {
                opts.deny_new = true;
                i += 1;
            }
            "--write-baseline" => {
                opts.write_baseline = true;
                i += 1;
            }
            "--source-only" => {
                opts.source_only = true;
                i += 1;
            }
            "--workspace" => {
                // Optional value: `--workspace path` or bare `--workspace`.
                if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                    opts.workspace = Some(rest[i + 1].clone());
                    i += 2;
                } else {
                    opts.workspace = Some(".".to_string());
                    i += 1;
                }
            }
            flag @ ("--format" | "--model" | "--recipes" | "--seed" | "--threads" | "--allow"
            | "--deny" | "--baseline") => {
                let name: &'static str = match flag {
                    "--format" => "format",
                    "--model" => "model",
                    "--recipes" => "recipes",
                    "--seed" => "seed",
                    "--threads" => "threads",
                    "--allow" => "allow",
                    "--baseline" => "baseline",
                    _ => "deny",
                };
                let Some(v) = rest.get(i + 1) else {
                    return Err(ArgsError::MissingValue(name));
                };
                match name {
                    "format" => {
                        if v != "human" && v != "json" && v != "sarif" {
                            return Err(ArgsError::BadValue("format", v.clone()));
                        }
                        opts.format = v.clone();
                    }
                    "model" => opts.model = Some(v.clone()),
                    "baseline" => opts.baseline = Some(v.clone()),
                    "recipes" => {
                        opts.recipes = v
                            .parse()
                            .map_err(|_| ArgsError::BadValue("recipes", v.clone()))?;
                    }
                    "seed" => {
                        opts.seed = v
                            .parse()
                            .map_err(|_| ArgsError::BadValue("seed", v.clone()))?;
                    }
                    "threads" => {
                        opts.threads = v
                            .parse()
                            .map_err(|_| ArgsError::BadValue("threads", v.clone()))?;
                    }
                    "allow" => opts
                        .allow
                        .extend(v.split(',').filter(|s| !s.is_empty()).map(String::from)),
                    _ => opts
                        .deny
                        .extend(v.split(',').filter(|s| !s.is_empty()).map(String::from)),
                }
                i += 2;
            }
            other => return Err(ArgsError::UnexpectedArg(other.to_string())),
        }
    }
    Ok(opts)
}

/// Usage text for `help`.
pub const USAGE: &str = "\
recipe-mine — named-entity based recipe modelling

USAGE:
  recipe-mine generate --out <dir> [--recipes N] [--seed S]
  recipe-mine train   --out <model.json> [--recipes N] [--seed S] [--threads T]
                      [--trace] [--metrics-out <metrics.json>]
                      [--trace-out <trace.json>] [--trace-sample R]
                      [--profile-out <profile.json>]
  recipe-mine compile --out <model.rma> [--model <model.json>]
                      [--recipes N] [--seed S] [--threads T]
  recipe-mine extract --model <model.json|model.rma> [--threads T]
                      [--no-cache] [--quantized]
                      [--trace] [--metrics-out <metrics.json>]
                      [--trace-out <trace.json>] [--trace-sample R]
                      [--profile-out <profile.json>]
                      [--explain] <phrase>...
  recipe-mine mine    --model <model.json> [--threads T] [--no-cache]
                      [--trace] [--metrics-out <metrics.json>]
                      [--trace-out <trace.json>] [--trace-sample R]
                      [--profile-out <profile.json>]
                      [--explain] <recipe.txt>...
  recipe-mine explain --model <model.json> [--threads T] <phrase>...
  recipe-mine serve   --model <model.json|model.rma> [--addr HOST:PORT]
                      [--threads T] [--quantized] [--queue-cap N]
                      [--batch-max B] [--batch-window-us U]
                      [--no-monitoring] [--no-profiling] [--drift-sample N]
                      [--keepalive-max-requests N] [--keepalive-idle-ms MS]
                      [--slo-availability R] [--slo-latency-ms MS]
  recipe-mine monitor [--addr HOST:PORT] [--interval-ms N] [--count N]
                      [--out <snapshots.jsonl>] [--once]
  recipe-mine profile <profile.json> [--fold] [--diff <other.json>]
                      [--top N]
  recipe-mine stats   <metrics.json>
  recipe-mine bench-diff [--history <bench_history.jsonl>]
                      [--benchmark NAME] [--warn-pct P] [--fail-pct P]
                      [--smoke]
  recipe-mine lint    [--format human|json|sarif] [--deny-warnings]
                      [--model <model.json>] [--recipes N] [--seed S]
                      [--workspace [ROOT]] [--allow CODES] [--deny CODES]
                      [--list-rules] [--threads T] [--source-only]
                      [--deny-new] [--baseline PATH] [--write-baseline]
  recipe-mine help

Parallelism: --threads T sets the worker-thread count for training and
batch extraction (default: the RECIPE_THREADS environment variable, else
the detected core count). Outputs are bit-identical at every value.

Caching: extract and mine memoize per-phrase NER decodes and per-sentence
event extraction in a bounded deterministic cache; --no-cache disables it.
Outputs are byte-identical with the cache on or off.

Telemetry: --trace enables span/metric collection and attaches a
`telemetry` block to the JSON output; --metrics-out PATH additionally
writes the full telemetry document (schema_version, command, telemetry)
to PATH. `recipe-mine stats metrics.json` validates such a document and
renders it for terminals. Telemetry never changes extraction results:
the `results` block is byte-identical with tracing on or off.

Tracing: --trace-out PATH writes an event timeline (span begin/end and
instants, per-thread, monotonic timestamps) in Chrome trace format —
open it in chrome://tracing or Perfetto. --trace-sample R keeps a
deterministic fraction R (0.0..=1.0) of span events when full traces
are too large. --explain attaches a `provenance` block (per-token
Viterbi margins, cache hit/miss origin, dictionary accept/reject votes)
to extract/mine output; `recipe-mine explain` prints the same trail per
phrase without the surrounding pipeline output. None of these flags
change the `results` block.

Profiling: --profile-out PATH attributes wall ticks to every span site
(count, total, and self time per stage path) and writes the profile as
JSON; `recipe-mine profile` renders it, emits flamegraph-ready
collapsed-stack lines (--fold), or ranks regressed stages against a
second profile (--diff). bench-diff prints the same stage ranking when
history runs carry profiles. The server keeps an always-on low-overhead
profiler at GET /admin/profile.

Linting: --source-only runs just the token-accurate source passes
(RA3xx/RA4xx) — no training — so a full-workspace scan finishes in well
under two seconds. --format sarif emits a SARIF 2.1.0 document for code
scanning dashboards. --deny-new fails only on diagnostics whose stable
fingerprint is absent from the baseline file (default
<workspace>/lint_baseline.json, override with --baseline PATH);
--write-baseline regenerates that file from the current findings.

Bench gate: `recipe-mine bench-diff` loads results/bench_history.jsonl
(appended to by the bench binaries), compares each benchmark's newest
run against its earliest comparable baseline, and exits nonzero when a
seconds-valued metric regressed past --fail-pct (default 10%; --smoke
uses 50/200% for noisy CI runners).

generate write a synthetic RecipeDB-like corpus as recipe text files
         (mineable with `mine`) plus corpus.jsonl with gold annotations
train    generate a synthetic RecipeDB-like corpus, train the full
         pipeline (POS tagger, ingredient & instruction NER, parser,
         dictionaries) and save the artifact as JSON
compile  write a zero-copy binary `.rma` artifact holding the compiled
         models (CSR weights, interned feature tables, i16 quantized
         variants) from an existing --model JSON pipeline or a freshly
         trained one; `extract --model x.rma` then cold-starts in
         O(sections) instead of recompiling
extract  print the structured attributes of ingredient phrases as JSON;
         accepts JSON pipelines or compiled `.rma` artifacts
         (--quantized selects the i16 decode kernels, .rma only)
explain  extract phrases with provenance recording on and print the
         decision trail that produced each entry
serve    run the long-lived HTTP/1.1 serving layer: one acceptor plus
         --threads shard-per-core workers micro-batching a bounded
         request queue (503 + Retry-After when full). Endpoints:
         POST /extract, POST /explain, GET /healthz, GET /metrics
         (windowed rates/tails + drift), GET /admin/slo, GET
         /admin/slow, POST /admin/reload (hot-swap), POST
         /admin/shutdown (drain). --no-monitoring turns the live
         observability plane off; --drift-sample N scores every Nth
         extract request against the artifact's drift reference;
         --keepalive-max-requests / --keepalive-idle-ms bound connection
         reuse; --slo-availability / --slo-latency-ms set the SLO
         targets reflected in /admin/slo
monitor  poll a running server's /metrics, /admin/slo and
         /admin/profile over one keep-alive connection, print a delta
         line per poll (rates, windowed tails, SLO level, drift score)
         and optionally append JSONL snapshots (--out); --once polls a
         single time for CI
profile  validate a --profile-out document and render per-stage tick
         attribution; --fold emits collapsed-stack lines (one
         `stage;path N` per line, flamegraph-ready); --diff ranks the
         stages that regressed against a second profile
mine     mine recipe text files (## ingredients / ## instructions
         sections) into the Fig. 1 structure, printed as JSON
stats    validate a --metrics-out telemetry document and render it in a
         human-readable form (stage tree, counters, histograms)
bench-diff compare the latest bench run against its history baseline and
         exit nonzero on regression (the perf gate CI runs)
lint     run the recipe-analyze static checks: cross-crate invariants,
         corpus well-formedness over a generated corpus, artifact health
         over a loaded (--model) or freshly trained pipeline, and an
         optional source scan (--workspace); exits nonzero on any
         error-level finding (--deny-warnings promotes warnings)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_train_with_defaults() {
        let parsed = parse_args(&s(&["train", "--out", "m.json"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Train {
                out: "m.json".into(),
                recipes: 1000,
                seed: 42,
                threads: 0,
                obs: ObsArgs::default(),
            }
        );
    }

    #[test]
    fn parses_train_with_flags_any_order() {
        let parsed = parse_args(&s(&[
            "train",
            "--seed",
            "7",
            "--recipes",
            "250",
            "--out",
            "x",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Train {
                out: "x".into(),
                recipes: 250,
                seed: 7,
                threads: 0,
                obs: ObsArgs::default(),
            }
        );
    }

    #[test]
    fn parses_extract_with_positionals() {
        let parsed = parse_args(&s(&[
            "extract",
            "--model",
            "m.json",
            "2 cups flour",
            "1 egg",
        ]))
        .unwrap();
        match parsed.command {
            Command::Extract {
                model,
                phrases,
                threads,
                no_cache,
                quantized,
                obs,
            } => {
                assert_eq!(model, "m.json");
                assert_eq!(phrases, vec!["2 cups flour", "1 egg"]);
                assert_eq!(threads, 0);
                assert!(!no_cache);
                assert!(!quantized);
                assert_eq!(obs, ObsArgs::default());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_cache_flag_does_not_eat_the_next_token() {
        // `--no-cache` is boolean: the positional after it must survive.
        let parsed = parse_args(&s(&["extract", "--no-cache", "--model", "m", "1 egg"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Extract {
                model: "m".into(),
                phrases: vec!["1 egg".into()],
                threads: 0,
                no_cache: true,
                quantized: false,
                obs: ObsArgs::default(),
            }
        );
        let parsed = parse_args(&s(&["mine", "--model", "m", "--no-cache", "r.txt"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Mine {
                model: "m".into(),
                files: vec!["r.txt".into()],
                threads: 0,
                no_cache: true,
                obs: ObsArgs::default(),
            }
        );
    }

    #[test]
    fn no_cache_flag_rejected_elsewhere() {
        for cmd in [
            vec!["train", "--out", "x", "--no-cache"],
            vec!["generate", "--out", "d", "--no-cache"],
            vec!["lint", "--no-cache"],
        ] {
            assert_eq!(
                parse_args(&s(&cmd)),
                Err(ArgsError::UnexpectedArg("--no-cache".into())),
                "{cmd:?}"
            );
        }
    }

    #[test]
    fn parses_threads_flag() {
        let parsed = parse_args(&s(&["train", "--out", "m.json", "--threads", "4"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Train {
                out: "m.json".into(),
                recipes: 1000,
                seed: 42,
                threads: 4,
                obs: ObsArgs::default(),
            }
        );
        let parsed = parse_args(&s(&["lint", "--threads", "2"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Lint(LintOptions {
                threads: 2,
                ..LintOptions::default()
            })
        );
        assert!(matches!(
            parse_args(&s(&["train", "--out", "x", "--threads", "lots"])),
            Err(ArgsError::BadValue("threads", _))
        ));
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse_args(&[]), Err(ArgsError::Missing));
        assert!(matches!(
            parse_args(&s(&["frobnicate"])),
            Err(ArgsError::UnknownCommand(_))
        ));
        assert_eq!(
            parse_args(&s(&["train"])),
            Err(ArgsError::MissingFlag("out"))
        );
        assert!(matches!(
            parse_args(&s(&["train", "--out", "x", "--recipes", "many"])),
            Err(ArgsError::BadValue("recipes", _))
        ));
        assert_eq!(
            parse_args(&s(&["extract", "--model", "m"])),
            Err(ArgsError::MissingPositional("phrase"))
        );
    }

    #[test]
    fn parses_lint_defaults() {
        let parsed = parse_args(&s(&["lint"])).unwrap();
        assert_eq!(parsed.command, Command::Lint(LintOptions::default()));
    }

    #[test]
    fn parses_lint_boolean_flags_without_eating_values() {
        // `--deny-warnings` is boolean: the following flag must still parse.
        let parsed = parse_args(&s(&["lint", "--deny-warnings", "--format", "json"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Lint(LintOptions {
                deny_warnings: true,
                format: "json".into(),
                ..LintOptions::default()
            })
        );
    }

    #[test]
    fn parses_lint_full_surface() {
        let parsed = parse_args(&s(&[
            "lint",
            "--model",
            "m.json",
            "--recipes",
            "30",
            "--seed",
            "9",
            "--workspace",
            "crates",
            "--allow",
            "RA301,RA107",
            "--deny",
            "RA002",
            "--list-rules",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Lint(LintOptions {
                model: Some("m.json".into()),
                recipes: 30,
                seed: 9,
                workspace: Some("crates".into()),
                allow: vec!["RA301".into(), "RA107".into()],
                deny: vec!["RA002".into()],
                list_rules: true,
                ..LintOptions::default()
            })
        );
    }

    #[test]
    fn parses_lint_baseline_surface() {
        let parsed = parse_args(&s(&[
            "lint",
            "--source-only",
            "--deny-new",
            "--baseline",
            "custom_baseline.json",
            "--format",
            "sarif",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Lint(LintOptions {
                source_only: true,
                deny_new: true,
                baseline: Some("custom_baseline.json".into()),
                format: "sarif".into(),
                ..LintOptions::default()
            })
        );

        let parsed = parse_args(&s(&["lint", "--write-baseline", "--workspace"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Lint(LintOptions {
                write_baseline: true,
                workspace: Some(".".into()),
                ..LintOptions::default()
            })
        );
    }

    #[test]
    fn lint_workspace_flag_value_is_optional() {
        let parsed = parse_args(&s(&["lint", "--workspace", "--deny-warnings"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Lint(LintOptions {
                workspace: Some(".".into()),
                deny_warnings: true,
                ..LintOptions::default()
            })
        );
    }

    #[test]
    fn lint_error_cases() {
        assert_eq!(
            parse_args(&s(&["lint", "--format", "xml"])),
            Err(ArgsError::BadValue("format", "xml".into()))
        );
        assert_eq!(
            parse_args(&s(&["lint", "--model"])),
            Err(ArgsError::MissingValue("model"))
        );
        assert_eq!(
            parse_args(&s(&["lint", "extra"])),
            Err(ArgsError::UnexpectedArg("extra".into()))
        );
    }

    #[test]
    fn trace_flag_does_not_eat_the_next_token() {
        // `--trace` is boolean: the positional after it must survive.
        let parsed = parse_args(&s(&["extract", "--trace", "--model", "m", "1 egg"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Extract {
                model: "m".into(),
                phrases: vec!["1 egg".into()],
                threads: 0,
                no_cache: false,
                quantized: false,
                obs: ObsArgs {
                    trace: true,
                    ..ObsArgs::default()
                },
            }
        );
    }

    #[test]
    fn parses_metrics_out_on_all_three_commands() {
        let parsed = parse_args(&s(&[
            "train",
            "--out",
            "m.json",
            "--metrics-out",
            "metrics.json",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Train {
                out: "m.json".into(),
                recipes: 1000,
                seed: 42,
                threads: 0,
                obs: ObsArgs {
                    metrics_out: Some("metrics.json".into()),
                    ..ObsArgs::default()
                },
            }
        );
        let parsed = parse_args(&s(&[
            "mine",
            "--model",
            "m",
            "--trace",
            "--metrics-out",
            "out.json",
            "r.txt",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Mine {
                model: "m".into(),
                files: vec!["r.txt".into()],
                threads: 0,
                no_cache: false,
                obs: ObsArgs {
                    trace: true,
                    metrics_out: Some("out.json".into()),
                    ..ObsArgs::default()
                },
            }
        );
    }

    #[test]
    fn trace_flag_rejected_elsewhere() {
        for cmd in [
            vec!["generate", "--out", "d", "--trace"],
            vec!["lint", "--trace"],
            vec!["stats", "m.json", "--trace"],
        ] {
            assert_eq!(
                parse_args(&s(&cmd)),
                Err(ArgsError::UnexpectedArg("--trace".into())),
                "{cmd:?}"
            );
        }
    }

    #[test]
    fn parses_trace_out_and_sample() {
        let parsed = parse_args(&s(&[
            "extract",
            "--model",
            "m",
            "--trace-out",
            "trace.json",
            "--trace-sample",
            "0.25",
            "1 egg",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Extract {
                model: "m".into(),
                phrases: vec!["1 egg".into()],
                threads: 0,
                no_cache: false,
                quantized: false,
                obs: ObsArgs {
                    trace_out: Some("trace.json".into()),
                    trace_sample: Some(0.25),
                    ..ObsArgs::default()
                },
            }
        );
        for bad in ["-0.5", "1.5", "lots", "NaN"] {
            assert_eq!(
                parse_args(&s(&[
                    "extract",
                    "--model",
                    "m",
                    "--trace-sample",
                    bad,
                    "1 egg"
                ])),
                Err(ArgsError::BadValue("trace-sample", bad.into())),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn explain_flag_and_subcommand() {
        // `--explain` is boolean: the positional after it must survive.
        let parsed = parse_args(&s(&["extract", "--explain", "--model", "m", "1 egg"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Extract {
                model: "m".into(),
                phrases: vec!["1 egg".into()],
                threads: 0,
                no_cache: false,
                quantized: false,
                obs: ObsArgs {
                    explain: true,
                    ..ObsArgs::default()
                },
            }
        );
        // The standalone subcommand.
        let parsed =
            parse_args(&s(&["explain", "--model", "m", "--threads", "2", "1 egg"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Explain {
                model: "m".into(),
                phrases: vec!["1 egg".into()],
                threads: 2,
            }
        );
        assert_eq!(
            parse_args(&s(&["explain", "--model", "m"])),
            Err(ArgsError::MissingPositional("phrase"))
        );
        // `--explain` is rejected where there is no extraction to explain.
        for cmd in [
            vec!["train", "--out", "x", "--explain"],
            vec!["lint", "--explain"],
        ] {
            assert_eq!(
                parse_args(&s(&cmd)),
                Err(ArgsError::UnexpectedArg("--explain".into())),
                "{cmd:?}"
            );
        }
    }

    #[test]
    fn parses_bench_diff() {
        let parsed = parse_args(&s(&["bench-diff"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::BenchDiff(BenchDiffOptions::default())
        );
        let parsed = parse_args(&s(&[
            "bench-diff",
            "--history",
            "h.jsonl",
            "--benchmark",
            "inference_throughput",
            "--warn-pct",
            "2.5",
            "--fail-pct",
            "20",
            "--smoke",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::BenchDiff(BenchDiffOptions {
                history: "h.jsonl".into(),
                benchmark: Some("inference_throughput".into()),
                warn_pct: Some(2.5),
                fail_pct: Some(20.0),
                smoke: true,
            })
        );
        assert_eq!(
            parse_args(&s(&["bench-diff", "--warn-pct", "-3"])),
            Err(ArgsError::BadValue("warn-pct", "-3".into()))
        );
        assert_eq!(
            parse_args(&s(&["bench-diff", "--history"])),
            Err(ArgsError::MissingValue("history"))
        );
        assert_eq!(
            parse_args(&s(&["bench-diff", "extra"])),
            Err(ArgsError::UnexpectedArg("extra".into()))
        );
    }

    #[test]
    fn parses_monitor_subcommand() {
        let parsed = parse_args(&s(&["monitor"])).unwrap();
        assert_eq!(parsed.command, Command::Monitor(MonitorOptions::default()));
        // `--once` is boolean: the flag after it must still parse.
        let parsed = parse_args(&s(&[
            "monitor",
            "--once",
            "--addr",
            "127.0.0.1:9000",
            "--interval-ms",
            "500",
            "--count",
            "3",
            "--out",
            "snap.jsonl",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Monitor(MonitorOptions {
                addr: "127.0.0.1:9000".into(),
                interval_ms: 500,
                count: Some(3),
                out: Some("snap.jsonl".into()),
                once: true,
            })
        );
        assert_eq!(
            parse_args(&s(&["monitor", "--count", "0"])),
            Err(ArgsError::BadValue("count", "0".into()))
        );
        assert_eq!(
            parse_args(&s(&["monitor", "--addr"])),
            Err(ArgsError::MissingValue("addr"))
        );
        assert_eq!(
            parse_args(&s(&["monitor", "extra"])),
            Err(ArgsError::UnexpectedArg("extra".into()))
        );
    }

    #[test]
    fn parses_profile_out_flag() {
        let parsed = parse_args(&s(&[
            "extract",
            "--model",
            "m",
            "--profile-out",
            "prof.json",
            "1 egg",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Extract {
                model: "m".into(),
                phrases: vec!["1 egg".into()],
                threads: 0,
                no_cache: false,
                quantized: false,
                obs: ObsArgs {
                    profile_out: Some("prof.json".into()),
                    ..ObsArgs::default()
                },
            }
        );
        let parsed = parse_args(&s(&[
            "train",
            "--out",
            "m.json",
            "--profile-out",
            "prof.json",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Train {
                out: "m.json".into(),
                recipes: 1000,
                seed: 42,
                threads: 0,
                obs: ObsArgs {
                    profile_out: Some("prof.json".into()),
                    ..ObsArgs::default()
                },
            }
        );
    }

    #[test]
    fn parses_profile_subcommand() {
        let parsed = parse_args(&s(&["profile", "prof.json"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Profile(ProfileOptions {
                path: "prof.json".into(),
                ..ProfileOptions::default()
            })
        );
        // `--fold` is boolean: flags after it must still parse.
        let parsed = parse_args(&s(&[
            "profile",
            "--fold",
            "before.json",
            "--diff",
            "after.json",
            "--top",
            "3",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Profile(ProfileOptions {
                path: "before.json".into(),
                fold: true,
                diff: Some("after.json".into()),
                top: 3,
            })
        );
        assert_eq!(
            parse_args(&s(&["profile"])),
            Err(ArgsError::MissingPositional("profile file"))
        );
        assert_eq!(
            parse_args(&s(&["profile", "a.json", "b.json"])),
            Err(ArgsError::UnexpectedArg("b.json".into()))
        );
        assert_eq!(
            parse_args(&s(&["profile", "a.json", "--top", "0"])),
            Err(ArgsError::BadValue("top", "0".into()))
        );
        assert_eq!(
            parse_args(&s(&["profile", "a.json", "--diff"])),
            Err(ArgsError::MissingValue("diff"))
        );
        assert_eq!(
            parse_args(&s(&["profile", "a.json", "--bogus"])),
            Err(ArgsError::UnexpectedArg("--bogus".into()))
        );
    }

    #[test]
    fn parses_stats_subcommand() {
        let parsed = parse_args(&s(&["stats", "metrics.json"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Stats {
                path: "metrics.json".into()
            }
        );
        assert_eq!(
            parse_args(&s(&["stats"])),
            Err(ArgsError::MissingPositional("metrics file"))
        );
    }

    #[test]
    fn parses_compile_subcommand() {
        let parsed = parse_args(&s(&["compile", "--out", "m.rma"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Compile {
                model: None,
                out: "m.rma".into(),
                recipes: 1000,
                seed: 42,
                threads: 0,
            }
        );
        let parsed = parse_args(&s(&[
            "compile",
            "--model",
            "m.json",
            "--out",
            "m.rma",
            "--recipes",
            "50",
            "--seed",
            "7",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Compile {
                model: Some("m.json".into()),
                out: "m.rma".into(),
                recipes: 50,
                seed: 7,
                threads: 2,
            }
        );
        assert_eq!(
            parse_args(&s(&["compile", "--model", "m.json"])),
            Err(ArgsError::MissingFlag("out"))
        );
    }

    #[test]
    fn quantized_flag_does_not_eat_the_next_token() {
        // `--quantized` is boolean: the positional after it must survive.
        let parsed = parse_args(&s(&["extract", "--quantized", "--model", "m", "1 egg"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Extract {
                model: "m".into(),
                phrases: vec!["1 egg".into()],
                threads: 0,
                no_cache: false,
                quantized: true,
                obs: ObsArgs::default(),
            }
        );
    }

    #[test]
    fn parses_serve_subcommand() {
        let parsed = parse_args(&s(&["serve", "--model", "m.rma"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Serve {
                model: "m.rma".into(),
                addr: "127.0.0.1:7878".into(),
                threads: 0,
                quantized: false,
                queue_cap: 128,
                batch_max: 8,
                batch_window_us: 500,
                monitoring: true,
                profiling: true,
                drift_sample: 8,
                keepalive_max_requests: 64,
                keepalive_idle_ms: 5_000,
                slo_availability: 0.999,
                slo_latency_ms: 250.0,
            }
        );
        let parsed = parse_args(&s(&[
            "serve",
            "--model",
            "m.rma",
            "--addr",
            "0.0.0.0:9000",
            "--threads",
            "4",
            "--quantized",
            "--queue-cap",
            "32",
            "--batch-max",
            "16",
            "--batch-window-us",
            "250",
            "--no-monitoring",
            "--no-profiling",
            "--drift-sample",
            "0",
            "--keepalive-max-requests",
            "8",
            "--keepalive-idle-ms",
            "1000",
            "--slo-availability",
            "0.99",
            "--slo-latency-ms",
            "100",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Serve {
                model: "m.rma".into(),
                addr: "0.0.0.0:9000".into(),
                threads: 4,
                quantized: true,
                queue_cap: 32,
                batch_max: 16,
                batch_window_us: 250,
                monitoring: false,
                profiling: false,
                drift_sample: 0,
                keepalive_max_requests: 8,
                keepalive_idle_ms: 1000,
                slo_availability: 0.99,
                slo_latency_ms: 100.0,
            }
        );
        assert_eq!(
            parse_args(&s(&["extract", "--model", "m", "x", "--no-monitoring"])),
            Err(ArgsError::UnexpectedArg("--no-monitoring".into()))
        );
        assert_eq!(
            parse_args(&s(&["mine", "--model", "m", "x", "--no-profiling"])),
            Err(ArgsError::UnexpectedArg("--no-profiling".into()))
        );
        assert_eq!(
            parse_args(&s(&["serve"])),
            Err(ArgsError::MissingFlag("model"))
        );
        for (flag, bad) in [
            ("queue-cap", "0"),
            ("batch-max", "0"),
            ("queue-cap", "many"),
            ("keepalive-max-requests", "0"),
            ("keepalive-idle-ms", "soon"),
            // SLO targets: availability must sit strictly inside (0, 1)
            // and the latency threshold must be a positive duration.
            ("slo-availability", "0"),
            ("slo-availability", "1"),
            ("slo-availability", "1.5"),
            ("slo-availability", "NaN"),
            ("slo-latency-ms", "0"),
            ("slo-latency-ms", "-5"),
        ] {
            let dashed = format!("--{flag}");
            assert!(
                matches!(
                    parse_args(&s(&["serve", "--model", "m", &dashed, bad])),
                    Err(ArgsError::BadValue(_, _))
                ),
                "{flag}={bad}"
            );
        }
    }

    #[test]
    fn quantized_flag_rejected_elsewhere() {
        for cmd in [
            vec!["train", "--out", "x", "--quantized"],
            vec!["compile", "--out", "x.rma", "--quantized"],
            vec!["mine", "--model", "m", "r.txt", "--quantized"],
            vec!["lint", "--quantized"],
        ] {
            assert_eq!(
                parse_args(&s(&cmd)),
                Err(ArgsError::UnexpectedArg("--quantized".into())),
                "{cmd:?}"
            );
        }
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse_args(&s(&[h])).unwrap().command, Command::Help);
        }
    }
}
