//! Hand-rolled argument parsing for `recipe-mine` (no external parser
//! dependency; the surface is small and stable).

use std::collections::HashMap;
use std::fmt;

/// A parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `train --out <path> [--recipes N] [--seed S] [--threads T]
    /// [--trace] [--metrics-out PATH]`
    Train {
        /// Artifact output path.
        out: String,
        /// Corpus size to train on.
        recipes: usize,
        /// Corpus/training seed.
        seed: u64,
        /// Worker threads (0 = `RECIPE_THREADS` env / detected cores).
        threads: usize,
        /// Enable tracing and attach a `telemetry` block to the output.
        trace: bool,
        /// Write the full telemetry document to this path.
        metrics_out: Option<String>,
    },
    /// `extract --model <path> [--threads T] [--no-cache] [--trace]
    /// [--metrics-out PATH] <phrase>...`
    Extract {
        /// Trained artifact path.
        model: String,
        /// Ingredient phrases to extract.
        phrases: Vec<String>,
        /// Worker threads (0 = `RECIPE_THREADS` env / detected cores).
        threads: usize,
        /// Disable the phrase-level extraction cache.
        no_cache: bool,
        /// Enable tracing and attach a `telemetry` block to the output.
        trace: bool,
        /// Write the full telemetry document to this path.
        metrics_out: Option<String>,
    },
    /// `mine --model <path> [--threads T] [--no-cache] [--trace]
    /// [--metrics-out PATH] <recipe.txt>...`
    Mine {
        /// Trained artifact path.
        model: String,
        /// Recipe text files to mine.
        files: Vec<String>,
        /// Worker threads (0 = `RECIPE_THREADS` env / detected cores).
        threads: usize,
        /// Disable the phrase-level extraction cache.
        no_cache: bool,
        /// Enable tracing and attach a `telemetry` block to the output.
        trace: bool,
        /// Write the full telemetry document to this path.
        metrics_out: Option<String>,
    },
    /// `generate --out <dir> [--recipes N] [--seed S]`
    Generate {
        /// Output directory for the recipe text files + corpus.jsonl.
        out: String,
        /// Number of recipes.
        recipes: usize,
        /// Corpus seed.
        seed: u64,
    },
    /// `lint [--format human|json] [--deny-warnings] [--model PATH] ...`
    Lint(LintOptions),
    /// `stats <metrics.json>`: validate and pretty-print a telemetry
    /// document written by `--metrics-out`.
    Stats {
        /// Path to the telemetry JSON document.
        path: String,
    },
    /// `help`
    Help,
}

/// Options for the `lint` subcommand (see [`crate::commands::run`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LintOptions {
    /// Output format: `"human"` (rustc-style) or `"json"`.
    pub format: String,
    /// Treat warning-level findings as errors.
    pub deny_warnings: bool,
    /// Lint a saved artifact instead of training a fresh pipeline.
    pub model: Option<String>,
    /// Size of the generated corpus to lint (and train on).
    pub recipes: usize,
    /// Corpus/training seed.
    pub seed: u64,
    /// Run the source scanner over this directory (`--workspace [ROOT]`,
    /// default `.` when the flag is given without a value).
    pub workspace: Option<String>,
    /// Rule codes to silence (`--allow RA301,RA107`).
    pub allow: Vec<String>,
    /// Rule codes to promote to errors (`--deny RA002`).
    pub deny: Vec<String>,
    /// Print the rule catalog and exit.
    pub list_rules: bool,
    /// Worker threads (0 = `RECIPE_THREADS` env / detected cores).
    pub threads: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            format: "human".to_string(),
            deny_warnings: false,
            model: None,
            recipes: 120,
            seed: 42,
            workspace: None,
            allow: Vec::new(),
            deny: Vec::new(),
            list_rules: false,
            threads: 0,
        }
    }
}

/// Result of [`parse_args`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// The subcommand to run.
    pub command: Command,
}

/// Errors produced by argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    Missing,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A required flag was not supplied.
    MissingFlag(&'static str),
    /// A flag value failed to parse.
    BadValue(&'static str, String),
    /// Positional arguments were required but absent.
    MissingPositional(&'static str),
    /// A flag that needs a value appeared without one.
    MissingValue(&'static str),
    /// An argument the subcommand does not understand.
    UnexpectedArg(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::Missing => write!(f, "no subcommand; try `recipe-mine help`"),
            ArgsError::UnknownCommand(c) => write!(f, "unknown subcommand {c:?}"),
            ArgsError::MissingFlag(flag) => write!(f, "missing required flag --{flag}"),
            ArgsError::BadValue(flag, v) => write!(f, "bad value for --{flag}: {v:?}"),
            ArgsError::MissingPositional(what) => write!(f, "expected at least one {what}"),
            ArgsError::MissingValue(flag) => write!(f, "flag --{flag} requires a value"),
            ArgsError::UnexpectedArg(arg) => write!(f, "unexpected argument {arg:?}"),
        }
    }
}

impl std::error::Error for ArgsError {}

/// Split args into `--flag value` pairs plus positionals.
fn split_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (flags, positional)
}

/// Parse a CLI invocation (without the program name).
pub fn parse_args(args: &[String]) -> Result<ParsedArgs, ArgsError> {
    let Some(cmd) = args.first() else {
        return Err(ArgsError::Missing);
    };
    // `--no-cache` and `--trace` are boolean, so they must be stripped
    // before `split_flags` pairs every `--flag` with the following token.
    // `--no-cache` is accepted by `extract` and `mine`; `--trace` also by
    // `train`; elsewhere both are explicit errors.
    let mut no_cache = false;
    let mut trace = false;
    let rest: Vec<String> = args[1..]
        .iter()
        .filter(|a| match a.as_str() {
            "--no-cache" => {
                no_cache = true;
                false
            }
            "--trace" => {
                trace = true;
                false
            }
            _ => true,
        })
        .cloned()
        .collect();
    if no_cache && !matches!(cmd.as_str(), "extract" | "mine") {
        return Err(ArgsError::UnexpectedArg("--no-cache".to_string()));
    }
    if trace && !matches!(cmd.as_str(), "train" | "extract" | "mine") {
        return Err(ArgsError::UnexpectedArg("--trace".to_string()));
    }
    let rest = rest.as_slice();
    let (flags, positional) = split_flags(rest);
    let command = match cmd.as_str() {
        "help" | "--help" | "-h" => Command::Help,
        "train" => {
            let out = flags
                .get("out")
                .cloned()
                .ok_or(ArgsError::MissingFlag("out"))?;
            let recipes = match flags.get("recipes") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("recipes", v.clone()))?,
                None => 1000,
            };
            let seed = match flags.get("seed") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("seed", v.clone()))?,
                None => 42,
            };
            let threads = parse_threads(&flags)?;
            Command::Train {
                out,
                recipes,
                seed,
                threads,
                trace,
                metrics_out: flags.get("metrics-out").cloned(),
            }
        }
        "generate" => {
            let out = flags
                .get("out")
                .cloned()
                .ok_or(ArgsError::MissingFlag("out"))?;
            let recipes = match flags.get("recipes") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("recipes", v.clone()))?,
                None => 100,
            };
            let seed = match flags.get("seed") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgsError::BadValue("seed", v.clone()))?,
                None => 42,
            };
            Command::Generate { out, recipes, seed }
        }
        "extract" => {
            let model = flags
                .get("model")
                .cloned()
                .ok_or(ArgsError::MissingFlag("model"))?;
            if positional.is_empty() {
                return Err(ArgsError::MissingPositional("phrase"));
            }
            Command::Extract {
                model,
                phrases: positional,
                threads: parse_threads(&flags)?,
                no_cache,
                trace,
                metrics_out: flags.get("metrics-out").cloned(),
            }
        }
        "mine" => {
            let model = flags
                .get("model")
                .cloned()
                .ok_or(ArgsError::MissingFlag("model"))?;
            if positional.is_empty() {
                return Err(ArgsError::MissingPositional("recipe file"));
            }
            Command::Mine {
                model,
                files: positional,
                threads: parse_threads(&flags)?,
                no_cache,
                trace,
                metrics_out: flags.get("metrics-out").cloned(),
            }
        }
        // `lint` has boolean flags, so it parses `rest` itself instead of
        // going through the `--flag value` pairing of `split_flags`.
        "lint" => Command::Lint(parse_lint(rest)?),
        "stats" => {
            let Some(path) = positional.first() else {
                return Err(ArgsError::MissingPositional("metrics file"));
            };
            Command::Stats { path: path.clone() }
        }
        other => return Err(ArgsError::UnknownCommand(other.to_string())),
    };
    Ok(ParsedArgs { command })
}

/// Parse the optional `--threads` flag (0 = unset: fall back to the
/// `RECIPE_THREADS` environment variable, then detected cores).
fn parse_threads(flags: &HashMap<String, String>) -> Result<usize, ArgsError> {
    match flags.get("threads") {
        Some(v) => v
            .parse()
            .map_err(|_| ArgsError::BadValue("threads", v.clone())),
        None => Ok(0),
    }
}

fn parse_lint(rest: &[String]) -> Result<LintOptions, ArgsError> {
    let mut opts = LintOptions::default();
    let mut i = 0usize;
    while i < rest.len() {
        match rest[i].as_str() {
            "--deny-warnings" => {
                opts.deny_warnings = true;
                i += 1;
            }
            "--list-rules" => {
                opts.list_rules = true;
                i += 1;
            }
            "--workspace" => {
                // Optional value: `--workspace path` or bare `--workspace`.
                if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                    opts.workspace = Some(rest[i + 1].clone());
                    i += 2;
                } else {
                    opts.workspace = Some(".".to_string());
                    i += 1;
                }
            }
            flag @ ("--format" | "--model" | "--recipes" | "--seed" | "--threads" | "--allow"
            | "--deny") => {
                let name: &'static str = match flag {
                    "--format" => "format",
                    "--model" => "model",
                    "--recipes" => "recipes",
                    "--seed" => "seed",
                    "--threads" => "threads",
                    "--allow" => "allow",
                    _ => "deny",
                };
                let Some(v) = rest.get(i + 1) else {
                    return Err(ArgsError::MissingValue(name));
                };
                match name {
                    "format" => {
                        if v != "human" && v != "json" {
                            return Err(ArgsError::BadValue("format", v.clone()));
                        }
                        opts.format = v.clone();
                    }
                    "model" => opts.model = Some(v.clone()),
                    "recipes" => {
                        opts.recipes = v
                            .parse()
                            .map_err(|_| ArgsError::BadValue("recipes", v.clone()))?;
                    }
                    "seed" => {
                        opts.seed = v
                            .parse()
                            .map_err(|_| ArgsError::BadValue("seed", v.clone()))?;
                    }
                    "threads" => {
                        opts.threads = v
                            .parse()
                            .map_err(|_| ArgsError::BadValue("threads", v.clone()))?;
                    }
                    "allow" => opts
                        .allow
                        .extend(v.split(',').filter(|s| !s.is_empty()).map(String::from)),
                    _ => opts
                        .deny
                        .extend(v.split(',').filter(|s| !s.is_empty()).map(String::from)),
                }
                i += 2;
            }
            other => return Err(ArgsError::UnexpectedArg(other.to_string())),
        }
    }
    Ok(opts)
}

/// Usage text for `help`.
pub const USAGE: &str = "\
recipe-mine — named-entity based recipe modelling

USAGE:
  recipe-mine generate --out <dir> [--recipes N] [--seed S]
  recipe-mine train   --out <model.json> [--recipes N] [--seed S] [--threads T]
                      [--trace] [--metrics-out <metrics.json>]
  recipe-mine extract --model <model.json> [--threads T] [--no-cache]
                      [--trace] [--metrics-out <metrics.json>] <phrase>...
  recipe-mine mine    --model <model.json> [--threads T] [--no-cache]
                      [--trace] [--metrics-out <metrics.json>] <recipe.txt>...
  recipe-mine stats   <metrics.json>
  recipe-mine lint    [--format human|json] [--deny-warnings]
                      [--model <model.json>] [--recipes N] [--seed S]
                      [--workspace [ROOT]] [--allow CODES] [--deny CODES]
                      [--list-rules] [--threads T]
  recipe-mine help

Parallelism: --threads T sets the worker-thread count for training and
batch extraction (default: the RECIPE_THREADS environment variable, else
the detected core count). Outputs are bit-identical at every value.

Caching: extract and mine memoize per-phrase NER decodes and per-sentence
event extraction in a bounded deterministic cache; --no-cache disables it.
Outputs are byte-identical with the cache on or off.

Telemetry: --trace enables span/metric collection and attaches a
`telemetry` block to the JSON output; --metrics-out PATH additionally
writes the full telemetry document (schema_version, command, telemetry)
to PATH. `recipe-mine stats metrics.json` validates such a document and
renders it for terminals. Telemetry never changes extraction results:
the `results` block is byte-identical with tracing on or off.

generate write a synthetic RecipeDB-like corpus as recipe text files
         (mineable with `mine`) plus corpus.jsonl with gold annotations
train    generate a synthetic RecipeDB-like corpus, train the full
         pipeline (POS tagger, ingredient & instruction NER, parser,
         dictionaries) and save the artifact as JSON
extract  print the structured attributes of ingredient phrases as JSON
mine     mine recipe text files (## ingredients / ## instructions
         sections) into the Fig. 1 structure, printed as JSON
stats    validate a --metrics-out telemetry document and render it in a
         human-readable form (stage tree, counters, histograms)
lint     run the recipe-analyze static checks: cross-crate invariants,
         corpus well-formedness over a generated corpus, artifact health
         over a loaded (--model) or freshly trained pipeline, and an
         optional source scan (--workspace); exits nonzero on any
         error-level finding (--deny-warnings promotes warnings)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_train_with_defaults() {
        let parsed = parse_args(&s(&["train", "--out", "m.json"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Train {
                out: "m.json".into(),
                recipes: 1000,
                seed: 42,
                threads: 0,
                trace: false,
                metrics_out: None,
            }
        );
    }

    #[test]
    fn parses_train_with_flags_any_order() {
        let parsed = parse_args(&s(&[
            "train",
            "--seed",
            "7",
            "--recipes",
            "250",
            "--out",
            "x",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Train {
                out: "x".into(),
                recipes: 250,
                seed: 7,
                threads: 0,
                trace: false,
                metrics_out: None,
            }
        );
    }

    #[test]
    fn parses_extract_with_positionals() {
        let parsed = parse_args(&s(&[
            "extract",
            "--model",
            "m.json",
            "2 cups flour",
            "1 egg",
        ]))
        .unwrap();
        match parsed.command {
            Command::Extract {
                model,
                phrases,
                threads,
                no_cache,
                trace,
                metrics_out,
            } => {
                assert_eq!(model, "m.json");
                assert_eq!(phrases, vec!["2 cups flour", "1 egg"]);
                assert_eq!(threads, 0);
                assert!(!no_cache);
                assert!(!trace);
                assert_eq!(metrics_out, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_cache_flag_does_not_eat_the_next_token() {
        // `--no-cache` is boolean: the positional after it must survive.
        let parsed = parse_args(&s(&["extract", "--no-cache", "--model", "m", "1 egg"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Extract {
                model: "m".into(),
                phrases: vec!["1 egg".into()],
                threads: 0,
                no_cache: true,
                trace: false,
                metrics_out: None,
            }
        );
        let parsed = parse_args(&s(&["mine", "--model", "m", "--no-cache", "r.txt"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Mine {
                model: "m".into(),
                files: vec!["r.txt".into()],
                threads: 0,
                no_cache: true,
                trace: false,
                metrics_out: None,
            }
        );
    }

    #[test]
    fn no_cache_flag_rejected_elsewhere() {
        for cmd in [
            vec!["train", "--out", "x", "--no-cache"],
            vec!["generate", "--out", "d", "--no-cache"],
            vec!["lint", "--no-cache"],
        ] {
            assert_eq!(
                parse_args(&s(&cmd)),
                Err(ArgsError::UnexpectedArg("--no-cache".into())),
                "{cmd:?}"
            );
        }
    }

    #[test]
    fn parses_threads_flag() {
        let parsed = parse_args(&s(&["train", "--out", "m.json", "--threads", "4"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Train {
                out: "m.json".into(),
                recipes: 1000,
                seed: 42,
                threads: 4,
                trace: false,
                metrics_out: None,
            }
        );
        let parsed = parse_args(&s(&["lint", "--threads", "2"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Lint(LintOptions {
                threads: 2,
                ..LintOptions::default()
            })
        );
        assert!(matches!(
            parse_args(&s(&["train", "--out", "x", "--threads", "lots"])),
            Err(ArgsError::BadValue("threads", _))
        ));
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse_args(&[]), Err(ArgsError::Missing));
        assert!(matches!(
            parse_args(&s(&["frobnicate"])),
            Err(ArgsError::UnknownCommand(_))
        ));
        assert_eq!(
            parse_args(&s(&["train"])),
            Err(ArgsError::MissingFlag("out"))
        );
        assert!(matches!(
            parse_args(&s(&["train", "--out", "x", "--recipes", "many"])),
            Err(ArgsError::BadValue("recipes", _))
        ));
        assert_eq!(
            parse_args(&s(&["extract", "--model", "m"])),
            Err(ArgsError::MissingPositional("phrase"))
        );
    }

    #[test]
    fn parses_lint_defaults() {
        let parsed = parse_args(&s(&["lint"])).unwrap();
        assert_eq!(parsed.command, Command::Lint(LintOptions::default()));
    }

    #[test]
    fn parses_lint_boolean_flags_without_eating_values() {
        // `--deny-warnings` is boolean: the following flag must still parse.
        let parsed = parse_args(&s(&["lint", "--deny-warnings", "--format", "json"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Lint(LintOptions {
                deny_warnings: true,
                format: "json".into(),
                ..LintOptions::default()
            })
        );
    }

    #[test]
    fn parses_lint_full_surface() {
        let parsed = parse_args(&s(&[
            "lint",
            "--model",
            "m.json",
            "--recipes",
            "30",
            "--seed",
            "9",
            "--workspace",
            "crates",
            "--allow",
            "RA301,RA107",
            "--deny",
            "RA002",
            "--list-rules",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Lint(LintOptions {
                model: Some("m.json".into()),
                recipes: 30,
                seed: 9,
                workspace: Some("crates".into()),
                allow: vec!["RA301".into(), "RA107".into()],
                deny: vec!["RA002".into()],
                list_rules: true,
                ..LintOptions::default()
            })
        );
    }

    #[test]
    fn lint_workspace_flag_value_is_optional() {
        let parsed = parse_args(&s(&["lint", "--workspace", "--deny-warnings"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Lint(LintOptions {
                workspace: Some(".".into()),
                deny_warnings: true,
                ..LintOptions::default()
            })
        );
    }

    #[test]
    fn lint_error_cases() {
        assert_eq!(
            parse_args(&s(&["lint", "--format", "xml"])),
            Err(ArgsError::BadValue("format", "xml".into()))
        );
        assert_eq!(
            parse_args(&s(&["lint", "--model"])),
            Err(ArgsError::MissingValue("model"))
        );
        assert_eq!(
            parse_args(&s(&["lint", "extra"])),
            Err(ArgsError::UnexpectedArg("extra".into()))
        );
    }

    #[test]
    fn trace_flag_does_not_eat_the_next_token() {
        // `--trace` is boolean: the positional after it must survive.
        let parsed = parse_args(&s(&["extract", "--trace", "--model", "m", "1 egg"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Extract {
                model: "m".into(),
                phrases: vec!["1 egg".into()],
                threads: 0,
                no_cache: false,
                trace: true,
                metrics_out: None,
            }
        );
    }

    #[test]
    fn parses_metrics_out_on_all_three_commands() {
        let parsed = parse_args(&s(&[
            "train",
            "--out",
            "m.json",
            "--metrics-out",
            "metrics.json",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Train {
                out: "m.json".into(),
                recipes: 1000,
                seed: 42,
                threads: 0,
                trace: false,
                metrics_out: Some("metrics.json".into()),
            }
        );
        let parsed = parse_args(&s(&[
            "mine",
            "--model",
            "m",
            "--trace",
            "--metrics-out",
            "out.json",
            "r.txt",
        ]))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Mine {
                model: "m".into(),
                files: vec!["r.txt".into()],
                threads: 0,
                no_cache: false,
                trace: true,
                metrics_out: Some("out.json".into()),
            }
        );
    }

    #[test]
    fn trace_flag_rejected_elsewhere() {
        for cmd in [
            vec!["generate", "--out", "d", "--trace"],
            vec!["lint", "--trace"],
            vec!["stats", "m.json", "--trace"],
        ] {
            assert_eq!(
                parse_args(&s(&cmd)),
                Err(ArgsError::UnexpectedArg("--trace".into())),
                "{cmd:?}"
            );
        }
    }

    #[test]
    fn parses_stats_subcommand() {
        let parsed = parse_args(&s(&["stats", "metrics.json"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Stats {
                path: "metrics.json".into()
            }
        );
        assert_eq!(
            parse_args(&s(&["stats"])),
            Err(ArgsError::MissingPositional("metrics file"))
        );
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse_args(&s(&[h])).unwrap().command, Command::Help);
        }
    }
}
