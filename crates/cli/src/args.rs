//! Hand-rolled argument parsing for `recipe-mine` (no external parser
//! dependency; the surface is small and stable).

use std::collections::HashMap;
use std::fmt;

/// A parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `train --out <path> [--recipes N] [--seed S]`
    Train {
        /// Artifact output path.
        out: String,
        /// Corpus size to train on.
        recipes: usize,
        /// Corpus/training seed.
        seed: u64,
    },
    /// `extract --model <path> <phrase>...`
    Extract {
        /// Trained artifact path.
        model: String,
        /// Ingredient phrases to extract.
        phrases: Vec<String>,
    },
    /// `mine --model <path> <recipe.txt>...`
    Mine {
        /// Trained artifact path.
        model: String,
        /// Recipe text files to mine.
        files: Vec<String>,
    },
    /// `generate --out <dir> [--recipes N] [--seed S]`
    Generate {
        /// Output directory for the recipe text files + corpus.jsonl.
        out: String,
        /// Number of recipes.
        recipes: usize,
        /// Corpus seed.
        seed: u64,
    },
    /// `help`
    Help,
}

/// Result of [`parse_args`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// The subcommand to run.
    pub command: Command,
}

/// Errors produced by argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    Missing,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A required flag was not supplied.
    MissingFlag(&'static str),
    /// A flag value failed to parse.
    BadValue(&'static str, String),
    /// Positional arguments were required but absent.
    MissingPositional(&'static str),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::Missing => write!(f, "no subcommand; try `recipe-mine help`"),
            ArgsError::UnknownCommand(c) => write!(f, "unknown subcommand {c:?}"),
            ArgsError::MissingFlag(flag) => write!(f, "missing required flag --{flag}"),
            ArgsError::BadValue(flag, v) => write!(f, "bad value for --{flag}: {v:?}"),
            ArgsError::MissingPositional(what) => write!(f, "expected at least one {what}"),
        }
    }
}

impl std::error::Error for ArgsError {}

/// Split args into `--flag value` pairs plus positionals.
fn split_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (flags, positional)
}

/// Parse a CLI invocation (without the program name).
pub fn parse_args(args: &[String]) -> Result<ParsedArgs, ArgsError> {
    let Some(cmd) = args.first() else {
        return Err(ArgsError::Missing);
    };
    let rest = &args[1..];
    let (flags, positional) = split_flags(rest);
    let command = match cmd.as_str() {
        "help" | "--help" | "-h" => Command::Help,
        "train" => {
            let out = flags.get("out").cloned().ok_or(ArgsError::MissingFlag("out"))?;
            let recipes = match flags.get("recipes") {
                Some(v) => {
                    v.parse().map_err(|_| ArgsError::BadValue("recipes", v.clone()))?
                }
                None => 1000,
            };
            let seed = match flags.get("seed") {
                Some(v) => v.parse().map_err(|_| ArgsError::BadValue("seed", v.clone()))?,
                None => 42,
            };
            Command::Train { out, recipes, seed }
        }
        "generate" => {
            let out = flags.get("out").cloned().ok_or(ArgsError::MissingFlag("out"))?;
            let recipes = match flags.get("recipes") {
                Some(v) => v.parse().map_err(|_| ArgsError::BadValue("recipes", v.clone()))?,
                None => 100,
            };
            let seed = match flags.get("seed") {
                Some(v) => v.parse().map_err(|_| ArgsError::BadValue("seed", v.clone()))?,
                None => 42,
            };
            Command::Generate { out, recipes, seed }
        }
        "extract" => {
            let model = flags.get("model").cloned().ok_or(ArgsError::MissingFlag("model"))?;
            if positional.is_empty() {
                return Err(ArgsError::MissingPositional("phrase"));
            }
            Command::Extract { model, phrases: positional }
        }
        "mine" => {
            let model = flags.get("model").cloned().ok_or(ArgsError::MissingFlag("model"))?;
            if positional.is_empty() {
                return Err(ArgsError::MissingPositional("recipe file"));
            }
            Command::Mine { model, files: positional }
        }
        other => return Err(ArgsError::UnknownCommand(other.to_string())),
    };
    Ok(ParsedArgs { command })
}

/// Usage text for `help`.
pub const USAGE: &str = "\
recipe-mine — named-entity based recipe modelling

USAGE:
  recipe-mine generate --out <dir> [--recipes N] [--seed S]
  recipe-mine train   --out <model.json> [--recipes N] [--seed S]
  recipe-mine extract --model <model.json> <phrase>...
  recipe-mine mine    --model <model.json> <recipe.txt>...
  recipe-mine help

generate write a synthetic RecipeDB-like corpus as recipe text files
         (mineable with `mine`) plus corpus.jsonl with gold annotations
train    generate a synthetic RecipeDB-like corpus, train the full
         pipeline (POS tagger, ingredient & instruction NER, parser,
         dictionaries) and save the artifact as JSON
extract  print the structured attributes of ingredient phrases as JSON
mine     mine recipe text files (## ingredients / ## instructions
         sections) into the Fig. 1 structure, printed as JSON
";

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_train_with_defaults() {
        let parsed = parse_args(&s(&["train", "--out", "m.json"])).unwrap();
        assert_eq!(
            parsed.command,
            Command::Train { out: "m.json".into(), recipes: 1000, seed: 42 }
        );
    }

    #[test]
    fn parses_train_with_flags_any_order() {
        let parsed =
            parse_args(&s(&["train", "--seed", "7", "--recipes", "250", "--out", "x"])).unwrap();
        assert_eq!(parsed.command, Command::Train { out: "x".into(), recipes: 250, seed: 7 });
    }

    #[test]
    fn parses_extract_with_positionals() {
        let parsed =
            parse_args(&s(&["extract", "--model", "m.json", "2 cups flour", "1 egg"])).unwrap();
        match parsed.command {
            Command::Extract { model, phrases } => {
                assert_eq!(model, "m.json");
                assert_eq!(phrases, vec!["2 cups flour", "1 egg"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse_args(&[]), Err(ArgsError::Missing));
        assert!(matches!(
            parse_args(&s(&["frobnicate"])),
            Err(ArgsError::UnknownCommand(_))
        ));
        assert_eq!(parse_args(&s(&["train"])), Err(ArgsError::MissingFlag("out")));
        assert!(matches!(
            parse_args(&s(&["train", "--out", "x", "--recipes", "many"])),
            Err(ArgsError::BadValue("recipes", _))
        ));
        assert_eq!(
            parse_args(&s(&["extract", "--model", "m"])),
            Err(ArgsError::MissingPositional("phrase"))
        );
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse_args(&s(&[h])).unwrap().command, Command::Help);
        }
    }
}
