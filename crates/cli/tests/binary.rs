//! End-to-end tests of the actual `recipe-mine` binary (spawned as a
//! process, exercising exit codes and stdout/stderr contracts).

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_recipe-mine"))
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = bin().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("extract"));
}

#[test]
fn bad_args_exit_code_two() {
    let out = bin().arg("frobnicate").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand"));
}

#[test]
fn missing_model_exit_code_one() {
    let out = bin()
        .args(["extract", "--model", "/nonexistent.json", "salt"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn train_then_extract_through_the_binary() {
    let dir = std::env::temp_dir().join("recipe_mine_bin_test");
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("model.json");

    let out = bin()
        .args(["train", "--out", model.to_str().unwrap(), "--recipes", "120", "--seed", "9"])
        .output()
        .expect("spawn train");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    let out = bin()
        .args(["extract", "--model", model.to_str().unwrap(), "2 cups flour"])
        .output()
        .expect("spawn extract");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let parsed: serde_json::Value = serde_json::from_str(&stdout).expect("json stdout");
    assert_eq!(parsed[0]["entry"]["name"], "flour");

    std::fs::remove_dir_all(&dir).ok();
}
