//! End-to-end tests of the actual `recipe-mine` binary (spawned as a
//! process, exercising exit codes and stdout/stderr contracts).

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_recipe-mine"))
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = bin().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("extract"));
}

#[test]
fn bad_args_exit_code_two() {
    let out = bin().arg("frobnicate").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand"));
}

#[test]
fn missing_model_exit_code_one() {
    let out = bin()
        .args(["extract", "--model", "/nonexistent.json", "salt"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_list_rules_exits_zero() {
    let out = bin()
        .args(["lint", "--list-rules"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RA001"));
    assert!(stdout.lines().count() >= 12);
}

#[test]
fn lint_healthy_run_exits_zero_with_json() {
    let out = bin()
        .args(["lint", "--recipes", "60", "--format", "json"])
        .output()
        .expect("spawn");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value = serde_json::from_str(&stdout).expect("json stdout");
    assert_eq!(parsed["summary"]["errors"], 0);
}

#[test]
fn lint_denied_rule_exits_one() {
    // Force a failure without crafting an artifact: promote a rule that
    // fires on this source tree (the CLI uses expect() in library code)
    // and scan the workspace.
    let manifest = env!("CARGO_MANIFEST_DIR");
    let out = bin()
        .args([
            "lint",
            "--recipes",
            "20",
            "--workspace",
            manifest,
            "--deny",
            "RA301",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RA301"), "{stdout}");
    assert!(stdout.contains("lint result:"), "{stdout}");
}

#[test]
fn train_then_extract_through_the_binary() {
    let dir = std::env::temp_dir().join("recipe_mine_bin_test");
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("model.json");

    let out = bin()
        .args([
            "train",
            "--out",
            model.to_str().unwrap(),
            "--recipes",
            "120",
            "--seed",
            "9",
        ])
        .output()
        .expect("spawn train");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    let out = bin()
        .args([
            "extract",
            "--model",
            model.to_str().unwrap(),
            "2 cups flour",
        ])
        .output()
        .expect("spawn extract");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let parsed: serde_json::Value = serde_json::from_str(&stdout).expect("json stdout");
    assert_eq!(parsed["results"][0]["entry"]["name"], "flour");
    assert_eq!(parsed["cache"]["enabled"], true);

    // --no-cache produces the same result with the cache disabled.
    let out = bin()
        .args([
            "extract",
            "--no-cache",
            "--model",
            model.to_str().unwrap(),
            "2 cups flour",
        ])
        .output()
        .expect("spawn extract --no-cache");
    assert!(out.status.success());
    let stdout_nc = String::from_utf8_lossy(&out.stdout);
    let parsed_nc: serde_json::Value = serde_json::from_str(&stdout_nc).expect("json stdout");
    assert_eq!(parsed_nc["results"], parsed["results"]);
    assert_eq!(parsed_nc["cache"]["enabled"], false);

    std::fs::remove_dir_all(&dir).ok();
}
