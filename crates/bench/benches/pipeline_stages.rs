//! Microbenchmarks for every stage of the mining pipeline: tokenization,
//! preprocessing, POS tagging, NER decoding, K-Means, dependency parsing
//! and end-to-end ingredient/event extraction.

use recipe_bench::timing::Bench;
use recipe_bench::ExperimentScale;
use recipe_cluster::{minibatch_kmeans, KMeans, KMeansConfig, MiniBatchConfig};
use recipe_core::events::extract_sentence_events;
use recipe_core::pipeline::TrainedPipeline;
use recipe_corpus::RecipeCorpus;
use recipe_tagger::pos_frequency_vector;
use recipe_text::{tokenize, Preprocessor};
use std::hint::black_box;

fn main() {
    let b = Bench::from_args().sample_size(20);

    let scale = ExperimentScale::smoke(42);
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);
    let pre = Preprocessor::default();

    let phrase = "1 (8 ounce) package cream cheese, softened";
    let sentence: Vec<String> = corpus.recipes[0].instructions[0].words();
    let words = pre.preprocess(phrase);

    b.bench_function("tokenize_phrase", || tokenize(black_box(phrase)));
    b.bench_function("preprocess_phrase", || pre.preprocess(black_box(phrase)));
    b.bench_function("pos_tag_sentence", || {
        pipeline.pos.tag(black_box(&sentence))
    });
    b.bench_function("ner_decode_phrase", || {
        pipeline.ingredient_ner.predict(black_box(&words))
    });
    b.bench_function("extract_ingredient_e2e", || {
        pipeline.extract_ingredient(black_box(phrase))
    });

    let pos_tags = pipeline.pos.tag(&sentence);
    b.bench_function("dependency_parse_sentence", || {
        pipeline
            .parser
            .parse(black_box(&sentence), black_box(&pos_tags))
    });
    b.bench_function("extract_events_sentence", || {
        extract_sentence_events(&pipeline, black_box(&sentence), 0)
    });
    b.bench_function("model_recipe_e2e", || {
        pipeline.model_recipe(black_box(&corpus.recipes[0]))
    });

    // K-Means over 1000 POS vectors (the Fig. 2 workload unit).
    let vectors: Vec<Vec<f64>> = corpus
        .recipes
        .iter()
        .flat_map(|r| r.ingredients.iter())
        .take(1000)
        .map(|p| pos_frequency_vector(&pipeline.pos.tag(&p.words())))
        .collect();
    b.bench_function("kmeans_k23_1000_vectors", || {
        KMeans::fit(
            black_box(&vectors),
            &KMeansConfig {
                k: 23,
                ..Default::default()
            },
        )
    });
    b.bench_function("minibatch_kmeans_k23_1000_vectors", || {
        minibatch_kmeans(black_box(&vectors), &MiniBatchConfig::default())
    });
    b.bench_function("ner_nbest5_phrase", || {
        pipeline.ingredient_ner.predict_nbest(black_box(&words), 5)
    });
    b.bench_function("ner_marginals_phrase", || {
        pipeline.ingredient_ner.predict_marginals(black_box(&words))
    });
}
