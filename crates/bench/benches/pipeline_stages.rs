//! Microbenchmarks for every stage of the mining pipeline: tokenization,
//! preprocessing, POS tagging, NER decoding, K-Means, dependency parsing
//! and end-to-end ingredient/event extraction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use recipe_bench::ExperimentScale;
use recipe_core::events::extract_sentence_events;
use recipe_core::pipeline::TrainedPipeline;
use recipe_cluster::{minibatch_kmeans, KMeans, KMeansConfig, MiniBatchConfig};
use recipe_corpus::RecipeCorpus;
use recipe_tagger::pos_frequency_vector;
use recipe_text::{tokenize, Preprocessor};
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let scale = ExperimentScale::smoke(42);
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);
    let pre = Preprocessor::default();

    let phrase = "1 (8 ounce) package cream cheese, softened";
    let sentence: Vec<String> = corpus.recipes[0].instructions[0].words();
    let words = pre.preprocess(phrase);

    c.bench_function("tokenize_phrase", |b| {
        b.iter(|| black_box(tokenize(black_box(phrase))))
    });
    c.bench_function("preprocess_phrase", |b| {
        b.iter(|| black_box(pre.preprocess(black_box(phrase))))
    });
    c.bench_function("pos_tag_sentence", |b| {
        b.iter(|| black_box(pipeline.pos.tag(black_box(&sentence))))
    });
    c.bench_function("ner_decode_phrase", |b| {
        b.iter(|| black_box(pipeline.ingredient_ner.predict(black_box(&words))))
    });
    c.bench_function("extract_ingredient_e2e", |b| {
        b.iter(|| black_box(pipeline.extract_ingredient(black_box(phrase))))
    });

    let pos_tags = pipeline.pos.tag(&sentence);
    c.bench_function("dependency_parse_sentence", |b| {
        b.iter(|| black_box(pipeline.parser.parse(black_box(&sentence), black_box(&pos_tags))))
    });
    c.bench_function("extract_events_sentence", |b| {
        b.iter(|| black_box(extract_sentence_events(&pipeline, black_box(&sentence), 0)))
    });
    c.bench_function("model_recipe_e2e", |b| {
        b.iter(|| black_box(pipeline.model_recipe(black_box(&corpus.recipes[0]))))
    });

    // K-Means over 1000 POS vectors (the Fig. 2 workload unit).
    let vectors: Vec<Vec<f64>> = corpus
        .recipes
        .iter()
        .flat_map(|r| r.ingredients.iter())
        .take(1000)
        .map(|p| pos_frequency_vector(&pipeline.pos.tag(&p.words())))
        .collect();
    c.bench_function("kmeans_k23_1000_vectors", |b| {
        b.iter_batched(
            || vectors.clone(),
            |v| black_box(KMeans::fit(&v, &KMeansConfig { k: 23, ..Default::default() })),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("minibatch_kmeans_k23_1000_vectors", |b| {
        b.iter_batched(
            || vectors.clone(),
            |v| black_box(minibatch_kmeans(&v, &MiniBatchConfig::default())),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("ner_nbest5_phrase", |b| {
        b.iter(|| black_box(pipeline.ingredient_ner.predict_nbest(black_box(&words), 5)))
    });
    c.bench_function("ner_marginals_phrase", |b| {
        b.iter(|| black_box(pipeline.ingredient_ner.predict_marginals(black_box(&words))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stages
}
criterion_main!(benches);
