//! Macro-benchmarks: the table-level experiment workloads at smoke scale
//! (training included), so regressions in any stage surface here.

use recipe_bench::timing::Bench;
use recipe_bench::{cross_site_from_datasets, table5_experiment, ExperimentScale};
use recipe_core::pipeline::{build_site_dataset, train_pos_tagger, TrainedPipeline};
use recipe_corpus::{RecipeCorpus, Site};
use recipe_text::Preprocessor;
use std::hint::black_box;

fn main() {
    let b = Bench::from_args().sample_size(10);

    let scale = ExperimentScale::smoke(42);
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pre = Preprocessor::default();
    let pos = train_pos_tagger(&corpus, scale.pipeline.pos_epochs, scale.pipeline.seed);
    let ds_ar = build_site_dataset(&corpus, Site::AllRecipes, &pos, &pre, &scale.pipeline);
    let ds_fc = build_site_dataset(&corpus, Site::FoodCom, &pos, &pre, &scale.pipeline);

    b.bench_function("corpus_generation_600", || {
        RecipeCorpus::generate(black_box(&scale.corpus))
    });
    b.bench_function("table4_cross_site_smoke", || {
        cross_site_from_datasets(black_box(&ds_ar), black_box(&ds_fc), &scale.pipeline)
    });
    b.bench_function("table5_instruction_ner_smoke", || {
        table5_experiment(black_box(&corpus), &scale.pipeline)
    });
    b.bench_function("pipeline_train_smoke", || {
        TrainedPipeline::train(black_box(&corpus), &scale.pipeline)
    });
}
