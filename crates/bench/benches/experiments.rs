//! Macro-benchmarks: the table-level experiment workloads at smoke scale
//! (training included), so regressions in any stage surface here.

use criterion::{criterion_group, criterion_main, Criterion};
use recipe_bench::{cross_site_from_datasets, table5_experiment, ExperimentScale};
use recipe_core::pipeline::{build_site_dataset, train_pos_tagger, TrainedPipeline};
use recipe_corpus::{RecipeCorpus, Site};
use recipe_text::Preprocessor;
use std::hint::black_box;

fn bench_experiments(c: &mut Criterion) {
    let scale = ExperimentScale::smoke(42);
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pre = Preprocessor::default();
    let pos = train_pos_tagger(&corpus, scale.pipeline.pos_epochs, scale.pipeline.seed);
    let ds_ar = build_site_dataset(&corpus, Site::AllRecipes, &pos, &pre, &scale.pipeline);
    let ds_fc = build_site_dataset(&corpus, Site::FoodCom, &pos, &pre, &scale.pipeline);

    c.bench_function("corpus_generation_600", |b| {
        b.iter(|| black_box(RecipeCorpus::generate(&scale.corpus)))
    });
    c.bench_function("table4_cross_site_smoke", |b| {
        b.iter(|| black_box(cross_site_from_datasets(&ds_ar, &ds_fc, &scale.pipeline)))
    });
    c.bench_function("table5_instruction_ner_smoke", |b| {
        b.iter(|| black_box(table5_experiment(&corpus, &scale.pipeline)))
    });
    c.bench_function("pipeline_train_smoke", |b| {
        b.iter(|| black_box(TrainedPipeline::train(&corpus, &scale.pipeline)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_experiments
}
criterion_main!(benches);
