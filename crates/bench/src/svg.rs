//! Minimal hand-rolled SVG plotting — enough to render Figure 2 (cluster
//! scatter + elbow curve) without a plotting dependency.

use std::fmt::Write as _;

/// Categorical palette (distinct hues, readable on white).
const PALETTE: &[&str] = &[
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac", "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b",
    "#e377c2", "#7f7f7f", "#bcbd22", "#17becf", "#393b79", "#637939", "#8c6d31", "#843c39",
];

/// Color for a cluster id.
pub fn cluster_color(c: usize) -> &'static str {
    PALETTE[c % PALETTE.len()]
}

fn bounds(points: &[(f64, f64, usize)]) -> (f64, f64, f64, f64) {
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y, _) in points {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    (min_x, max_x, min_y, max_y)
}

/// Render a cluster scatter plot as an SVG string.
///
/// `points` are `(x, y, cluster)`; the viewport auto-fits with a margin.
pub fn scatter_svg(points: &[(f64, f64, usize)], title: &str, width: u32, height: u32) -> String {
    let mut svg = String::new();
    let (w, h) = (f64::from(width), f64::from(height));
    let margin = 40.0;
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{title}</text>"#,
        w / 2.0
    );
    if !points.is_empty() {
        let (min_x, max_x, min_y, max_y) = bounds(points);
        let span_x = (max_x - min_x).max(1e-9);
        let span_y = (max_y - min_y).max(1e-9);
        let sx = |x: f64| margin + (x - min_x) / span_x * (w - 2.0 * margin);
        let sy = |y: f64| h - margin - (y - min_y) / span_y * (h - 2.0 * margin);
        for &(x, y, c) in points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="2.2" fill="{}" fill-opacity="0.6"/>"#,
                sx(x),
                sy(y),
                cluster_color(c)
            );
        }
    }
    svg.push_str("</svg>");
    svg
}

/// Render an inertia-vs-k elbow curve as an SVG string.
pub fn elbow_svg(curve: &[(usize, f64)], title: &str, width: u32, height: u32) -> String {
    let mut svg = String::new();
    let (w, h) = (f64::from(width), f64::from(height));
    let margin = 48.0;
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{title}</text>"#,
        w / 2.0
    );
    if curve.len() >= 2 {
        let min_k = curve.first().map(|&(k, _)| k as f64).unwrap_or(0.0);
        let max_k = curve.last().map(|&(k, _)| k as f64).unwrap_or(1.0);
        let max_i = curve.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
        let min_i = curve.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min);
        let span_k = (max_k - min_k).max(1e-9);
        let span_i = (max_i - min_i).max(1e-9);
        let sx = |k: f64| margin + (k - min_k) / span_k * (w - 2.0 * margin);
        let sy = |v: f64| h - margin - (v - min_i) / span_i * (h - 2.0 * margin);
        let path: Vec<String> = curve
            .iter()
            .map(|&(k, v)| format!("{:.1},{:.1}", sx(k as f64), sy(v)))
            .collect();
        let _ = write!(
            svg,
            r##"<polyline points="{}" fill="none" stroke="#4e79a7" stroke-width="2"/>"##,
            path.join(" ")
        );
        for &(k, v) in curve {
            let _ = write!(
                svg,
                r##"<circle cx="{:.1}" cy="{:.1}" r="3" fill="#4e79a7"/>"##,
                sx(k as f64),
                sy(v)
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="middle">{k}</text>"#,
                sx(k as f64),
                h - margin / 2.0
            );
        }
        // Axis lines.
        let _ = write!(
            svg,
            r##"<line x1="{m}" y1="{b}" x2="{r}" y2="{b}" stroke="#333" stroke-width="1"/>"##,
            m = margin,
            b = h - margin,
            r = w - margin
        );
        let _ = write!(
            svg,
            r##"<line x1="{m}" y1="{t}" x2="{m}" y2="{b}" stroke="#333" stroke-width="1"/>"##,
            m = margin,
            t = margin,
            b = h - margin
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_contains_all_points_and_is_valid_ish() {
        let points = vec![(0.0, 0.0, 0), (1.0, 1.0, 1), (2.0, 0.5, 2)];
        let svg = scatter_svg(&points, "test", 400, 300);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("test"));
    }

    #[test]
    fn colors_cycle_deterministically() {
        assert_eq!(cluster_color(0), cluster_color(24));
        assert_ne!(cluster_color(0), cluster_color(1));
    }

    #[test]
    fn elbow_draws_polyline() {
        let curve = vec![(2usize, 100.0), (4, 50.0), (6, 30.0)];
        let svg = elbow_svg(&curve, "elbow", 400, 300);
        assert!(svg.contains("<polyline"));
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert!(scatter_svg(&[], "empty", 100, 100).contains("</svg>"));
        assert!(elbow_svg(&[], "empty", 100, 100).contains("</svg>"));
        assert!(elbow_svg(&[(3, 1.0)], "one", 100, 100).contains("</svg>"));
        // All-identical points: span guards kick in.
        let same = vec![(1.0, 1.0, 0); 5];
        assert!(scatter_svg(&same, "same", 100, 100).contains("</svg>"));
    }
}
