//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each `table_*` / `figure_*` binary in `src/bin/` is a thin wrapper over
//! the functions here, so the same code paths are unit-tested, benchmarked
//! and used to produce EXPERIMENTS.md.
//!
//! Scale: the binaries default to a corpus of [`DEFAULT_TOTAL_RECIPES`]
//! recipes (1/10 of RecipeDB, same 16:102 site ratio) and draw annotation
//! budgets sized to the paper's Table III (1470/5142 train, 483/1705
//! test). Pass a recipe count as the first CLI argument to rescale.

pub mod experiments;
pub mod history;
pub mod scale;
pub mod svg;
pub mod timing;

pub use experiments::*;
pub use history::append_history;
pub use scale::*;
