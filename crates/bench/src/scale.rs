//! Experiment scaling: corpus size and annotation budgets.

use recipe_cluster::KMeansConfig;
use recipe_core::pipeline::PipelineConfig;
use recipe_corpus::CorpusSpec;
use recipe_ner::TrainConfig;
use recipe_parser::parser::ParserConfig;

/// Default corpus size for the experiment binaries: 1/10 of RecipeDB,
/// keeping the 16 000 : 102 000 site ratio.
pub const DEFAULT_TOTAL_RECIPES: usize = 11_800;

/// The paper's annotation budgets (Table III).
pub mod paper_sizes {
    /// AllRecipes training set size.
    pub const TRAIN_ALLRECIPES: usize = 1470;
    /// Food.com training set size.
    pub const TRAIN_FOODCOM: usize = 5142;
    /// AllRecipes test set size.
    pub const TEST_ALLRECIPES: usize = 483;
    /// Food.com test set size.
    pub const TEST_FOODCOM: usize = 1705;
}

/// Everything an experiment needs: the corpus spec plus a pipeline config
/// whose sampling fractions target the paper's absolute set sizes.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Corpus specification.
    pub corpus: CorpusSpec,
    /// Pipeline configuration.
    pub pipeline: PipelineConfig,
}

impl ExperimentScale {
    /// Scale for a total corpus size, with sampling fractions chosen so
    /// the stratified splits land near the paper's Table III sizes
    /// (capped at sensible fractions for small corpora).
    pub fn for_total(total: usize, seed: u64) -> Self {
        let corpus = CorpusSpec::scaled(total, seed);
        // Expected unique phrases ≈ recipes × mean phrases/recipe. The
        // per-site fraction then targets the paper's absolute sizes.
        let mean_phrases = 9.5;
        let est_ar = (corpus.allrecipes as f64 * mean_phrases).max(1.0);
        let est_fc = (corpus.foodcom as f64 * mean_phrases).max(1.0);
        let frac = |target: usize, est: f64| (target as f64 / est).clamp(0.002, 0.5);
        let pipeline = PipelineConfig {
            pos_epochs: 3,
            ner: TrainConfig {
                epochs: 12,
                ..TrainConfig::default()
            },
            kmeans: KMeansConfig {
                k: 23,
                max_iters: 50,
                ..KMeansConfig::default()
            },
            train_frac_allrecipes: frac(paper_sizes::TRAIN_ALLRECIPES, est_ar),
            test_frac_allrecipes: frac(paper_sizes::TEST_ALLRECIPES, est_ar),
            train_frac_foodcom: frac(paper_sizes::TRAIN_FOODCOM, est_fc),
            test_frac_foodcom: frac(paper_sizes::TEST_FOODCOM, est_fc),
            // The paper hand-annotated a fixed budget (the longest recipes
            // of 40 cuisines, 268 processes + 69 utensils) regardless of
            // corpus size — so the instruction annotation budget is an
            // absolute ~150 sentences, not a proportion. (A recipe averages
            // ~5.5 steps of ~2.75 sentences each, hence the 15.1.)
            instruction_train_frac: (150.0 / (total as f64 * 15.1)).clamp(0.0005, 0.15),
            parser: ParserConfig::default(),
            process_threshold: scale_threshold(47, total),
            utensil_threshold: scale_threshold(10, total),
            seed,
            threads: 0,
        };
        ExperimentScale { corpus, pipeline }
    }

    /// Small scale for smoke tests and Criterion benches.
    pub fn smoke(seed: u64) -> Self {
        let mut s = Self::for_total(600, seed);
        s.pipeline.instruction_train_frac = 0.05;
        s
    }
}

/// Scale an absolute dictionary threshold from the paper's 40 000-recipe
/// mining run down to our corpus size (minimum 2 so thresholding still
/// filters something).
fn scale_threshold(paper_value: usize, total_recipes: usize) -> usize {
    let scaled = (paper_value as f64 * total_recipes as f64 / 40_000.0).round() as usize;
    scaled.max(2)
}

/// Parse the common CLI contract of the experiment binaries:
/// `<binary> [total_recipes] [seed]`.
pub fn parse_cli() -> ExperimentScale {
    let mut args = std::env::args().skip(1);
    let total: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(DEFAULT_TOTAL_RECIPES);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    ExperimentScale::for_total(total, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_targets_paper_sizes() {
        let s = ExperimentScale::for_total(DEFAULT_TOTAL_RECIPES, 42);
        assert_eq!(s.corpus.total(), DEFAULT_TOTAL_RECIPES);
        // AllRecipes: 1600 recipes × ~9.5 phrases ≈ 15 200; 1470 of them
        // is just under 10 %.
        assert!(s.pipeline.train_frac_allrecipes > 0.05);
        assert!(s.pipeline.train_frac_allrecipes < 0.2);
        // Food.com budget is a much smaller fraction (bigger site).
        assert!(s.pipeline.train_frac_foodcom < s.pipeline.train_frac_allrecipes);
    }

    #[test]
    fn thresholds_scale_with_corpus() {
        assert_eq!(scale_threshold(47, 40_000), 47);
        assert_eq!(scale_threshold(47, 4_000), 5);
        assert_eq!(scale_threshold(10, 400), 2);
    }

    #[test]
    fn fractions_stay_in_bounds_at_tiny_scale() {
        let s = ExperimentScale::for_total(50, 1);
        for f in [
            s.pipeline.train_frac_allrecipes,
            s.pipeline.test_frac_allrecipes,
            s.pipeline.train_frac_foodcom,
            s.pipeline.test_frac_foodcom,
        ] {
            assert!((0.0..=0.5).contains(&f));
        }
    }
}
