//! Bench-history appending shared by the timing benchmark binaries.
//!
//! Every run of `inference_throughput` / `parallel_scaling` appends one
//! line to `results/bench_history.jsonl` so `recipe-mine bench-diff`
//! can compare the newest run against its earliest comparable baseline.

/// Append this run's report to the bench history. History is
/// best-effort: a failure warns but never fails the benchmark itself.
pub fn append_history(report: &serde_json::Value) {
    let recorded_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let path = std::path::Path::new(recipe_obs::DEFAULT_HISTORY_PATH);
    match recipe_obs::history::run_from_bench_report(report, recorded_at) {
        Ok(run) => {
            if let Err(e) = recipe_obs::history::append_run(path, &run) {
                eprintln!(
                    "warning: could not append bench history to {}: {e}",
                    path.display()
                );
            } else {
                eprintln!("appended run to {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: bench report not history-compatible: {e}"),
    }
}
