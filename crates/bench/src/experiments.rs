//! The experiment implementations behind every table and figure.

use crate::scale::ExperimentScale;
use recipe_cluster::{inertia_sweep, KMeans, Pca};
use recipe_core::events::{relation_stats, RelationStats};
use recipe_core::instructions::tag_instruction;
use recipe_core::pipeline::{
    build_instruction_datasets, build_site_dataset, train_pos_tagger, PipelineConfig, SiteDataset,
    TrainedPipeline,
};
use recipe_corpus::{RecipeCorpus, Site};
use recipe_eval::metrics::{entity_prf, ClassMetrics};
use recipe_eval::report::TextTable;
use recipe_ner::model::LabeledSequence;
use recipe_ner::{IngredientTag, LabelSet, SequenceModel};
use recipe_tagger::{pos_frequency_vector, PosTagger};
use recipe_text::Preprocessor;
use serde::Serialize;
use std::time::Instant;

/// The paper's Table I example phrases (verbatim from the PDF).
pub const TABLE1_PHRASES: &[&str] = &[
    "1 sheet frozen puff pastry ( thawed )",
    "6 ounces blue cheese , at room temperature",
    "1 tablespoon whole milk ( or half-and-half )",
    "2-3 medium tomatoes",
    "1/2 teaspoon pepper , freshly ground",
    "1/2 teaspoon fresh thyme , minced",
    "1 teaspoon extra virgin olive oil",
];

/// Everything the cross-site experiment produces (Tables III + IV).
#[derive(Debug, Clone, Serialize)]
pub struct CrossSiteResult {
    /// Train sizes: `[AllRecipes, Food.com, BOTH]`.
    pub train_sizes: [usize; 3],
    /// Test sizes: `[AllRecipes, Food.com, BOTH]`.
    pub test_sizes: [usize; 3],
    /// Unique phrases per site `[AllRecipes, Food.com]`.
    pub unique_phrases: [usize; 2],
    /// Entity-level micro F1; `f1[test_set][model]`, both indexed
    /// `[AllRecipes, Food.com, BOTH]`.
    pub f1: [[f64; 3]; 3],
}

impl CrossSiteResult {
    /// Render Table III (dataset sizes).
    pub fn table3(&self) -> TextTable {
        let mut t = TextTable::new(&["Datasets", "AllRecipes", "FOOD.com", "BOTH"]);
        t.row(&[
            "Training Set Size".to_string(),
            self.train_sizes[0].to_string(),
            self.train_sizes[1].to_string(),
            self.train_sizes[2].to_string(),
        ]);
        t.row(&[
            "Testing Set Size".to_string(),
            self.test_sizes[0].to_string(),
            self.test_sizes[1].to_string(),
            self.test_sizes[2].to_string(),
        ]);
        t
    }

    /// Render Table IV (cross-dataset F1 matrix).
    pub fn table4(&self) -> TextTable {
        let names = ["AllRecipes", "FOOD.com", "BOTH"];
        let mut t = TextTable::new(&[
            "Testing Set",
            "AllRecipes model",
            "FOOD.com model",
            "BOTH model",
        ]);
        for (i, name) in names.iter().enumerate() {
            t.row(&[
                name.to_string(),
                format!("{:.4}", self.f1[i][0]),
                format!("{:.4}", self.f1[i][1]),
                format!("{:.4}", self.f1[i][2]),
            ]);
        }
        t
    }
}

/// Train the three NER models (AllRecipes / Food.com / BOTH) and evaluate
/// each on the three test sets — the full §II.F protocol.
pub fn cross_site_experiment(scale: &ExperimentScale) -> (RecipeCorpus, CrossSiteResult) {
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let cfg = &scale.pipeline;
    let pre = Preprocessor::default();
    let pos = train_pos_tagger(&corpus, cfg.pos_epochs, cfg.seed);

    let ds_ar = build_site_dataset(&corpus, Site::AllRecipes, &pos, &pre, cfg);
    let ds_fc = build_site_dataset(&corpus, Site::FoodCom, &pos, &pre, cfg);
    let result = cross_site_from_datasets(&ds_ar, &ds_fc, cfg);
    (corpus, result)
}

/// The model-training + evaluation half, reusable by ablations.
pub fn cross_site_from_datasets(
    ds_ar: &SiteDataset,
    ds_fc: &SiteDataset,
    cfg: &PipelineConfig,
) -> CrossSiteResult {
    let labels = IngredientTag::label_set();
    let mut both_train = ds_ar.train.clone();
    both_train.extend(ds_fc.train.iter().cloned());
    let mut both_test = ds_ar.test.clone();
    both_test.extend(ds_fc.test.iter().cloned());

    let models = [
        SequenceModel::train(&labels, &ds_ar.train, &cfg.ner),
        SequenceModel::train(&labels, &ds_fc.train, &cfg.ner),
        SequenceModel::train(&labels, &both_train, &cfg.ner),
    ];
    let tests: [&[LabeledSequence]; 3] = [&ds_ar.test, &ds_fc.test, &both_test];

    let mut f1 = [[0.0f64; 3]; 3];
    for (ti, test) in tests.iter().enumerate() {
        for (mi, model) in models.iter().enumerate() {
            f1[ti][mi] = ner_f1(model, test);
        }
    }
    CrossSiteResult {
        train_sizes: [ds_ar.train.len(), ds_fc.train.len(), both_train.len()],
        test_sizes: [ds_ar.test.len(), ds_fc.test.len(), both_test.len()],
        unique_phrases: [ds_ar.unique_phrases, ds_fc.unique_phrases],
        f1,
    }
}

/// Entity-level micro F1 of a model over a labeled test set.
pub fn ner_f1(model: &SequenceModel, test: &[LabeledSequence]) -> f64 {
    ner_metrics(model, test).micro.f1
}

/// Full entity-level metrics of a model over a labeled test set.
pub fn ner_metrics(model: &SequenceModel, test: &[LabeledSequence]) -> ClassMetrics {
    let gold: Vec<Vec<String>> = test.iter().map(|(_, t)| t.clone()).collect();
    let pred: Vec<Vec<String>> = test.iter().map(|(w, _)| model.predict(w)).collect();
    entity_prf(&gold, &pred, "O")
}

/// 5-fold cross-validation (the paper's §II.F validation protocol) of the
/// composite model; returns per-fold entity F1.
pub fn crossval_f1(
    data: &[LabeledSequence],
    labels: &LabelSet,
    cfg: &PipelineConfig,
    folds: usize,
) -> Vec<f64> {
    let splits = recipe_eval::kfold_indices(data.len(), folds, cfg.seed);
    splits
        .iter()
        .map(|fold| {
            let train: Vec<LabeledSequence> = fold.train.iter().map(|&i| data[i].clone()).collect();
            let test: Vec<LabeledSequence> = fold.test.iter().map(|&i| data[i].clone()).collect();
            let model = SequenceModel::train(labels, &train, &cfg.ner);
            ner_f1(&model, &test)
        })
        .collect()
}

/// Table V result: instruction NER per-class metrics.
#[derive(Debug, Clone, Serialize)]
pub struct Table5Result {
    /// Training sentences used.
    pub train_size: usize,
    /// Test sentences used.
    pub test_size: usize,
    /// Per-class + aggregate entity metrics.
    pub metrics: ClassMetrics,
}

impl Table5Result {
    /// Render Table V.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&["", "Precision", "Recall", "F1 Score"]);
        for (class, label) in [("PROCESS", "Processes"), ("UTENSIL", "Utensils")] {
            if let Some(s) = self.metrics.per_class.get(class) {
                t.row(&[
                    label.to_string(),
                    format!("{:.2}", s.precision),
                    format!("{:.2}", s.recall),
                    format!("{:.2}", s.f1),
                ]);
            }
        }
        t
    }
}

/// Train and evaluate the instruction NER model (Table V).
pub fn table5_experiment(corpus: &RecipeCorpus, cfg: &PipelineConfig) -> Table5Result {
    let (train, test, _) = build_instruction_datasets(corpus, cfg);
    let labels = recipe_ner::InstructionTag::label_set();
    let model = SequenceModel::train(&labels, &train, &cfg.ner);
    let metrics = ner_metrics(&model, &test);
    Table5Result {
        train_size: train.len(),
        test_size: test.len(),
        metrics,
    }
}

/// Figure 2 result: clustered POS vectors with 2-D PCA coordinates plus
/// the inertia-vs-k elbow series. Both of the paper's panels are covered:
/// (a) cluster in 36-D then project with PCA; (b) project to 2-D with PCA
/// first, then cluster.
#[derive(Debug, Clone, Serialize)]
pub struct Figure2Result {
    /// Panel (a): `(x, y, cluster)` per sampled unique phrase, clusters
    /// from the full 36-D space.
    pub points: Vec<(f64, f64, usize)>,
    /// Panel (b): same coordinates, clusters computed *after* the PCA
    /// projection.
    pub points_pca_first: Vec<(f64, f64, usize)>,
    /// Adjusted Rand index between the (a) and (b) partitions.
    pub variant_agreement: f64,
    /// `(k, inertia)` series for the elbow criterion (36-D clustering).
    pub elbow: Vec<(usize, f64)>,
    /// The elbow point chosen by the second-difference criterion.
    pub chosen_k: usize,
    /// Variance explained by the two PCA axes.
    pub explained: [f64; 2],
}

/// Cluster the corpus's POS vectors, project to 2-D, sweep k (Fig. 2).
pub fn figure2_experiment(
    corpus: &RecipeCorpus,
    pos: &PosTagger,
    cfg: &PipelineConfig,
    max_points: usize,
) -> Figure2Result {
    // Unique phrases from both sites (the paper clusters the union).
    let mut seen = std::collections::HashSet::new();
    let mut vectors = Vec::new();
    for site in [Site::AllRecipes, Site::FoodCom] {
        for p in corpus.phrases(site) {
            if vectors.len() >= max_points {
                break;
            }
            if seen.insert(p.text()) {
                vectors.push(pos_frequency_vector(&pos.tag(&p.words())));
            }
        }
    }
    let km = KMeans::fit(&vectors, &cfg.kmeans);
    let pca = Pca::fit(&vectors, 2);
    let projected = pca.transform_all(&vectors);
    let points: Vec<(f64, f64, usize)> = projected
        .iter()
        .zip(&km.assignments)
        .map(|(p, &c)| (p[0], p[1], c))
        .collect();

    // Panel (b): cluster the 2-D projection itself.
    let km_b = KMeans::fit(&projected, &cfg.kmeans);
    let points_pca_first: Vec<(f64, f64, usize)> = projected
        .iter()
        .zip(&km_b.assignments)
        .map(|(p, &c)| (p[0], p[1], c))
        .collect();
    let variant_agreement = recipe_cluster::adjusted_rand_index(&km.assignments, &km_b.assignments);

    let ks: Vec<usize> = (2..=40).step_by(2).collect();
    let elbow = inertia_sweep(&vectors, &ks, &cfg.kmeans);
    let chosen_k = recipe_cluster::elbow_point(&elbow);
    Figure2Result {
        points,
        points_pca_first,
        variant_agreement,
        elbow,
        chosen_k,
        explained: [pca.explained_variance[0], pca.explained_variance[1]],
    }
}

/// Conclusion-section statistics: relations per instruction and unique
/// ingredient names.
#[derive(Debug, Clone, Serialize)]
pub struct ConclusionStats {
    /// Relations-per-instruction statistics (paper: 6.164 ± 5.70 over
    /// 174 932 steps).
    pub relations: RelationStats,
    /// Unique extracted ingredient names (paper: 20 280).
    pub unique_names: usize,
    /// Recipes measured.
    pub recipes: usize,
}

/// Run the full pipeline and compute the conclusion statistics.
pub fn conclusion_experiment(
    corpus: &RecipeCorpus,
    pipeline: &TrainedPipeline,
    max_recipes: usize,
) -> ConclusionStats {
    let recipes = corpus.recipes.len().min(max_recipes);
    let relations = relation_stats(pipeline, corpus.recipes.iter().take(recipes));
    let unique_names = pipeline.unique_ingredient_names(corpus);
    ConclusionStats {
        relations,
        unique_names,
        recipes,
    }
}

/// Render the Table I demonstration: the paper's seven phrases through the
/// trained extractor.
pub fn table1_rows(pipeline: &TrainedPipeline) -> TextTable {
    let mut t = TextTable::new(&[
        "Ingredient Phrase",
        "Name",
        "State",
        "Quantity",
        "Unit",
        "Temperature",
        "Dry/Fresh",
        "Size",
    ]);
    let blank = || String::new();
    for phrase in TABLE1_PHRASES {
        let e = pipeline.extract_ingredient(phrase);
        t.row(&[
            phrase.to_string(),
            e.name.clone(),
            e.state.clone().unwrap_or_else(blank),
            e.quantity.clone().unwrap_or_else(blank),
            e.unit.clone().unwrap_or_else(blank),
            e.temperature.clone().unwrap_or_else(blank),
            e.dry_fresh.clone().unwrap_or_else(blank),
            e.size.clone().unwrap_or_else(blank),
        ]);
    }
    t
}

/// Figure 3: render an instruction's dependency parse as text.
pub fn render_dependency_parse(pipeline: &TrainedPipeline, words: &[String]) -> String {
    let pos = pipeline.pos.tag(words);
    let tree = pipeline.parser.parse(words, &pos);
    let mut out = String::new();
    for i in 0..words.len() {
        let head = match tree.head(i) {
            None => "ROOT".to_string(),
            Some(h) => words[h].clone(),
        };
        out.push_str(&format!(
            "{:>12}  {:<5} --{}--> {}\n",
            words[i],
            pos[i].as_str(),
            tree.label(i).as_str(),
            head
        ));
    }
    out
}

/// Figure 4: render an instruction's NER tags as text.
pub fn render_instruction_ner(pipeline: &TrainedPipeline, words: &[String]) -> String {
    let tags = tag_instruction(&pipeline.instruction_ner, words);
    words
        .iter()
        .zip(&tags)
        .map(|(w, t)| format!("{w}/{t}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Ablation: CRF vs structured perceptron on the same composite dataset.
#[derive(Debug, Clone, Serialize)]
pub struct TrainerAblation {
    /// Entity F1 of the CRF model on the composite test set.
    pub crf_f1: f64,
    /// CRF wall-clock training seconds.
    pub crf_secs: f64,
    /// Entity F1 of the perceptron model.
    pub perceptron_f1: f64,
    /// Perceptron wall-clock training seconds.
    pub perceptron_secs: f64,
}

/// Run the trainer ablation on prepared datasets.
pub fn trainer_ablation(
    train: &[LabeledSequence],
    test: &[LabeledSequence],
    cfg: &PipelineConfig,
) -> TrainerAblation {
    let labels = IngredientTag::label_set();
    let mut out = TrainerAblation {
        crf_f1: 0.0,
        crf_secs: 0.0,
        perceptron_f1: 0.0,
        perceptron_secs: 0.0,
    };
    for trainer in [recipe_ner::Trainer::Crf, recipe_ner::Trainer::Perceptron] {
        let cfg_t = recipe_ner::TrainConfig { trainer, ..cfg.ner };
        let t0 = Instant::now();
        let model = SequenceModel::train(&labels, train, &cfg_t);
        let secs = t0.elapsed().as_secs_f64();
        let f1 = ner_f1(&model, test);
        match trainer {
            recipe_ner::Trainer::Crf | recipe_ner::Trainer::CrfLbfgs => {
                out.crf_f1 = f1;
                out.crf_secs = secs;
            }
            recipe_ner::Trainer::Perceptron => {
                out.perceptron_f1 = f1;
                out.perceptron_secs = secs;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cross_site_shapes_hold() {
        let scale = ExperimentScale::smoke(7);
        let (_, result) = cross_site_experiment(&scale);
        // Diagonals healthy.
        assert!(result.f1[0][0] > 0.8, "AR/AR {:?}", result.f1);
        assert!(result.f1[1][1] > 0.8, "FC/FC {:?}", result.f1);
        // The paper's key asymmetry: the AllRecipes model degrades on
        // Food.com more than the Food.com model degrades on AllRecipes.
        assert!(
            result.f1[1][0] < result.f1[0][1],
            "expected AR->FC < FC->AR: {:?}",
            result.f1
        );
        // BOTH is the best (or tied-best) model on the BOTH test set.
        assert!(result.f1[2][2] + 1e-9 >= result.f1[2][0]);
        assert!(result.f1[2][2] + 1e-9 >= result.f1[2][1]);
        // Sizes: both splits non-empty, BOTH = sum.
        assert_eq!(
            result.train_sizes[2],
            result.train_sizes[0] + result.train_sizes[1]
        );
    }

    #[test]
    fn smoke_table5_metrics_exist() {
        let scale = ExperimentScale::smoke(3);
        let corpus = RecipeCorpus::generate(&scale.corpus);
        let r = table5_experiment(&corpus, &scale.pipeline);
        assert!(r.train_size > 0 && r.test_size > 0);
        let process = &r.metrics.per_class["PROCESS"];
        let utensil = &r.metrics.per_class["UTENSIL"];
        assert!(process.f1 > 0.6, "process f1 {}", process.f1);
        assert!(utensil.f1 > 0.6, "utensil f1 {}", utensil.f1);
    }

    #[test]
    fn smoke_figure2_produces_clusters_and_elbow() {
        let scale = ExperimentScale::smoke(5);
        let corpus = RecipeCorpus::generate(&scale.corpus);
        let pos = train_pos_tagger(&corpus, 2, 5);
        let fig = figure2_experiment(&corpus, &pos, &scale.pipeline, 800);
        assert!(!fig.points.is_empty());
        assert_eq!(fig.elbow.len(), 20);
        assert!(fig.chosen_k >= 2);
        assert!(fig.explained[0] >= fig.explained[1]);
        // Inertia decreases along the sweep overall.
        assert!(fig.elbow.first().unwrap().1 > fig.elbow.last().unwrap().1);
    }
}
