//! Minimal wall-clock benchmark harness behind the `[[bench]]` targets.
//!
//! A self-contained replacement for the Criterion dependency: each
//! benchmark is calibrated to a target wall time, then timed over a fixed
//! number of samples, and the median / mean / min per-iteration times are
//! printed in Criterion-like one-line form. Percentile math is shared
//! with the observability layer ([`recipe_obs::SampleSummary`]) rather
//! than re-implemented here. Run with `cargo bench -p recipe-bench`;
//! positional arguments filter benchmarks by substring.

use recipe_obs::SampleSummary;
use std::time::{Duration, Instant};

/// One benchmark runner: holds reporting options and the name filter.
pub struct Bench {
    filters: Vec<String>,
    /// Wall-clock budget each benchmark's measurement phase aims for.
    pub target_time: Duration,
    /// Number of timed samples per benchmark.
    pub samples: usize,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            filters: Vec::new(),
            target_time: Duration::from_millis(500),
            samples: 20,
        }
    }
}

/// Per-iteration timing statistics from one [`Bench::measure`] run, in
/// seconds. Derived from a [`SampleSummary`] over the per-sample times.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median per-iteration time over the samples.
    pub median: f64,
    /// Mean per-iteration time.
    pub mean: f64,
    /// Fastest sample's per-iteration time.
    pub min: f64,
    /// Exact (interpolated) 90th-percentile per-iteration time.
    pub p90: f64,
    /// Exact (interpolated) 99th-percentile per-iteration time.
    pub p99: f64,
    /// Exact (interpolated) 99.9th-percentile per-iteration time.
    pub p999: f64,
    /// Iterations per sample (from calibration).
    pub iters: u64,
    /// Number of timed samples.
    pub samples: usize,
}

impl Stats {
    /// Build per-iteration statistics directly from raw samples in
    /// seconds (one observation per sample, `iters = 1`) — the entry
    /// point for benchmarks that collect their own timings (e.g. the
    /// open-loop serving bench) instead of going through
    /// [`Bench::measure`]'s calibration loop.
    pub fn from_samples(samples: Vec<f64>) -> Stats {
        let summary = SampleSummary::from_samples(samples);
        Stats {
            min: summary.min,
            median: summary.median,
            mean: summary.mean,
            p90: summary.p90,
            p99: summary.p99,
            p999: summary.p999,
            iters: 1,
            samples: summary.n,
        }
    }
}

/// Machine-readable row for one [`Stats`] measurement, in the shape
/// the `bench-diff` gate expects: `_s` fields in seconds (gated),
/// `_per_s` rates (informational), `name` + `threads` as the row key.
/// Shared by every benchmark binary that appends to the history so the
/// percentile plumbing exists exactly once.
pub fn stats_json(name: &str, threads: u64, s: &Stats, phrases: usize) -> serde_json::Value {
    serde_json::json!({
        "name": name,
        "threads": threads,
        "median_s": s.median,
        "mean_s": s.mean,
        "min_s": s.min,
        "p90_s": s.p90,
        "p99_s": s.p99,
        "p999_s": s.p999,
        "iters": s.iters,
        "samples": s.samples,
        "phrases_per_s": if phrases > 0 { phrases as f64 / s.median } else { 0.0 },
    })
}

/// Deterministic open-loop arrival offsets, in seconds from the start
/// of the run: `n` exponential inter-arrival gaps at `qps` requests
/// per second, drawn from a seeded splitmix64 stream and summed. The
/// same `(qps, n, seed)` always replays the same schedule, so two
/// sustained-load runs offer identical traffic.
pub fn arrival_offsets(qps: f64, n: usize, seed: u64) -> Vec<f64> {
    let rate = qps.max(1e-9);
    let mut state = seed;
    let mut at = 0.0f64;
    (0..n)
        .map(|_| {
            // splitmix64: the standard 64-bit finalizer-based stream.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            // Uniform in (0, 1]: 53 mantissa bits, never exactly zero.
            let u = ((z >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            at += -u.ln() / rate;
            at
        })
        .collect()
}

impl Bench {
    /// Build a runner from CLI arguments: positional args are substring
    /// filters; `--bench`/`--exact` (passed by `cargo bench`) are ignored.
    pub fn from_args() -> Self {
        let mut b = Bench::default();
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                b.filters.push(arg);
            }
        }
        b
    }

    /// Same runner with `samples` timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(2);
        self
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    /// Calibrate and time `f`, returning the per-iteration statistics
    /// without printing (the hook for machine-readable reports like
    /// `BENCH_parallel.json`).
    pub fn measure<T>(&self, mut f: impl FnMut() -> T) -> Stats {
        // Calibration: find an iteration count whose batch takes roughly
        // target_time / samples, so total wall time is bounded.
        let mut iters = 1u64;
        let per_sample = self.target_time / self.samples as u32;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= per_sample || iters >= 1 << 30 {
                let scale = per_sample.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                iters = ((iters as f64 * scale).ceil() as u64).clamp(1, 1 << 30);
                break;
            }
            iters *= 2;
        }

        let per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        let summary = SampleSummary::from_samples(per_iter);

        Stats {
            min: summary.min,
            median: summary.median,
            mean: summary.mean,
            p90: summary.p90,
            p99: summary.p99,
            p999: summary.p999,
            iters,
            samples: summary.n,
        }
    }

    /// Calibrate and time `f`, printing a one-line summary.
    pub fn bench_function<T>(&self, name: &str, f: impl FnMut() -> T) {
        if !self.selected(name) {
            return;
        }
        let stats = self.measure(f);
        println!(
            "{name:<40} median {:>12}  mean {:>12}  min {:>12}  ({} iters x {} samples)",
            fmt_secs(stats.median),
            fmt_secs(stats.mean),
            fmt_secs(stats.min),
            stats.iters,
            stats.samples,
        );
    }
}

/// Human units for a per-iteration time in seconds.
fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_select_by_substring() {
        let b = Bench {
            filters: vec!["toke".into()],
            ..Bench::default()
        };
        assert!(b.selected("tokenize_phrase"));
        assert!(!b.selected("kmeans"));
        assert!(Bench::default().selected("anything"));
    }

    #[test]
    fn bench_function_runs_and_counts() {
        let b = Bench::default().sample_size(2);
        let b = Bench {
            target_time: Duration::from_millis(5),
            ..b
        };
        let mut calls = 0u64;
        b.bench_function("trivial", || calls += 1);
        assert!(calls > 0);
    }

    #[test]
    fn measure_returns_consistent_stats() {
        let b = Bench {
            target_time: Duration::from_millis(5),
            ..Bench::default().sample_size(3)
        };
        let stats = b.measure(|| std::hint::black_box(21 * 2));
        assert!(stats.min > 0.0);
        assert!(stats.median >= stats.min);
        assert!(stats.iters >= 1);
        assert_eq!(stats.samples, 3);
    }

    #[test]
    fn from_samples_matches_summary_percentiles() {
        let stats = Stats::from_samples(vec![0.004, 0.001, 0.003, 0.002]);
        assert_eq!(stats.iters, 1);
        assert_eq!(stats.samples, 4);
        assert_eq!(stats.min, 0.001);
        assert!(stats.median >= stats.min && stats.p999 >= stats.median);
    }

    #[test]
    fn stats_json_has_gated_fields_and_row_key() {
        let stats = Stats::from_samples(vec![0.002, 0.001]);
        let row = stats_json("qps100", 4, &stats, 0);
        assert_eq!(row.get("name").and_then(|v| v.as_str()), Some("qps100"));
        assert_eq!(row.get("threads").and_then(|v| v.as_u64()), Some(4));
        for key in ["median_s", "mean_s", "min_s", "p90_s", "p99_s", "p999_s"] {
            assert!(row.get(key).and_then(|v| v.as_f64()).is_some(), "{key}");
        }
        assert_eq!(row.get("phrases_per_s").and_then(|v| v.as_f64()), Some(0.0));
    }

    #[test]
    fn arrival_offsets_are_deterministic_and_match_rate() {
        let a = arrival_offsets(100.0, 500, 7);
        let b = arrival_offsets(100.0, 500, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[1] > w[0]), "offsets must increase");
        // 500 arrivals at 100/s should span about 5 s of offered load.
        let span = *a.last().unwrap();
        assert!((2.5..10.0).contains(&span), "span {span}");
        // A different seed replays a different schedule.
        assert_ne!(a, arrival_offsets(100.0, 500, 8));
    }

    #[test]
    fn fmt_secs_units() {
        assert!(fmt_secs(5e-9).ends_with("ns"));
        assert!(fmt_secs(5e-6).ends_with("µs"));
        assert!(fmt_secs(5e-3).ends_with("ms"));
        assert!(fmt_secs(5.0).ends_with('s'));
    }
}
