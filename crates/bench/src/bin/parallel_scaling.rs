//! Thread-scaling benchmark for the deterministic runtime.
//!
//! Times the three parallelized hot paths — CRF/L-BFGS training, K-Means
//! fitting, batch recipe extraction — at 1, 2, 4 and 8 worker threads,
//! verifies the outputs are byte-identical at every thread count, and
//! writes a machine-readable report (default `BENCH_parallel.json`).
//!
//! Usage: `parallel_scaling [total_recipes] [seed] [out.json]`

use recipe_bench::timing::{Bench, Stats};
use recipe_bench::ExperimentScale;
use recipe_cluster::{KMeans, KMeansConfig};
use recipe_core::pipeline::TrainedPipeline;
use recipe_corpus::{RecipeCorpus, Site};
use recipe_ner::{IngredientTag, SequenceModel, TrainConfig, Trainer};
use recipe_runtime::Runtime;
use recipe_tagger::pos_frequency_vector;
use serde_json::json;
use std::time::Duration;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn stats_json(name: &str, threads: usize, s: &Stats, baseline_median: f64) -> serde_json::Value {
    json!({
        "name": name,
        "threads": threads,
        "median_s": s.median,
        "mean_s": s.mean,
        "min_s": s.min,
        "p90_s": s.p90,
        "p99_s": s.p99,
        "p999_s": s.p999,
        "iters": s.iters,
        "samples": s.samples,
        "speedup_vs_1_thread": baseline_median / s.median,
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let total: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let out_path = args.next().unwrap_or_else(|| "BENCH_parallel.json".into());

    let scale = ExperimentScale::for_total(total, seed);
    eprintln!("generating corpus of {total} recipes (seed {seed})...");
    let corpus = RecipeCorpus::generate(&scale.corpus);
    eprintln!("training pipeline once (shared models for the extraction benchmark)...");
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);

    // Shared inputs for the three hot paths.
    let crf_train = &pipeline.site_datasets[0].train;
    let labels = IngredientTag::label_set();
    let vectors: Vec<Vec<f64>> = corpus
        .phrases(Site::AllRecipes)
        .iter()
        .map(|p| pos_frequency_vector(&pipeline.pos.tag(&p.words())))
        .collect();
    let kmeans_cfg = KMeansConfig {
        k: 23,
        max_iters: 30,
        ..KMeansConfig::default()
    };

    let mut bench = Bench::default().sample_size(3);
    bench.target_time = Duration::from_millis(100);

    let mut results: Vec<serde_json::Value> = Vec::new();
    let mut baselines: [f64; 3] = [0.0; 3];
    let mut reference: Option<(String, Vec<usize>, String)> = None;

    for &t in &THREAD_COUNTS {
        eprintln!("benchmarking at {t} thread(s)...");
        let rt = Runtime::new(t);
        let ner_cfg = TrainConfig {
            trainer: Trainer::CrfLbfgs,
            epochs: 10,
            threads: t,
            ..TrainConfig::default()
        };

        let crf = bench.measure(|| SequenceModel::train(&labels, crf_train, &ner_cfg));
        let kmeans = bench.measure(|| KMeans::fit_rt(&vectors, &kmeans_cfg, &rt));
        let extract = bench.measure(|| pipeline.model_recipes(&corpus.recipes, &rt));

        // Determinism audit: the artifacts produced at this thread count
        // must be byte-identical to the 1-thread reference.
        let ner_json = serde_json::to_string(&SequenceModel::train(&labels, crf_train, &ner_cfg))
            .expect("serialize NER model");
        let km = KMeans::fit_rt(&vectors, &kmeans_cfg, &rt);
        let models_json = serde_json::to_string(&pipeline.model_recipes(&corpus.recipes, &rt))
            .expect("serialize recipe models");
        match &reference {
            None => reference = Some((ner_json, km.assignments, models_json)),
            Some((r_ner, r_assign, r_models)) => {
                assert_eq!(&ner_json, r_ner, "CRF artifact differs at {t} threads");
                assert_eq!(&km.assignments, r_assign, "K-Means differs at {t} threads");
                assert_eq!(&models_json, r_models, "extraction differs at {t} threads");
            }
        }

        if t == 1 {
            baselines = [crf.median, kmeans.median, extract.median];
        }
        results.push(stats_json("crf_lbfgs_train", t, &crf, baselines[0]));
        results.push(stats_json("kmeans_fit", t, &kmeans, baselines[1]));
        results.push(stats_json("batch_extract", t, &extract, baselines[2]));
    }

    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let report = json!({
        "benchmark": "parallel_scaling",
        "total_recipes": total,
        "seed": seed,
        "hardware_threads": hardware_threads,
        "note": "speedups are bounded by hardware_threads; outputs verified \
                 byte-identical across all thread counts",
        "units": "fields ending _s are seconds, _per_s rates; the bench-diff \
                  gate compares only the _s fields",
        "deterministic": true,
        "results": results,
    });
    let rendered = serde_json::to_string_pretty(&report).expect("render report");
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write report");
    eprintln!("wrote {out_path}");
    recipe_bench::append_history(&report);
    println!("{rendered}");
}
