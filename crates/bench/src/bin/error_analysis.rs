//! Extension experiment: per-template error analysis of the ingredient
//! NER — which lexical-structure families carry the residual errors?
//!
//! The synthetic corpus records each phrase's gold template family, so F1
//! decomposes by family; the hard families are exactly the complex,
//! Food.com-weighted ones (parentheticals, multi-state, homograph-heavy).
//!
//! Usage: `error_analysis [total_recipes] [seed]`

use recipe_bench::parse_cli;
use recipe_core::pipeline::{train_pos_tagger, PipelineConfig};
use recipe_corpus::{AnnotatedPhrase, RecipeCorpus, Site};
use recipe_eval::metrics::entity_prf;
use recipe_ner::model::LabeledSequence;
use recipe_ner::{IngredientTag, SequenceModel};
use recipe_text::Preprocessor;

fn to_seq(pre: &Preprocessor, p: &AnnotatedPhrase) -> LabeledSequence {
    let (w, t) = p.preprocessed(pre);
    (w, t.into_iter().map(|x| x.as_str().to_string()).collect())
}

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pre = Preprocessor::default();
    let cfg: PipelineConfig = scale.pipeline;
    let pos = train_pos_tagger(&corpus, cfg.pos_epochs, cfg.seed);

    // Composite train set via the standard pipeline sampling.
    let ds_ar =
        recipe_core::pipeline::build_site_dataset(&corpus, Site::AllRecipes, &pos, &pre, &cfg);
    let ds_fc = recipe_core::pipeline::build_site_dataset(&corpus, Site::FoodCom, &pos, &pre, &cfg);
    let mut train = ds_ar.train.clone();
    train.extend(ds_fc.train.iter().cloned());
    let model = SequenceModel::train(&IngredientTag::label_set(), &train, &cfg.ner);

    // Held-out phrases grouped by gold template family (text-disjoint from
    // the training surface forms).
    let train_texts: std::collections::HashSet<String> =
        train.iter().map(|(w, _)| w.join(" ")).collect();
    let n_templates = recipe_corpus::grammar::num_templates();
    let mut by_template: Vec<Vec<LabeledSequence>> = vec![Vec::new(); n_templates];
    let mut seen = std::collections::HashSet::new();
    for site in [Site::AllRecipes, Site::FoodCom] {
        for p in corpus.phrases(site) {
            if by_template[p.template].len() >= 400 {
                continue;
            }
            if !seen.insert(p.text()) {
                continue;
            }
            let seq = to_seq(&pre, p);
            if train_texts.contains(&seq.0.join(" ")) {
                continue;
            }
            by_template[p.template].push(seq);
        }
    }

    println!("Per-template-family error analysis (entity F1, held-out phrases)");
    println!("{:>8} {:>8} {:>8}", "family", "phrases", "F1");
    let mut ranked: Vec<(usize, usize, f64)> = Vec::new();
    for (t, seqs) in by_template.iter().enumerate() {
        if seqs.len() < 20 {
            continue;
        }
        let gold: Vec<Vec<String>> = seqs.iter().map(|(_, g)| g.clone()).collect();
        let pred: Vec<Vec<String>> = seqs.iter().map(|(w, _)| model.predict(w)).collect();
        let f1 = entity_prf(&gold, &pred, "O").micro.f1;
        ranked.push((t, seqs.len(), f1));
    }
    ranked.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    for (t, n, f1) in &ranked {
        println!("{:>8} {:>8} {:>8.4}", t, n, f1);
    }
    if let (Some(worst), Some(best)) = (ranked.first(), ranked.last()) {
        println!();
        println!(
            "hardest family {} (F1 {:.4}) vs easiest {} (F1 {:.4}) — the residual error",
            worst.0, worst.2, best.0, best.2
        );
        println!("concentrates in the complex, Food.com-weighted structures, mirroring the");
        println!("paper's motivation for cluster-stratified annotation.");
    }
}
