//! Regenerates Table I + Table II: the trained ingredient NER applied to
//! the paper's seven example phrases, plus the tag inventory.
//!
//! Usage: `table1 [total_recipes] [seed]`

use recipe_bench::{parse_cli, table1_rows};
use recipe_core::pipeline::TrainedPipeline;
use recipe_corpus::RecipeCorpus;
use recipe_ner::IngredientTag;

fn main() {
    let scale = parse_cli();
    eprintln!("generating corpus of {} recipes...", scale.corpus.total());
    let corpus = RecipeCorpus::generate(&scale.corpus);
    eprintln!("training pipeline...");
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);

    println!("Table II: Named Entity Recognition Tags");
    for tag in IngredientTag::ALL
        .iter()
        .filter(|t| **t != IngredientTag::O)
    {
        println!("  {tag}");
    }
    println!();
    println!("Table I: Annotations on the Ingredients Section by the NER Model");
    println!("{}", table1_rows(&pipeline));
}
