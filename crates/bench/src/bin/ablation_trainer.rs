//! Ablation: CRF vs structured averaged perceptron on the composite
//! ingredient dataset — accuracy/training-time trade-off called out in
//! DESIGN.md.
//!
//! Usage: `ablation_trainer [total_recipes] [seed]`

use recipe_bench::{parse_cli, trainer_ablation};
use recipe_core::pipeline::{build_site_dataset, train_pos_tagger};
use recipe_corpus::{RecipeCorpus, Site};
use recipe_text::Preprocessor;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pre = Preprocessor::default();
    let pos = train_pos_tagger(&corpus, scale.pipeline.pos_epochs, scale.pipeline.seed);
    let ds_ar = build_site_dataset(&corpus, Site::AllRecipes, &pos, &pre, &scale.pipeline);
    let ds_fc = build_site_dataset(&corpus, Site::FoodCom, &pos, &pre, &scale.pipeline);
    let mut train = ds_ar.train.clone();
    train.extend(ds_fc.train.iter().cloned());
    let mut test = ds_ar.test.clone();
    test.extend(ds_fc.test.iter().cloned());

    let r = trainer_ablation(&train, &test, &scale.pipeline);
    println!("Ablation: trainer choice on the composite (BOTH) dataset");
    println!("train {} / test {} sequences", train.len(), test.len());
    println!("CRF:        F1 {:.4}  train {:.2}s", r.crf_f1, r.crf_secs);
    println!(
        "Perceptron: F1 {:.4}  train {:.2}s",
        r.perceptron_f1, r.perceptron_secs
    );
    println!(
        "speedup {:.1}x, F1 delta {:+.4}",
        r.crf_secs / r.perceptron_secs.max(1e-9),
        r.perceptron_f1 - r.crf_f1
    );
}
