//! Regenerates Table III: training and testing dataset sizes produced by
//! the cluster-stratified sampling protocol.
//!
//! Usage: `table3 [total_recipes] [seed]`

use recipe_bench::{cross_site_experiment, parse_cli};

fn main() {
    let scale = parse_cli();
    eprintln!(
        "corpus: {} AllRecipes + {} Food.com recipes",
        scale.corpus.allrecipes, scale.corpus.foodcom
    );
    let (_, result) = cross_site_experiment(&scale);
    println!("Table III: Training and Testing Dataset Sizes For NER on Ingredients Section");
    println!("(paper: train 1470 / 5142 / 6612, test 483 / 1705 / 2188)");
    println!("{}", result.table3());
    println!(
        "unique phrases: AllRecipes {} | FOOD.com {}",
        result.unique_phrases[0], result.unique_phrases[1]
    );
}
