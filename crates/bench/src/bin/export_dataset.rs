//! Produce the paper's "data release": the labeled ingredient-phrase
//! training and testing sets (the paper published 8 800 phrases, 6 612
//! train + 2 188 test) in a CoNLL-style column format.
//!
//! Writes `dataset_train.conll` and `dataset_test.conll` to the working
//! directory.
//!
//! Usage: `export_dataset [total_recipes] [seed]`

use recipe_bench::parse_cli;
use recipe_core::pipeline::{build_site_dataset, train_pos_tagger};
use recipe_corpus::export::phrases_to_conll;
use recipe_corpus::{AnnotatedPhrase, RecipeCorpus, Site};
use recipe_text::Preprocessor;
use std::collections::HashSet;
use std::io::Write;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pre = Preprocessor::default();
    let pos = train_pos_tagger(&corpus, scale.pipeline.pos_epochs, scale.pipeline.seed);

    // Re-run the stratified sampling, then recover the underlying
    // annotated phrases by surface text so the export keeps gold POS too.
    let mut train_texts: HashSet<String> = HashSet::new();
    let mut test_texts: HashSet<String> = HashSet::new();
    for site in [Site::AllRecipes, Site::FoodCom] {
        let ds = build_site_dataset(&corpus, site, &pos, &pre, &scale.pipeline);
        train_texts.extend(ds.train.iter().map(|(w, _)| w.join(" ")));
        test_texts.extend(ds.test.iter().map(|(w, _)| w.join(" ")));
    }

    let mut train: Vec<&AnnotatedPhrase> = Vec::new();
    let mut test: Vec<&AnnotatedPhrase> = Vec::new();
    let mut seen = HashSet::new();
    for site in [Site::AllRecipes, Site::FoodCom] {
        for phrase in corpus.phrases(site) {
            if !seen.insert(phrase.text()) {
                continue;
            }
            let key = phrase.preprocessed(&pre).0.join(" ");
            if train_texts.contains(&key) {
                train.push(phrase);
            } else if test_texts.contains(&key) {
                test.push(phrase);
            }
        }
    }

    std::fs::File::create("dataset_train.conll")
        .and_then(|mut f| f.write_all(phrases_to_conll(&train).as_bytes()))
        .expect("write train");
    std::fs::File::create("dataset_test.conll")
        .and_then(|mut f| f.write_all(phrases_to_conll(&test).as_bytes()))
        .expect("write test");

    println!("dataset export (paper released 6612 train + 2188 test = 8800 phrases)");
    println!("dataset_train.conll: {} phrases", train.len());
    println!("dataset_test.conll:  {} phrases", test.len());
}
