//! Regenerates Figure 4: instruction-section NER inference over a recipe.
//!
//! Usage: `figure4 [total_recipes] [seed]`

use recipe_bench::{parse_cli, render_instruction_ner};
use recipe_core::pipeline::TrainedPipeline;
use recipe_corpus::RecipeCorpus;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);

    let recipe = &corpus.recipes[1];
    println!(
        "Figure 4: NER inference for the instruction section of \"{}\"",
        recipe.title
    );
    for sent in &recipe.instructions {
        println!("  {}", render_instruction_ner(&pipeline, &sent.words()));
    }
    println!();
    println!(
        "dictionaries: {} processes (threshold {}), {} utensils (threshold {})",
        pipeline.dicts.processes.len(),
        scale.pipeline.process_threshold,
        pipeline.dicts.utensils.len(),
        scale.pipeline.utensil_threshold
    );
}
