//! Regenerates Figure 2: K-Means clusters of the 1×36 POS-tag frequency
//! vectors, projected to 2-D with PCA, plus the inertia-vs-k elbow curve.
//!
//! Emits `figure2_points.csv` (x, y, cluster) and `figure2_elbow.csv`
//! (k, inertia) into the working directory and prints a summary.
//!
//! Usage: `figure2 [total_recipes] [seed]`

use recipe_bench::{figure2_experiment, parse_cli};
use recipe_core::pipeline::train_pos_tagger;
use recipe_corpus::RecipeCorpus;
use std::io::Write;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pos = train_pos_tagger(&corpus, scale.pipeline.pos_epochs, scale.pipeline.seed);
    let fig = figure2_experiment(&corpus, &pos, &scale.pipeline, 20_000);

    let mut f = std::fs::File::create("figure2_points.csv").expect("create points csv");
    writeln!(f, "x,y,cluster").unwrap();
    for (x, y, c) in &fig.points {
        writeln!(f, "{x:.6},{y:.6},{c}").unwrap();
    }
    let mut f = std::fs::File::create("figure2b_points.csv").expect("create panel-b points csv");
    writeln!(f, "x,y,cluster").unwrap();
    for (x, y, c) in &fig.points_pca_first {
        writeln!(f, "{x:.6},{y:.6},{c}").unwrap();
    }
    let mut f = std::fs::File::create("figure2_elbow.csv").expect("create elbow csv");
    writeln!(f, "k,inertia").unwrap();
    for (k, inertia) in &fig.elbow {
        writeln!(f, "{k},{inertia:.3}").unwrap();
    }

    println!("Figure 2: POS-vector clustering");
    println!(
        "points: {} unique phrases, k = {} clusters (paper: 23)",
        fig.points.len(),
        scale.pipeline.kmeans.k
    );
    println!(
        "elbow criterion suggests k = {} (paper chose 23 from elbow + interpretability)",
        fig.chosen_k
    );
    println!(
        "PCA explained variance: axis1 {:.3}, axis2 {:.3}",
        fig.explained[0], fig.explained[1]
    );
    println!("inertia curve:");
    for (k, inertia) in &fig.elbow {
        println!("  k={k:<3} inertia={inertia:.1}");
    }
    println!(
        "panel (a) cluster-then-PCA vs panel (b) PCA-then-cluster: ARI {:.3}",
        fig.variant_agreement
    );
    // Render the actual figure: both panels + the elbow curve.
    let sample: Vec<(f64, f64, usize)> = fig.points.iter().copied().take(5000).collect();
    std::fs::write(
        "figure2a.svg",
        recipe_bench::svg::scatter_svg(
            &sample,
            "Fig 2(a): K-Means in 36-D, PCA projection",
            720,
            540,
        ),
    )
    .expect("write fig2a svg");
    let sample_b: Vec<(f64, f64, usize)> =
        fig.points_pca_first.iter().copied().take(5000).collect();
    std::fs::write(
        "figure2b.svg",
        recipe_bench::svg::scatter_svg(&sample_b, "Fig 2(b): PCA first, then K-Means", 720, 540),
    )
    .expect("write fig2b svg");
    std::fs::write(
        "figure2_elbow.svg",
        recipe_bench::svg::elbow_svg(&fig.elbow, "Inertia vs k (elbow criterion)", 720, 420),
    )
    .expect("write elbow svg");
    println!("wrote figure2_points.csv, figure2b_points.csv, figure2_elbow.csv,");
    println!("      figure2a.svg, figure2b.svg, figure2_elbow.svg");
}
