//! Compiled-inference throughput benchmark.
//!
//! Times batch extraction through the compiled (sparse CSR + scratch
//! arena) inference path with the phrase cache on and off, at 1, 2, 4
//! and 8 worker threads, measures per-phrase extraction latency
//! (p50/p99 via [`recipe_obs::SampleSummary`]), verifies the compiled
//! output is byte-identical to the reference (uncompiled, uncached)
//! path, measures the single-thread overhead of enabling tracing, and
//! writes a machine-readable report (default `BENCH_inference.json`).
//!
//! Usage: `inference_throughput [total_recipes] [seed] [out.json] [--smoke]`
//!
//! `--smoke` shrinks the corpus and sample count for CI: it checks that
//! the benchmark runs end to end and that the identity assertions hold,
//! not that the numbers are stable.

use recipe_bench::timing::{Bench, Stats};
use recipe_bench::ExperimentScale;
use recipe_core::pipeline::TrainedPipeline;
use recipe_corpus::{RecipeCorpus, Site};
use recipe_obs::SampleSummary;
use recipe_runtime::Runtime;
use serde_json::json;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Median single-thread `batch_extract` from the PR 2 baseline run of
/// `parallel_scaling` (300 recipes, seed 42), the speedup reference for
/// the compiled path.
const PR2_BASELINE_MEDIAN_S: f64 = 0.384329347;

/// Time one `extract_ingredient` call per phrase and summarise the
/// per-call latencies (shared percentile math from `recipe-obs`).
fn phrase_latencies(pipeline: &TrainedPipeline, phrases: &[String]) -> SampleSummary {
    let mut out = Vec::with_capacity(phrases.len());
    for p in phrases {
        let t0 = Instant::now();
        std::hint::black_box(pipeline.extract_ingredient(p));
        out.push(t0.elapsed().as_secs_f64());
    }
    SampleSummary::from_samples(out)
}

fn latency_json(summary: &SampleSummary) -> serde_json::Value {
    // Seconds-valued fields alongside the original microsecond ones:
    // `_s` is what the bench-diff gate and history compare; `_us` stays
    // for readers of the older report shape.
    json!({
        "phrases": summary.n,
        "p50_us": summary.median * 1e6,
        "p99_us": summary.p99 * 1e6,
        "p50_s": summary.median,
        "p99_s": summary.p99,
        "p999_s": summary.p999,
    })
}

#[allow(clippy::too_many_arguments)]
fn stats_json(
    name: &str,
    threads: usize,
    total: usize,
    s: &Stats,
    baseline_median: f64,
    phrase_latency: serde_json::Value,
    cache: serde_json::Value,
) -> serde_json::Value {
    json!({
        "name": name,
        "threads": threads,
        "median_s": s.median,
        "mean_s": s.mean,
        "min_s": s.min,
        "p90_s": s.p90,
        "p99_s": s.p99,
        "p999_s": s.p999,
        "iters": s.iters,
        "samples": s.samples,
        "recipes_per_s": total as f64 / s.median,
        "speedup_vs_1_thread": baseline_median / s.median,
        "phrase_latency": phrase_latency,
        "cache": cache,
    })
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let mut args = raw.iter().filter(|a| a.as_str() != "--smoke");
    let default_total = if smoke { 40 } else { 300 };
    let total: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_total);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let out_path = args
        .next()
        .cloned()
        .unwrap_or_else(|| "BENCH_inference.json".into());

    let scale = ExperimentScale::for_total(total, seed);
    eprintln!("generating corpus of {total} recipes (seed {seed})...");
    let corpus = RecipeCorpus::generate(&scale.corpus);
    eprintln!("training pipeline...");
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);

    let phrases: Vec<String> = corpus
        .phrases(Site::AllRecipes)
        .iter()
        .map(|p| p.text())
        .collect();

    // Reference output: the uncompiled, uncached decode path. Everything
    // the compiled path produces must match this byte-for-byte.
    eprintln!("computing reference (uncompiled, uncached) output...");
    let reference = serde_json::to_string(
        &pipeline.model_recipes_reference(&corpus.recipes, &Runtime::serial()),
    )
    .expect("serialize reference output");

    let mut bench = Bench::default().sample_size(if smoke { 2 } else { 3 });
    bench.target_time = Duration::from_millis(if smoke { 20 } else { 100 });

    let mut results: Vec<serde_json::Value> = Vec::new();
    let mut baselines = [0.0f64; 2];
    let mut speedup_vs_pr2 = None;
    let mut trace_overhead = None;

    for &t in &THREAD_COUNTS {
        eprintln!("benchmarking at {t} thread(s)...");
        let rt = Runtime::new(t);

        // Identity audit at this thread count: compiled decode, with and
        // without the cache, must reproduce the reference bytes.
        pipeline.set_cache_enabled(true);
        pipeline.inference.clear_caches();
        let cached_json = serde_json::to_string(&pipeline.model_recipes(&corpus.recipes, &rt))
            .expect("serialize cached output");
        assert_eq!(
            cached_json, reference,
            "compiled+cached output differs from reference at {t} threads"
        );
        pipeline.set_cache_enabled(false);
        let uncached_json = serde_json::to_string(&pipeline.model_recipes(&corpus.recipes, &rt))
            .expect("serialize uncached output");
        assert_eq!(
            uncached_json, reference,
            "compiled (no cache) output differs from reference at {t} threads"
        );

        // Compiled path, cache disabled.
        pipeline.set_cache_enabled(false);
        let nocache = bench.measure(|| pipeline.model_recipes(&corpus.recipes, &rt));
        let lat_nocache = phrase_latencies(&pipeline, &phrases);
        // Tracing-overhead audit at one thread: the same measurement
        // with span/histogram collection enabled. The budget is < 2%
        // on the median (observability must stay effectively free).
        if t == 1 {
            recipe_obs::reset();
            recipe_obs::set_enabled(true);
            let traced = bench.measure(|| pipeline.model_recipes(&corpus.recipes, &rt));
            // Same again with the event timeline recording every span
            // (what `--trace-out` costs on top of metrics collection).
            recipe_obs::event::start(&recipe_obs::TraceConfig::default());
            let event_traced = bench.measure(|| pipeline.model_recipes(&corpus.recipes, &rt));
            recipe_obs::event::stop();
            recipe_obs::event::reset();
            recipe_obs::set_enabled(false);
            trace_overhead = Some(json!({
                "nocache_median_s": nocache.median,
                "traced_median_s": traced.median,
                "median_ratio": traced.median / nocache.median,
                "event_traced_median_s": event_traced.median,
                "event_median_ratio": event_traced.median / nocache.median,
            }));
        }

        // Compiled path, cache enabled (steady state: the cache stays
        // warm across iterations, as it would across a corpus).
        pipeline.set_cache_enabled(true);
        pipeline.inference.clear_caches();
        let cached = bench.measure(|| pipeline.model_recipes(&corpus.recipes, &rt));
        let stats = pipeline.cache_stats();
        let lat_cached = phrase_latencies(&pipeline, &phrases);

        if t == 1 {
            baselines = [cached.median, nocache.median];
            if total == 300 && seed == 42 {
                speedup_vs_pr2 = Some(PR2_BASELINE_MEDIAN_S / cached.median);
            }
        }
        results.push(stats_json(
            "batch_extract_compiled_cached",
            t,
            total,
            &cached,
            baselines[0],
            latency_json(&lat_cached),
            json!({
                "hits": stats.hits,
                "misses": stats.misses,
                "entries": stats.entries,
                "hit_rate": stats.hit_rate(),
            }),
        ));
        results.push(stats_json(
            "batch_extract_compiled_nocache",
            t,
            total,
            &nocache,
            baselines[1],
            latency_json(&lat_nocache),
            json!(null),
        ));
    }

    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let report = json!({
        "benchmark": "inference_throughput",
        "total_recipes": total,
        "seed": seed,
        "smoke": smoke,
        "hardware_threads": hardware_threads,
        "pr2_baseline_batch_extract_1thread_median_s": PR2_BASELINE_MEDIAN_S,
        "speedup_vs_pr2_baseline_1thread": speedup_vs_pr2,
        "trace_overhead_1thread": trace_overhead,
        "note": "compiled (CSR + scratch arena) decode verified byte-identical to the \
                 reference path, cache on and off, at every thread count",
        "units": "fields ending _s are seconds, _us microseconds, _per_s rates; \
                  the bench-diff gate compares only the _s fields",
        "deterministic": true,
        "results": results,
    });
    let rendered = serde_json::to_string_pretty(&report).expect("render report");
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write report");
    eprintln!("wrote {out_path}");
    recipe_bench::append_history(&report);
    println!("{rendered}");
}
