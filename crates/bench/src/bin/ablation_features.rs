//! Ablation: NER feature-template groups. Shape/affix features are what
//! let a model trained on one site generalize to the other's unseen
//! vocabulary — switching them off should widen the Table IV off-diagonal
//! gap.
//!
//! Usage: `ablation_features [total_recipes] [seed]`

use recipe_bench::{cross_site_from_datasets, parse_cli};
use recipe_core::pipeline::{build_site_dataset, train_pos_tagger};
use recipe_corpus::{RecipeCorpus, Site};
use recipe_ner::features::FeatureConfig;
use recipe_text::Preprocessor;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pre = Preprocessor::default();
    let pos = train_pos_tagger(&corpus, scale.pipeline.pos_epochs, scale.pipeline.seed);
    let ds_ar = build_site_dataset(&corpus, Site::AllRecipes, &pos, &pre, &scale.pipeline);
    let ds_fc = build_site_dataset(&corpus, Site::FoodCom, &pos, &pre, &scale.pipeline);

    let variants = [
        ("all templates", FeatureConfig::default()),
        (
            "no affixes",
            FeatureConfig {
                affixes: false,
                ..Default::default()
            },
        ),
        (
            "no shape",
            FeatureConfig {
                shape: false,
                ..Default::default()
            },
        ),
        (
            "no context",
            FeatureConfig {
                context: false,
                ..Default::default()
            },
        ),
        (
            "lexical only",
            FeatureConfig {
                shape: false,
                affixes: false,
                context: false,
                lexical: true,
            },
        ),
    ];
    println!("Ablation: feature templates (entity F1)");
    println!(
        "{:<16} {:>8} {:>8} {:>10}",
        "variant", "AR->AR", "AR->FC", "gap"
    );
    for (name, features) in variants {
        let mut cfg = scale.pipeline;
        cfg.ner.features = features;
        let r = cross_site_from_datasets(&ds_ar, &ds_fc, &cfg);
        println!(
            "{:<16} {:>8.4} {:>8.4} {:>10.4}",
            name,
            r.f1[0][0],
            r.f1[1][0],
            r.f1[0][0] - r.f1[1][0]
        );
    }
}
