//! Regenerates the conclusion-section statistics: relations per
//! instruction (paper: 6.164 ± 5.70 over 174 932 steps of 40 000 recipes)
//! and the unique-ingredient-name count (paper: 20 280).
//!
//! Usage: `conclusion_stats [total_recipes] [seed]`

use recipe_bench::{conclusion_experiment, parse_cli};
use recipe_core::pipeline::TrainedPipeline;
use recipe_corpus::RecipeCorpus;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);
    let stats = conclusion_experiment(&corpus, &pipeline, usize::MAX);

    println!("Conclusion statistics (paper values in parentheses)");
    println!("recipes measured:            {}  (40 000)", stats.recipes);
    println!(
        "instruction steps:           {}  (174 932)",
        stats.relations.instructions
    );
    println!(
        "relations per instruction:   {:.3} (6.164)",
        stats.relations.mean
    );
    println!(
        "standard deviation:          {:.2}  (5.70)",
        stats.relations.std_dev
    );
    println!(
        "unique ingredient names:     {}  (20 280 at full RecipeDB scale)",
        stats.unique_names
    );
    println!();
    println!(
        "std/mean ratio: {:.2} (paper: {:.2}) — the high variance that motivates",
        stats.relations.std_dev / stats.relations.mean,
        5.70f64 / 6.164
    );
    println!("many-to-many relation modelling");
}
