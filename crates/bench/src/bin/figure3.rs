//! Regenerates Figure 3: the dependency parse of a typical instruction.
//!
//! Usage: `figure3 [total_recipes] [seed]`

use recipe_bench::{parse_cli, render_dependency_parse};
use recipe_core::pipeline::TrainedPipeline;
use recipe_corpus::RecipeCorpus;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);

    // The paper's running example sentence family.
    let sentence: Vec<String> = "bring the water to a boil in a large pot ."
        .split_whitespace()
        .map(|s| s.to_string())
        .collect();
    println!("Figure 3: dependency parse of a typical instruction");
    println!("sentence: {}", sentence.join(" "));
    println!("{}", render_dependency_parse(&pipeline, &sentence));

    // And a corpus sentence for comparison.
    let sample = &corpus.recipes[0].instructions[0];
    println!("corpus sentence: {}", sample.text());
    println!("{}", render_dependency_parse(&pipeline, &sample.words()));
    let (uas, las) = pipeline.parser.evaluate(
        &corpus
            .recipes
            .iter()
            .take(50)
            .flat_map(|r| r.instructions.iter())
            .map(|s| recipe_parser::parser::ParseExample {
                words: s.words(),
                tags: s.pos_tags(),
                tree: s.tree.clone(),
            })
            .collect::<Vec<_>>(),
    );
    println!("parser attachment scores on 50 recipes (gold POS trees): UAS {uas:.3} LAS {las:.3}");
}
