//! Substrate quality report: how good are the from-scratch stand-ins for
//! Stanford POS, spaCy and NLTK on held-out corpus data?
//!
//! Not a paper table — supporting evidence that the substitution layer
//! (DESIGN.md §2) is sound: errors in the headline tables come from the
//! *task*, not from broken substrates.
//!
//! Usage: `substrates [total_recipes] [seed]`

use recipe_bench::parse_cli;
use recipe_core::pipeline::train_pos_tagger;
use recipe_corpus::RecipeCorpus;
use recipe_parser::parser::{DependencyParser, ParseExample, ParserConfig};

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);

    // --- POS tagger: train on even recipes, evaluate on odd ones. ---
    let half: Vec<_> = corpus.recipes.iter().step_by(2).collect();
    let spec2 = {
        let mut recipes = Vec::new();
        for r in &half {
            recipes.push((*r).clone());
        }
        recipes
    };
    let train_corpus = RecipeCorpus {
        recipes: spec2,
        spec: corpus.spec,
    };
    let pos = train_pos_tagger(
        &train_corpus,
        scale.pipeline.pos_epochs,
        scale.pipeline.seed,
    );

    let mut eval_phr = Vec::new();
    let mut eval_ins = Vec::new();
    for r in corpus.recipes.iter().skip(1).step_by(2).take(400) {
        for p in &r.ingredients {
            eval_phr.push((p.words(), p.pos_tags()));
        }
        for s in &r.instructions {
            eval_ins.push((s.words(), s.pos_tags()));
        }
    }
    println!("substrate quality (held-out half of the corpus)");
    println!("POS tagger (Stanford-Twitter stand-in):");
    println!(
        "  ingredient phrases: {:.4} token accuracy",
        pos.accuracy(&eval_phr)
    );
    println!(
        "  instructions:       {:.4} token accuracy",
        pos.accuracy(&eval_ins)
    );
    println!(
        "  features: {}, tagdict: {}",
        pos.num_features(),
        pos.tagdict_len()
    );

    // --- Dependency parser: train on a slice, evaluate on another. ---
    let mut treebank = Vec::new();
    for r in corpus.recipes.iter().take(600) {
        for s in &r.instructions {
            treebank.push(ParseExample {
                words: s.words(),
                tags: s.pos_tags(),
                tree: s.tree.clone(),
            });
        }
    }
    let split = treebank.len() * 4 / 5;
    let (train_tb, test_tb) = treebank.split_at(split);
    let parser = DependencyParser::train(train_tb, &ParserConfig::default());
    let (uas_gold, las_gold) = parser.evaluate(test_tb);
    println!("dependency parser (spaCy stand-in), gold POS:");
    println!(
        "  UAS {uas_gold:.4}  LAS {las_gold:.4}  ({} test sentences)",
        test_tb.len()
    );

    // With predicted POS (the pipeline's actual operating condition).
    let test_pred: Vec<ParseExample> = test_tb
        .iter()
        .map(|ex| ParseExample {
            words: ex.words.clone(),
            tags: pos.tag(&ex.words),
            tree: ex.tree.clone(),
        })
        .collect();
    let (uas_pred, las_pred) = parser.evaluate(&test_pred);
    println!("dependency parser, predicted POS:");
    println!("  UAS {uas_pred:.4}  LAS {las_pred:.4}");

    // Beam-width sweep (greedy-trained model; wider beams optimize model
    // score, which may or may not track gold accuracy).
    println!("beam-width sweep (UAS on the gold-POS test split):");
    for beam in [1usize, 2, 4, 8] {
        let mut uas = 0.0;
        for ex in test_tb.iter().take(200) {
            uas += parser.parse_beam(&ex.words, &ex.tags, beam).uas(&ex.tree);
        }
        println!(
            "  beam {beam}: UAS {:.4}",
            uas / test_tb.len().min(200) as f64
        );
    }

    println!();
    println!("(both substrates train on synthetic gold annotations; see DESIGN.md section 2)");
}
