//! Zero-copy artifact cold-start benchmark.
//!
//! Measures what the `.rma` format buys over the JSON pipeline path:
//!
//! * **cold start** — in-process train+compile (timed once) versus
//!   opening views over already-loaded artifact bytes
//!   ([`recipe_core::ArtifactPipeline::from_bytes`], which is structural
//!   O(sections) validation — file I/O deliberately excluded from both
//!   sides), plus the container-only [`recipe_artifact::Artifact::parse`]
//!   and the O(bytes) CRC pass as separate lines;
//! * **decode throughput** — per-phrase extraction through the compiled
//!   in-process path, the artifact f64 view, and the artifact i16
//!   quantized view, with tail latencies up to p99.9;
//! * **fidelity** — the f64 view must match the compiled path on every
//!   corpus phrase (asserted); quantized agreement is reported here and
//!   gated in `tests/artifact.rs`.
//!
//! Asserts cold load is >= 100x faster than train+compile, writes a
//! machine-readable report (default `BENCH_artifact.json`), and appends
//! it to `results/bench_history.jsonl` for the `bench-diff` gate.
//!
//! Usage: `artifact_coldstart [total_recipes] [seed] [out.json] [--smoke]`

use recipe_bench::timing::{stats_json, Bench};
use recipe_bench::ExperimentScale;
use recipe_core::pipeline::TrainedPipeline;
use recipe_core::ArtifactPipeline;
use recipe_corpus::{RecipeCorpus, Site};
use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The cold-start contract from the PR 7 acceptance criteria: opening
/// artifact views must beat in-process train+compile by this factor.
const MIN_COLDSTART_SPEEDUP: f64 = 100.0;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let mut args = raw.iter().filter(|a| a.as_str() != "--smoke");
    let default_total = if smoke { 40 } else { 300 };
    let total: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_total);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let out_path = args
        .next()
        .cloned()
        .unwrap_or_else(|| "BENCH_artifact.json".into());

    let scale = ExperimentScale::for_total(total, seed);
    eprintln!("generating corpus of {total} recipes (seed {seed})...");
    let corpus = RecipeCorpus::generate(&scale.corpus);

    // The in-process cold-start cost: train + compile, timed once (it is
    // seconds; repeating it would dominate the benchmark's wall time).
    eprintln!("training pipeline (timed: the in-process cold-start cost)...");
    let t0 = Instant::now();
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);
    let train_compile_s = t0.elapsed().as_secs_f64();

    let bytes: Arc<[u8]> = recipe_core::artifact::artifact_bytes(&pipeline)
        .expect("serialize artifact")
        .into();
    let artifact_bytes = bytes.len();

    let phrases: Vec<String> = corpus
        .phrases(Site::AllRecipes)
        .iter()
        .map(|p| p.text())
        .collect();

    let mut bench = Bench::default().sample_size(if smoke { 2 } else { 3 });
    bench.target_time = Duration::from_millis(if smoke { 20 } else { 100 });

    // Artifact cold load: container parse + per-model section validation
    // + view construction, over bytes already in memory.
    eprintln!("benchmarking artifact open (parse + validate + views)...");
    let load = bench.measure(|| {
        ArtifactPipeline::from_bytes(Arc::clone(&bytes), false).expect("load artifact")
    });
    // Container-only structural parse, without the model views.
    let parse_only = bench
        .measure(|| recipe_artifact::Artifact::parse(Arc::clone(&bytes)).expect("parse artifact"));
    // The optional O(bytes) integrity pass, for contrast with the
    // O(sections) structural validation above.
    let loaded = ArtifactPipeline::from_bytes(Arc::clone(&bytes), false).expect("load artifact");
    let crc = bench.measure(|| loaded.verify_crc().expect("checksums"));

    let coldstart_speedup = train_compile_s / load.median;
    eprintln!(
        "cold start: train+compile {train_compile_s:.3}s vs artifact open \
         {:.2}us ({coldstart_speedup:.0}x)",
        load.median * 1e6
    );
    assert!(
        coldstart_speedup >= MIN_COLDSTART_SPEEDUP,
        "artifact cold load must be >= {MIN_COLDSTART_SPEEDUP}x faster than \
         train+compile, measured {coldstart_speedup:.1}x \
         (train {train_compile_s:.3}s, load {:.6}s)",
        load.median
    );

    // Decode throughput: the compiled in-process path versus the f64 and
    // quantized artifact views, caches off so every phrase decodes.
    eprintln!(
        "benchmarking decode throughput over {} phrases...",
        phrases.len()
    );
    pipeline.set_cache_enabled(false);
    let quantized = ArtifactPipeline::from_bytes(Arc::clone(&bytes), true).expect("load quantized");
    loaded.inference.set_cache_enabled(false);
    quantized.inference.set_cache_enabled(false);

    let extract_all = |extract: &dyn Fn(&str) -> recipe_core::IngredientEntry| {
        for p in &phrases {
            std::hint::black_box(extract(p));
        }
    };
    let compiled_stats = bench.measure(|| extract_all(&|p| pipeline.extract_ingredient(p)));
    let f64_stats = bench.measure(|| extract_all(&|p| loaded.extract_ingredient(p)));
    let quant_stats = bench.measure(|| extract_all(&|p| quantized.extract_ingredient(p)));

    // Fidelity: the f64 view is byte-identical to the compiled path on
    // every phrase; the quantized view's agreement is reported.
    let mut quant_agree = 0usize;
    for p in &phrases {
        let reference = pipeline.extract_ingredient(p);
        assert_eq!(
            reference,
            loaded.extract_ingredient(p),
            "artifact f64 view diverged from the compiled path on {p:?}"
        );
        if quantized.extract_ingredient(p) == reference {
            quant_agree += 1;
        }
    }
    let quantized_agreement = if phrases.is_empty() {
        1.0
    } else {
        quant_agree as f64 / phrases.len() as f64
    };

    let report = json!({
        "benchmark": "artifact_coldstart",
        "total_recipes": total,
        "seed": seed,
        "smoke": smoke,
        "artifact_bytes": artifact_bytes,
        "train_compile_once_s": train_compile_s,
        "coldstart_speedup": coldstart_speedup,
        "min_coldstart_speedup": MIN_COLDSTART_SPEEDUP,
        "quantized_agreement": quantized_agreement,
        "phrases": phrases.len(),
        "note": "artifact f64 view verified byte-identical to the compiled path on \
                 every corpus phrase; cold start excludes file I/O on both sides",
        "units": "fields ending _s are seconds, _per_s rates; the bench-diff gate \
                  compares only the _s fields",
        "deterministic": true,
        "results": [
            stats_json("artifact_open", 1, &load, 0),
            stats_json("artifact_parse_only", 1, &parse_only, 0),
            stats_json("artifact_crc_verify", 1, &crc, 0),
            stats_json("extract_compiled", 1, &compiled_stats, phrases.len()),
            stats_json("extract_artifact_f64", 1, &f64_stats, phrases.len()),
            stats_json("extract_artifact_quantized", 1, &quant_stats, phrases.len()),
        ],
    });
    let rendered = serde_json::to_string_pretty(&report).expect("render report");
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write report");
    eprintln!("wrote {out_path}");
    recipe_bench::append_history(&report);
    println!("{rendered}");
}
