//! Extension experiment: does K-Means over POS vectors actually rediscover
//! the lexical-structure families, as §II.E claims qualitatively?
//!
//! The synthetic corpus records each phrase's gold template family, so the
//! claim becomes measurable: external metrics (purity, ARI, NMI) between
//! the k = 23 clustering and the ~24 gold families, plus the silhouette
//! coefficient, swept over k.
//!
//! Usage: `cluster_quality [total_recipes] [seed]`

use recipe_bench::parse_cli;
use recipe_cluster::{
    adjusted_rand_index, normalized_mutual_information, purity, silhouette, KMeans, KMeansConfig,
};
use recipe_core::pipeline::train_pos_tagger;
use recipe_corpus::{RecipeCorpus, Site};
use recipe_tagger::pos_frequency_vector;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pos = train_pos_tagger(&corpus, scale.pipeline.pos_epochs, scale.pipeline.seed);

    // Sample unique phrases with their gold template family.
    let mut seen = std::collections::HashSet::new();
    let mut vectors = Vec::new();
    let mut gold = Vec::new();
    const MAX_POINTS: usize = 4000; // silhouette is O(n^2)
    'outer: for site in [Site::AllRecipes, Site::FoodCom] {
        for p in corpus.phrases(site) {
            if vectors.len() >= MAX_POINTS {
                break 'outer;
            }
            if seen.insert(p.text()) {
                vectors.push(pos_frequency_vector(&pos.tag(&p.words())));
                gold.push(p.template);
            }
        }
    }
    let n_families = gold.iter().copied().max().unwrap_or(0) + 1;
    println!(
        "cluster quality vs gold template families ({} phrases, {} families)",
        vectors.len(),
        n_families
    );
    println!(
        "{:>4} {:>10} {:>8} {:>8} {:>8} {:>12}",
        "k", "inertia", "purity", "ARI", "NMI", "silhouette"
    );
    for k in [8, 12, 16, 20, 23, 28, 32] {
        let km = KMeans::fit(
            &vectors,
            &KMeansConfig {
                k,
                seed: scale.pipeline.seed,
                ..Default::default()
            },
        );
        println!(
            "{:>4} {:>10.1} {:>8.3} {:>8.3} {:>8.3} {:>12.3}",
            k,
            km.inertia,
            purity(&km.assignments, &gold),
            adjusted_rand_index(&km.assignments, &gold),
            normalized_mutual_information(&km.assignments, &gold),
            silhouette(&vectors, &km.assignments),
        );
    }
    println!();
    println!("reading: external agreement (ARI/NMI) plateaus in the low-20s — adding");
    println!("clusters beyond ~20-23 buys inertia but no family agreement, consistent with");
    println!("the paper settling on k = 23. POS-bag vectors conflate families that share a");
    println!("tag multiset, so perfect agreement is unreachable by design.");
}
