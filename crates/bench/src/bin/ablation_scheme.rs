//! Ablation: raw per-token tags (the paper's / Stanford NER's default) vs
//! BIO tagging for the ingredient NER task.
//!
//! Raw tags halve the label space but cannot separate adjacent same-type
//! entities; recipe phrases essentially never contain those, so the paper's
//! choice should cost nothing — this binary checks.
//!
//! Usage: `ablation_scheme [total_recipes] [seed]`

use recipe_bench::parse_cli;
use recipe_core::pipeline::{build_site_dataset, train_pos_tagger};
use recipe_corpus::{RecipeCorpus, Site};
use recipe_eval::metrics::entity_prf;
use recipe_ner::model::LabeledSequence;
use recipe_ner::scheme::{bio_label_names, from_bio, to_bio};
use recipe_ner::{IngredientTag, LabelSet, SequenceModel};
use recipe_text::Preprocessor;
use std::time::Instant;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pre = Preprocessor::default();
    let pos = train_pos_tagger(&corpus, scale.pipeline.pos_epochs, scale.pipeline.seed);
    let ds_ar = build_site_dataset(&corpus, Site::AllRecipes, &pos, &pre, &scale.pipeline);
    let ds_fc = build_site_dataset(&corpus, Site::FoodCom, &pos, &pre, &scale.pipeline);
    let mut train = ds_ar.train.clone();
    train.extend(ds_fc.train.iter().cloned());
    let mut test = ds_ar.test.clone();
    test.extend(ds_fc.test.iter().cloned());

    // Raw scheme.
    let raw_labels = IngredientTag::label_set();
    let t0 = Instant::now();
    let raw_model = SequenceModel::train(&raw_labels, &train, &scale.pipeline.ner);
    let raw_secs = t0.elapsed().as_secs_f64();
    let gold: Vec<Vec<String>> = test.iter().map(|(_, t)| t.clone()).collect();
    let raw_pred: Vec<Vec<String>> = test.iter().map(|(w, _)| raw_model.predict(w)).collect();
    let raw_f1 = entity_prf(&gold, &raw_pred, "O").micro.f1;

    // BIO scheme: convert labels, train on the doubled inventory, predict,
    // convert back, and score in raw space (apples to apples).
    let raw_names: Vec<&str> = IngredientTag::ALL.iter().map(|t| t.as_str()).collect();
    let bio_names = bio_label_names(&raw_names, "O");
    let bio_labels = LabelSet::new(&bio_names);
    let bio_train: Vec<LabeledSequence> = train
        .iter()
        .map(|(w, t)| (w.clone(), to_bio(t, "O")))
        .collect();
    let t0 = Instant::now();
    let bio_model = SequenceModel::train(&bio_labels, &bio_train, &scale.pipeline.ner);
    let bio_secs = t0.elapsed().as_secs_f64();
    let bio_pred: Vec<Vec<String>> = test
        .iter()
        .map(|(w, _)| from_bio(&bio_model.predict(w)))
        .collect();
    let bio_f1 = entity_prf(&gold, &bio_pred, "O").micro.f1;

    println!("Ablation: tagging scheme (ingredient NER, composite dataset)");
    println!("train {} / test {} sequences", train.len(), test.len());
    println!(
        "{:<14} {:>8} {:>8} {:>10}",
        "scheme", "labels", "F1", "train (s)"
    );
    println!(
        "{:<14} {:>8} {:>8.4} {:>10.2}",
        "raw (paper)",
        raw_labels.len(),
        raw_f1,
        raw_secs
    );
    println!(
        "{:<14} {:>8} {:>8.4} {:>10.2}",
        "BIO",
        bio_labels.len(),
        bio_f1,
        bio_secs
    );
}
