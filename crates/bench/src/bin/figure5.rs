//! Regenerates Figure 5: merged many-to-many relation tuples for an
//! instruction.
//!
//! Usage: `figure5 [total_recipes] [seed]`

use recipe_bench::parse_cli;
use recipe_core::events::extract_sentence_events;
use recipe_core::pipeline::TrainedPipeline;
use recipe_corpus::RecipeCorpus;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);

    let sentence: Vec<String> = "bring the water to a boil in a large pot ."
        .split_whitespace()
        .map(|s| s.to_string())
        .collect();
    println!("Figure 5: compound many-to-many relations");
    println!("sentence: {}", sentence.join(" "));
    for e in extract_sentence_events(&pipeline, &sentence, 0) {
        println!("  {e}");
    }
    println!();

    let recipe = &corpus.recipes[2];
    println!("events mined from \"{}\":", recipe.title);
    for (step, sentences) in recipe.steps().iter().enumerate() {
        println!("  step {}:", step + 1);
        for sent in sentences {
            println!("    {}", sent.text());
            for e in extract_sentence_events(&pipeline, &sent.words(), step) {
                println!("      -> {e}");
            }
        }
    }
}
