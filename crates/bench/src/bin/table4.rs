//! Regenerates Table IV: the 3×3 cross-dataset F1 matrix (models trained
//! on AllRecipes / Food.com / BOTH, evaluated on each test set), plus the
//! paper's 5-fold cross-validation of the composite model.
//!
//! Usage: `table4 [total_recipes] [seed]`

use recipe_bench::{cross_site_experiment, crossval_f1, parse_cli};
use recipe_ner::IngredientTag;

fn main() {
    let scale = parse_cli();
    let (_corpus, result) = cross_site_experiment(&scale);
    println!("Table IV: Evaluation of NER Model for Ingredients Section (entity-level micro F1)");
    println!("(paper: diag 0.9682 / 0.9519 / 0.9611; AR model on FOOD.com 0.8672; BOTH >= 0.95 everywhere)");
    println!("{}", result.table4());
    println!("{}", result.table3());

    // 5-fold CV on the composite training set, as in §II.F.
    let scale2 = scale;
    let (corpus, _) = recipe_bench::cross_site_experiment(&scale2);
    let pre = recipe_text::Preprocessor::default();
    let pos = recipe_core::pipeline::train_pos_tagger(
        &corpus,
        scale.pipeline.pos_epochs,
        scale.pipeline.seed,
    );
    let mut all = Vec::new();
    for site in [
        recipe_corpus::Site::AllRecipes,
        recipe_corpus::Site::FoodCom,
    ] {
        let ds =
            recipe_core::pipeline::build_site_dataset(&corpus, site, &pos, &pre, &scale.pipeline);
        all.extend(ds.train);
    }
    let folds = crossval_f1(&all, &IngredientTag::label_set(), &scale.pipeline, 5);
    let mean = folds.iter().sum::<f64>() / folds.len() as f64;
    println!(
        "5-fold cross-validation of the BOTH model: mean F1 {:.4}",
        mean
    );
    for (i, f) in folds.iter().enumerate() {
        println!("  fold {}: {:.4}", i + 1, f);
    }

    // Paired bootstrap: is the composite model significantly better than
    // the Food.com-only model on the composite test set?
    let ds_ar2 = recipe_core::pipeline::build_site_dataset(
        &corpus,
        recipe_corpus::Site::AllRecipes,
        &pos,
        &pre,
        &scale.pipeline,
    );
    let ds_fc2 = recipe_core::pipeline::build_site_dataset(
        &corpus,
        recipe_corpus::Site::FoodCom,
        &pos,
        &pre,
        &scale.pipeline,
    );
    let labels = IngredientTag::label_set();
    let mut both_train = ds_ar2.train.clone();
    both_train.extend(ds_fc2.train.iter().cloned());
    let mut both_test = ds_ar2.test.clone();
    both_test.extend(ds_fc2.test.iter().cloned());
    let model_both = recipe_ner::SequenceModel::train(&labels, &both_train, &scale.pipeline.ner);
    let model_fc = recipe_ner::SequenceModel::train(&labels, &ds_fc2.train, &scale.pipeline.ner);
    let preds: Vec<[Vec<String>; 2]> = both_test
        .iter()
        .map(|(w, _)| [model_both.predict(w), model_fc.predict(w)])
        .collect();
    let gold: Vec<Vec<String>> = both_test.iter().map(|(_, t)| t.clone()).collect();
    let cmp =
        recipe_eval::paired_bootstrap(both_test.len(), 500, scale.pipeline.seed, |sys, idx| {
            let g: Vec<Vec<String>> = idx.iter().map(|&i| gold[i].clone()).collect();
            let p: Vec<Vec<String>> = idx.iter().map(|&i| preds[i][sys].clone()).collect();
            recipe_eval::metrics::entity_prf(&g, &p, "O").micro.f1
        });
    println!(
        "paired bootstrap (BOTH vs FOOD.com model on composite test): \
delta {:+.4}, win rate {:.3} over 500 replicates",
        cmp.delta, cmp.win_rate
    );
}
