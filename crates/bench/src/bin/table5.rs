//! Regenerates Table V: instruction-section NER precision/recall/F1 for
//! processes and utensils.
//!
//! Usage: `table5 [total_recipes] [seed]`

use recipe_bench::{parse_cli, table5_experiment};
use recipe_corpus::RecipeCorpus;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let result = table5_experiment(&corpus, &scale.pipeline);
    println!("Table V: Evaluation of NER model for Instructions Section");
    println!("(paper: Processes P 0.92 R 0.85 F1 0.88 | Utensils P 0.94 R 0.86 F1 0.90)");
    println!("{}", result.table());
    println!(
        "train sentences: {} | test sentences: {}",
        result.train_size, result.test_size
    );
}
