//! Sustained-load serving benchmark: open-loop latency SLOs for
//! `recipe-serve` under fixed offered rates, plus the cost of the live
//! monitoring plane.
//!
//! Boots an in-process [`recipe_serve::Server`] over a compiled `.rma`
//! model, then offers traffic at two (or more) fixed QPS targets on a
//! deterministic schedule: exponential inter-arrival gaps drawn from a
//! seeded stream ([`recipe_bench::timing::arrival_offsets`]), so every
//! run at the same `(qps, n, seed)` replays the same arrival times.
//! The loop is *open*: requests fire at their scheduled instant
//! regardless of how the previous one fared, and latency is measured
//! from the scheduled arrival to the last response byte — queueing
//! delay under overload is part of the number, as it is for a real
//! client.
//!
//! Every target runs in paired trials across three server modes: a
//! bare server (`qps{N}_nomon`: monitoring and profiling both off), a
//! monitored one (`qps{N}_noprof`: windowed metrics, SLO tracking,
//! slow-request exemplars and drift sampling against an embedded
//! reference — but the request profiler off), and the full plane
//! (historical `qps{N}` names, so `recipe-mine bench-diff` trends stay
//! continuous: monitoring plus the per-endpoint request profiler that
//! backs `/admin/profile`). Outside smoke mode the run fails if either
//! layer inflates its target's best-of-trials p99 by more than 5%
//! (with a 200 µs absolute allowance for scheduler noise): monitoring
//! is gated against the bare twin, the profiler against the monitored
//! twin — the two overhead gates CI relies on.
//!
//! Per target the report carries p50/p99/p999 (as the gated
//! `median_s`/`p99_s`/`p999_s` fields), the shed rate (503 responses
//! from the bounded admission queue) and the error rate. The report is
//! appended to `results/bench_history.jsonl` for `recipe-mine
//! bench-diff`, keyed per target row as `qps{N}` x `threads = shards`.
//!
//! Usage: `sustained_load [total_recipes] [seed] [out.json] [--smoke]`

use recipe_bench::timing::{arrival_offsets, stats_json, Stats};
use recipe_bench::ExperimentScale;
use recipe_core::pipeline::TrainedPipeline;
use recipe_core::ArtifactPipeline;
use recipe_corpus::{RecipeCorpus, Site};
use recipe_serve::{ServeConfig, ServeModel, Server};
use serde_json::{json, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client threads offering the load. Each owns every C-th arrival, so
/// one slow response only delays that thread's share of the schedule.
const CLIENT_THREADS: usize = 8;

/// Relative p99 inflation each observability layer (monitoring, then
/// the request profiler) is allowed to cost (non-smoke).
const OVERHEAD_FRAC_MAX: f64 = 0.05;

/// Absolute p99 allowance absorbing scheduler noise on tiny latencies.
const OVERHEAD_ABS_S: f64 = 200e-6;

/// Outcome of one offered request.
struct Sample {
    /// Seconds from the scheduled arrival to the last response byte.
    latency_s: f64,
    /// HTTP status, or 0 for a transport error.
    status: u16,
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let mut args = raw.iter().filter(|a| a.as_str() != "--smoke");
    let default_total = if smoke { 40 } else { 120 };
    let total: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_total);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let out_path = args
        .next()
        .cloned()
        .unwrap_or_else(|| "BENCH_sustained_load.json".into());

    let scale = ExperimentScale::for_total(total, seed);
    eprintln!("generating corpus of {total} recipes (seed {seed})...");
    let corpus = RecipeCorpus::generate(&scale.corpus);
    eprintln!("training + compiling the served model...");
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);

    let phrases: Vec<String> = corpus
        .phrases(Site::AllRecipes)
        .iter()
        .map(|p| p.text())
        .collect();
    assert!(!phrases.is_empty(), "corpus produced no phrases");

    // Embed a drift reference so the monitoring-on run pays the full
    // live plane: windowed metrics, SLO tracking AND drift scoring.
    let reference = recipe_core::artifact::capture_drift_reference(&pipeline, &phrases);
    let bytes: Arc<[u8]> =
        recipe_core::artifact::artifact_bytes_with_reference(&pipeline, Some(&reference))
            .expect("serialize artifact")
            .into();

    // Offered load per target: about one second of traffic in smoke
    // mode, about two seconds otherwise — enough arrivals for a stable
    // p99 without dominating CI wall time.
    let targets: Vec<(f64, usize)> = if smoke {
        vec![(100.0, 100), (300.0, 300)]
    } else {
        vec![(250.0, 500), (750.0, 1500)]
    };

    // Paired trials: each trial runs all three modes against fresh
    // servers sharing the trial's arrival schedule, so the modes see
    // identical offered load. The gates compare the *minimum* p99
    // across trials per mode — an open-loop p99 over a couple thousand
    // samples is one scheduler hiccup away from 5x, and the min is the
    // standard noise-robust estimate of the clean value. History rows
    // pool every trial's samples for a stable trend line.
    let modes: [(&str, bool, bool); 3] = [
        ("_nomon", false, false),
        ("_noprof", true, false),
        ("", true, true),
    ];
    let trials = if smoke { 1 } else { 3 };
    let mut pooled: Vec<Vec<Vec<Sample>>> = modes
        .iter()
        .map(|_| targets.iter().map(|_| Vec::new()).collect())
        .collect();
    let mut p99_min: Vec<Vec<f64>> = vec![vec![f64::INFINITY; targets.len()]; modes.len()];
    let mut shards = 0;
    let mut profile_doc = Value::Null;
    for trial in 0..trials {
        for (mode, &(_, monitoring, profiling)) in modes.iter().enumerate() {
            let model = ServeModel::Rma(
                ArtifactPipeline::from_bytes(Arc::clone(&bytes), false).expect("load artifact"),
            );
            // Shards are pinned (not derived from the machine) so the
            // history row key `(name, threads)` is stable across hosts
            // and CI runners.
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                shards: 2,
                queue_cap: 512,
                monitoring,
                profiling,
                ..ServeConfig::default()
            };
            let server = Server::launch(&cfg, model, (String::from("<in-process>"), false))
                .expect("launch server");
            let addr = server.local_addr();
            shards = server.shards();
            eprintln!(
                "trial {trial}: serving on {addr} with {shards} shards \
                 (monitoring={monitoring}, profiling={profiling})"
            );

            for (i, &(qps, requests)) in targets.iter().enumerate() {
                eprintln!("offering {requests} requests at {qps} QPS...");
                let schedule_seed = seed.wrapping_add((trial * targets.len() + i) as u64);
                let samples = fire_target(addr, &phrases, qps, requests, schedule_seed);
                let served: Vec<f64> = samples
                    .iter()
                    .filter(|s| s.status == 200)
                    .map(|s| s.latency_s)
                    .collect();
                if !served.is_empty() {
                    let trial_p99 = Stats::from_samples(served).p99;
                    p99_min[mode][i] = p99_min[mode][i].min(trial_p99);
                }
                pooled[mode][i].extend(samples);
            }

            // Keep the last full-plane trial's stage attribution: the
            // report's `profile` block rides into bench history so
            // bench-diff can name the stage behind a percentile shift.
            if profiling {
                profile_doc = serde_json::to_value(&server.profile());
            }

            server.request_shutdown();
            // The acceptor notices shutdown on its next poll tick; a
            // nudge connection is unnecessary because it polls with a
            // timeout.
            server.join();
        }
    }

    let mut rows: Vec<Value> = Vec::new();
    for (mode, &(suffix, _, _)) in modes.iter().enumerate() {
        for (i, &(qps, _)) in targets.iter().enumerate() {
            let (row, _) = target_row(qps, suffix, shards, &pooled[mode][i]);
            rows.push(row);
        }
    }

    // The overhead gates: best-of-trials p99 with a layer on may not
    // exceed its twin without that layer by more than 5% (plus an
    // absolute allowance for scheduler noise at microsecond latencies).
    // Monitoring is gated against the bare server, the profiler
    // against the monitored one, so each gate isolates one layer.
    let gates: [(&str, usize, usize); 2] = [("monitoring", 0, 1), ("profiler", 1, 2)];
    let mut overhead_rows: Vec<Value> = Vec::new();
    for &(layer, base, full) in gates.iter() {
        for (i, &(qps, _)) in targets.iter().enumerate() {
            let off = p99_min[base].get(i).copied().unwrap_or(0.0);
            let on = p99_min[full].get(i).copied().unwrap_or(0.0);
            let frac = if off > 0.0 { (on - off) / off } else { 0.0 };
            eprintln!(
                "{layer} overhead at {qps} QPS: p99 {:.1}us -> {:.1}us ({:+.1}%)",
                off * 1e6,
                on * 1e6,
                frac * 100.0
            );
            overhead_rows.push(json!({
                "layer": layer,
                "qps_target": qps,
                "p99_off_s": off,
                "p99_on_s": on,
                "overhead_frac": frac,
            }));
            if !smoke {
                assert!(
                    on <= off * (1.0 + OVERHEAD_FRAC_MAX) + OVERHEAD_ABS_S,
                    "{layer} inflates p99 beyond {:.0}% at {qps} QPS: \
                     {off:.6}s off vs {on:.6}s on",
                    OVERHEAD_FRAC_MAX * 100.0
                );
            }
        }
    }

    let report = json!({
        "benchmark": "sustained_load",
        "total_recipes": total,
        "seed": seed,
        "smoke": smoke,
        "shards": shards,
        "queue_cap": 512,
        "note": "open-loop arrivals on a seeded schedule; latency runs from the \
                 scheduled arrival to the last response byte, so queueing under \
                 overload is included; 503 sheds are counted, not timed; each \
                 target runs paired trials against a bare server (rows *_nomon), \
                 a monitored one (rows *_noprof) and the full plane (historical \
                 row names, monitoring + request profiler); rows pool all \
                 trials, the two overhead gates compare best-of-trials p99s \
                 layer by layer; the profile block is the last full-plane \
                 trial's stage attribution",
        "trials": trials,
        "units": "fields ending _s are seconds, _per_s and _rate ratios; the \
                  bench-diff gate compares only the _s fields",
        "deterministic": false,
        "monitoring_overhead": overhead_rows,
        "profile": profile_doc,
        "results": rows,
    });
    let rendered = serde_json::to_string_pretty(&report).expect("render report");
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write report");
    eprintln!("wrote {out_path}");
    recipe_bench::append_history(&report);
    println!("{rendered}");
}

/// Offer `requests` POST /extract calls at `qps` on the seeded
/// schedule and collect every outcome.
fn fire_target(
    addr: SocketAddr,
    phrases: &[String],
    qps: f64,
    requests: usize,
    seed: u64,
) -> Vec<Sample> {
    let offsets = Arc::new(arrival_offsets(qps, requests, seed));
    let phrases = Arc::new(phrases.to_vec());
    let base = Instant::now();
    let clients = CLIENT_THREADS.min(requests.max(1));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let offsets = Arc::clone(&offsets);
            let phrases = Arc::clone(&phrases);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut i = c;
                while i < offsets.len() {
                    let at = offsets[i];
                    let phrase = &phrases[i % phrases.len()];
                    let target = Duration::from_secs_f64(at);
                    let elapsed = base.elapsed();
                    if target > elapsed {
                        std::thread::sleep(target - elapsed);
                    }
                    let status = post_extract(addr, phrase).unwrap_or(0);
                    out.push(Sample {
                        latency_s: (base.elapsed() - target).as_secs_f64().max(0.0),
                        status,
                    });
                    i += clients;
                }
                out
            })
        })
        .collect();
    let mut all = Vec::with_capacity(requests);
    for h in handles {
        all.extend(h.join().expect("client thread"));
    }
    all
}

/// One HTTP round trip: POST the phrase with `Connection: close` (the
/// bench measures cold-connection latency; without the header the
/// server would park the socket for keep-alive and `read_to_end` would
/// block until the idle timeout), read to EOF, return the status code.
fn post_extract(addr: SocketAddr, phrase: &str) -> std::io::Result<u16> {
    let body = serde_json::to_string(&json!({ "phrases": [phrase] }))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(
        format!(
            "POST /extract HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let head = String::from_utf8_lossy(&response);
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or(0);
    Ok(status)
}

/// One history row for a QPS target: the shared percentile fields over
/// the served (200) latencies, plus shed/error ride-alongs. Returns
/// the stats too so the caller can gate monitoring overhead on p99.
fn target_row(qps: f64, suffix: &str, shards: usize, samples: &[Sample]) -> (Value, Stats) {
    let served: Vec<f64> = samples
        .iter()
        .filter(|s| s.status == 200)
        .map(|s| s.latency_s)
        .collect();
    let shed = samples.iter().filter(|s| s.status == 503).count();
    let errors = samples
        .iter()
        .filter(|s| s.status != 200 && s.status != 503)
        .count();
    let n = samples.len().max(1);
    assert!(
        !served.is_empty(),
        "no successful responses at {qps} QPS ({shed} shed, {errors} errors)"
    );
    assert_eq!(
        errors, 0,
        "transport or server errors at {qps} QPS: {errors}/{n}"
    );
    let stats = Stats::from_samples(served.clone());
    let name = format!("qps{}{suffix}", qps as u64);
    let mut row = match stats_json(&name, shards as u64, &stats, 0) {
        Value::Object(pairs) => pairs,
        _ => Vec::new(),
    };
    row.push(("qps_target".to_string(), json!(qps)));
    row.push(("requests".to_string(), json!(samples.len())));
    row.push(("served".to_string(), json!(served.len())));
    row.push(("shed_rate".to_string(), json!(shed as f64 / n as f64)));
    row.push(("error_rate".to_string(), json!(errors as f64 / n as f64)));
    (Value::Object(row), stats)
}
