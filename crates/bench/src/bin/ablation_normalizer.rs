//! Ablation: token normalization — the paper's WordNet lemmatizer vs a
//! Porter stemmer vs no normalization — measured on NER F1 and on the
//! unique-ingredient-name count (the statistic normalization exists to
//! control: "tomatoes"/"Tomato" must unify, §II.C).
//!
//! Usage: `ablation_normalizer [total_recipes] [seed]`

use recipe_bench::{ner_f1, parse_cli};
use recipe_corpus::{AnnotatedPhrase, RecipeCorpus, Site};
use recipe_ner::model::LabeledSequence;
use recipe_ner::{IngredientTag, SequenceModel};
use recipe_text::stem::porter_stem;
use recipe_text::Preprocessor;
use std::collections::HashSet;

#[derive(Clone, Copy)]
enum Normalizer {
    Lemma,
    Stem,
    None,
}

fn to_seq(pre: &Preprocessor, norm: Normalizer, p: &AnnotatedPhrase) -> LabeledSequence {
    let (words, tags) = p.preprocessed(pre);
    let words = words
        .into_iter()
        .map(|w| match norm {
            Normalizer::Lemma | Normalizer::None => w,
            Normalizer::Stem => porter_stem(&w),
        })
        .collect();
    (
        words,
        tags.into_iter().map(|t| t.as_str().to_string()).collect(),
    )
}

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let labels = IngredientTag::label_set();

    println!("Ablation: token normalization (FOOD.com site)");
    println!("{:<18} {:>8} {:>14}", "normalizer", "F1", "unique names");
    for (name, norm) in [
        ("WordNet lemma", Normalizer::Lemma),
        ("Porter stem", Normalizer::Stem),
        ("none (lowercase)", Normalizer::None),
    ] {
        // The lemma variant uses the default preprocessor; the others turn
        // lemmatization off and post-process.
        let pre = match norm {
            Normalizer::Lemma => Preprocessor::default(),
            _ => Preprocessor::without_lemmatization(),
        };
        // Deterministic alternating split over unique phrases.
        let mut seen = HashSet::new();
        let mut train = Vec::new();
        let mut test = Vec::new();
        let mut names: HashSet<String> = HashSet::new();
        for (i, p) in corpus.phrases(Site::FoodCom).iter().enumerate() {
            if !seen.insert(p.text()) {
                continue;
            }
            let seq = to_seq(&pre, norm, p);
            // Gold name under this normalizer.
            let gold_name: Vec<&str> = seq
                .0
                .iter()
                .zip(&seq.1)
                .filter(|(_, t)| t.as_str() == "NAME")
                .map(|(w, _)| w.as_str())
                .collect();
            names.insert(gold_name.join(" "));
            if train.len() < 4000 && i % 10 == 0 {
                train.push(seq);
            } else if test.len() < 1500 && i % 10 == 1 {
                test.push(seq);
            }
        }
        let model = SequenceModel::train(&labels, &train, &scale.pipeline.ner);
        println!(
            "{:<18} {:>8.4} {:>14}",
            name,
            ner_f1(&model, &test),
            names.len()
        );
    }
    println!();
    println!("reading: F1 is normalization-insensitive (shape/context features absorb");
    println!("inflection), but the unique-name count inflates without lemmatization —");
    println!("the paper's stated reason for preprocessing (tomatoes/Tomato must unify).");
}
