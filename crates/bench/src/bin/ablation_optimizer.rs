//! Ablation: CRF optimizer choice — AdaGrad SGD vs full-batch L-BFGS (the
//! Stanford NER optimizer family) on the composite ingredient dataset.
//!
//! Usage: `ablation_optimizer [total_recipes] [seed]`

use recipe_bench::{ner_f1, parse_cli};
use recipe_core::pipeline::{build_site_dataset, train_pos_tagger};
use recipe_corpus::{RecipeCorpus, Site};
use recipe_ner::{IngredientTag, SequenceModel, TrainConfig, Trainer};
use recipe_text::Preprocessor;
use std::time::Instant;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pre = Preprocessor::default();
    let pos = train_pos_tagger(&corpus, scale.pipeline.pos_epochs, scale.pipeline.seed);
    let ds_ar = build_site_dataset(&corpus, Site::AllRecipes, &pos, &pre, &scale.pipeline);
    let ds_fc = build_site_dataset(&corpus, Site::FoodCom, &pos, &pre, &scale.pipeline);
    let mut train = ds_ar.train.clone();
    train.extend(ds_fc.train.iter().cloned());
    let mut test = ds_ar.test.clone();
    test.extend(ds_fc.test.iter().cloned());
    let labels = IngredientTag::label_set();

    println!("Ablation: CRF optimizer on the composite dataset");
    println!("train {} / test {} sequences", train.len(), test.len());
    println!("{:<22} {:>8} {:>10}", "optimizer", "F1", "train (s)");
    for (name, trainer) in [
        ("AdaGrad SGD", Trainer::Crf),
        ("L-BFGS (batch)", Trainer::CrfLbfgs),
        ("avg. perceptron", Trainer::Perceptron),
    ] {
        let cfg = TrainConfig {
            trainer,
            ..scale.pipeline.ner
        };
        let t0 = Instant::now();
        let model = SequenceModel::train(&labels, &train, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        println!("{:<22} {:>8.4} {:>10.2}", name, ner_f1(&model, &test), secs);
    }
}
