//! Ablation: cluster-stratified vs uniform random training-set selection,
//! swept over annotation budgets (§II.D-E's claim: at a small annotation
//! budget, stratification covers rare lexical structures that uniform
//! sampling misses).
//!
//! Usage: `ablation_sampling [total_recipes] [seed]`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use recipe_bench::{ner_f1, parse_cli};
use recipe_cluster::{stratified_sample, KMeans};
use recipe_core::pipeline::train_pos_tagger;
use recipe_corpus::{AnnotatedPhrase, RecipeCorpus, Site};
use recipe_ner::model::LabeledSequence;
use recipe_ner::{IngredientTag, SequenceModel};
use recipe_tagger::pos_frequency_vector;
use recipe_text::Preprocessor;

fn to_seq(pre: &Preprocessor, p: &AnnotatedPhrase) -> LabeledSequence {
    let (w, t) = p.preprocessed(pre);
    (w, t.into_iter().map(|x| x.as_str().to_string()).collect())
}

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let pre = Preprocessor::default();
    let pos = train_pos_tagger(&corpus, scale.pipeline.pos_epochs, scale.pipeline.seed);

    // Unique Food.com phrases, clustered once.
    let mut seen = std::collections::HashSet::new();
    let mut phrases: Vec<&AnnotatedPhrase> = Vec::new();
    for p in corpus.phrases(Site::FoodCom) {
        if seen.insert(p.text()) {
            phrases.push(p);
        }
    }
    let vectors: Vec<Vec<f64>> = phrases
        .iter()
        .map(|p| pos_frequency_vector(&pos.tag(&p.words())))
        .collect();
    let km = KMeans::fit(&vectors, &scale.pipeline.kmeans);
    let members = km.cluster_members();

    // Fixed held-out test set: every 7th phrase, excluded from all pools.
    let test_idx: Vec<usize> = (0..phrases.len()).filter(|i| i % 7 == 0).collect();
    let test_set: std::collections::HashSet<usize> = test_idx.iter().copied().collect();
    let test: Vec<LabeledSequence> = test_idx.iter().map(|&i| to_seq(&pre, phrases[i])).collect();
    let pool: Vec<usize> = (0..phrases.len())
        .filter(|i| !test_set.contains(i))
        .collect();
    let pool_members: Vec<Vec<usize>> = members
        .iter()
        .map(|m| {
            m.iter()
                .copied()
                .filter(|i| !test_set.contains(i))
                .collect()
        })
        .collect();

    let labels = IngredientTag::label_set();
    println!(
        "Ablation: stratified vs uniform annotation sampling (FOOD.com, test {} phrases)",
        test.len()
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10}",
        "budget", "stratified", "uniform", "delta"
    );
    for budget in [60usize, 120, 250, 500, 1000, 2500] {
        if budget > pool.len() {
            break;
        }
        // Stratified: per-cluster fraction sized to the budget.
        let frac = budget as f64 / pool.len() as f64;
        let mut strat_idx = stratified_sample(&pool_members, frac, scale.pipeline.seed);
        strat_idx.truncate(budget);
        let strat: Vec<LabeledSequence> = strat_idx
            .iter()
            .map(|&i| to_seq(&pre, phrases[i]))
            .collect();

        // Uniform: same budget, uniform over the pool.
        let mut rng = StdRng::seed_from_u64(scale.pipeline.seed ^ 0x5eed);
        let mut shuffled = pool.clone();
        shuffled.shuffle(&mut rng);
        let unif: Vec<LabeledSequence> = shuffled[..budget]
            .iter()
            .map(|&i| to_seq(&pre, phrases[i]))
            .collect();

        let f1_s = ner_f1(
            &SequenceModel::train(&labels, &strat, &scale.pipeline.ner),
            &test,
        );
        let f1_u = ner_f1(
            &SequenceModel::train(&labels, &unif, &scale.pipeline.ner),
            &test,
        );
        println!(
            "{:>8} {:>12.4} {:>10.4} {:>+10.4}",
            budget,
            f1_s,
            f1_u,
            f1_s - f1_u
        );
    }
    println!();
    println!("reading: the stratified advantage concentrates at small budgets, where uniform");
    println!("sampling leaves rare phrase-structure clusters with zero annotated examples.");
}
