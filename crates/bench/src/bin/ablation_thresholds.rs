//! Ablation: the dictionary frequency thresholds of §III.A (paper: 47 for
//! processes, 10 for utensils). Sweeps thresholds and reports dictionary
//! size plus how the filtered dictionaries affect event extraction.
//!
//! Usage: `ablation_thresholds [total_recipes] [seed]`

use recipe_bench::parse_cli;
use recipe_core::events::relation_stats;
use recipe_core::pipeline::TrainedPipeline;
use recipe_corpus::RecipeCorpus;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    let mut pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);
    let base = pipeline.dicts.clone();

    println!("Ablation: dictionary frequency thresholds");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "proc thr", "uten thr", "processes", "utensils", "relations/ins", "std"
    );
    let sample = 200.min(corpus.recipes.len());
    for (pt, ut) in [(1, 1), (2, 2), (5, 3), (10, 5), (20, 10), (50, 20)] {
        pipeline.dicts = base.with_thresholds(pt, ut);
        let stats = relation_stats(&pipeline, corpus.recipes.iter().take(sample));
        println!(
            "{:>10} {:>10} {:>10} {:>10} {:>12.3} {:>10.2}",
            pt,
            ut,
            pipeline.dicts.processes.len(),
            pipeline.dicts.utensils.len(),
            stats.mean,
            stats.std_dev
        );
    }
}
