//! Extension experiment: cuisine prediction from mined ingredient
//! information — a use case the paper's introduction motivates for the
//! structured ingredients section.
//!
//! Pipeline: mine recipes into RecipeModels with the trained extractor,
//! fit a naive Bayes classifier on the train half, evaluate on the held
//! out half against the majority-class baseline.
//!
//! Usage: `cuisine_prediction [total_recipes] [seed]`

use recipe_bench::parse_cli;
use recipe_core::cuisine::CuisineClassifier;
use recipe_core::pipeline::TrainedPipeline;
use recipe_corpus::RecipeCorpus;

fn main() {
    let scale = parse_cli();
    let corpus = RecipeCorpus::generate(&scale.corpus);
    eprintln!("training pipeline...");
    let pipeline = TrainedPipeline::train(&corpus, &scale.pipeline);

    eprintln!("mining recipe models...");
    let sample = corpus.recipes.len().min(4000);
    let models: Vec<_> = corpus
        .recipes
        .iter()
        .take(sample)
        .map(|r| pipeline.model_recipe(r))
        .collect();
    let (train, test) = models.split_at(models.len() / 2);

    let clf = CuisineClassifier::fit(train);
    let (acc, baseline) = clf.evaluate(test);
    println!("Cuisine prediction from extracted ingredient names (naive Bayes)");
    println!(
        "train {} recipes | test {} recipes | {} cuisines",
        train.len(),
        test.len(),
        clf.num_classes()
    );
    println!("accuracy:          {acc:.3}");
    println!("majority baseline: {baseline:.3}");
    println!(
        "random baseline:   {:.3}",
        1.0 / clf.num_classes().max(1) as f64
    );
    println!();
    println!("note: only 12 of the 40 corpus cuisines carry an ingredient signature;");
    println!("recipes of unsignatured cuisines are irreducibly ambiguous, which bounds");
    println!("attainable accuracy well below 1.");
}
