//! Porter stemmer (Porter, 1980) — the classic alternative to the paper's
//! WordNet lemmatizer for token normalization.
//!
//! The paper normalizes with a lemmatizer so that `tomatoes` → `tomato`
//! stays a real word; a stemmer is cruder (`tomatoes` → `tomato`, but
//! `juicy` → `juici`) yet needs no lexicon at all. The
//! `ablation_normalizer` binary measures the difference on the NER task.
//!
//! This is the original five-step algorithm over the `[C](VC)^m[V]`
//! measure, implemented for lowercase ASCII words; non-ASCII input is
//! returned unchanged.

/// Is the byte at `i` a consonant under Porter's definition?
fn is_consonant(word: &[u8], i: usize) -> bool {
    match word[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                // y after a consonant is a vowel ("happy"), after a vowel
                // a consonant ("boy").
                !is_consonant(word, i - 1)
            }
        }
        _ => true,
    }
}

/// Porter's measure m of `word[..len]`: the number of VC sequences.
fn measure(word: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(word, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(word, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants -> one VC completed.
        while i < len && is_consonant(word, i) {
            i += 1;
        }
        m += 1;
    }
}

fn has_vowel(word: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(word, i))
}

/// Does `word[..len]` end with a double consonant?
fn ends_double_consonant(word: &[u8], len: usize) -> bool {
    len >= 2 && word[len - 1] == word[len - 2] && is_consonant(word, len - 1)
}

/// Does `word[..len]` end consonant-vowel-consonant, where the final
/// consonant is not w, x or y?
fn ends_cvc(word: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(word, len - 3)
        && !is_consonant(word, len - 2)
        && is_consonant(word, len - 1)
        && !matches!(word[len - 1], b'w' | b'x' | b'y')
}

struct Stem {
    buf: Vec<u8>,
}

impl Stem {
    fn ends_with(&self, suffix: &str) -> bool {
        self.buf.ends_with(suffix.as_bytes())
    }

    fn stem_len(&self, suffix: &str) -> usize {
        self.buf.len() - suffix.len()
    }

    fn m_for(&self, suffix: &str) -> usize {
        measure(&self.buf, self.stem_len(suffix))
    }

    fn replace(&mut self, suffix: &str, with: &str) {
        let at = self.stem_len(suffix);
        self.buf.truncate(at);
        self.buf.extend_from_slice(with.as_bytes());
    }

    /// Replace `suffix` with `with` when the stem measure exceeds `min_m`.
    /// Returns true when the suffix matched (whether or not replaced).
    fn try_rule(&mut self, suffix: &str, with: &str, min_m: usize) -> bool {
        if self.ends_with(suffix) {
            if self.m_for(suffix) > min_m {
                self.replace(suffix, with);
            }
            true
        } else {
            false
        }
    }
}

/// Stem a lowercase word with the Porter algorithm.
///
/// ```
/// use recipe_text::stem::porter_stem;
/// assert_eq!(porter_stem("caresses"), "caress");
/// assert_eq!(porter_stem("ponies"), "poni");
/// assert_eq!(porter_stem("relational"), "relat");
/// assert_eq!(porter_stem("tomatoes"), "tomato");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stem {
        buf: word.as_bytes().to_vec(),
    };

    // Step 1a.
    if s.ends_with("sses") {
        s.replace("sses", "ss");
    } else if s.ends_with("ies") {
        s.replace("ies", "i");
    } else if !s.ends_with("ss") && s.ends_with("s") {
        s.replace("s", "");
    }

    // Step 1b.
    let mut step1b_extra = false;
    if s.ends_with("eed") {
        if s.m_for("eed") > 0 {
            s.replace("eed", "ee");
        }
    } else if s.ends_with("ed") && has_vowel(&s.buf, s.stem_len("ed")) {
        s.replace("ed", "");
        step1b_extra = true;
    } else if s.ends_with("ing") && has_vowel(&s.buf, s.stem_len("ing")) {
        s.replace("ing", "");
        step1b_extra = true;
    }
    if step1b_extra {
        if s.ends_with("at") || s.ends_with("bl") || s.ends_with("iz") {
            s.buf.push(b'e');
        } else if ends_double_consonant(&s.buf, s.buf.len())
            && !matches!(s.buf[s.buf.len() - 1], b'l' | b's' | b'z')
        {
            s.buf.pop();
        } else if measure(&s.buf, s.buf.len()) == 1 && ends_cvc(&s.buf, s.buf.len()) {
            s.buf.push(b'e');
        }
    }

    // Step 1c.
    if s.ends_with("y") && has_vowel(&s.buf, s.stem_len("y")) {
        s.replace("y", "i");
    }

    // Step 2 (m > 0 suffix mappings).
    const STEP2: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for &(suffix, with) in STEP2 {
        if s.try_rule(suffix, with, 0) {
            break;
        }
    }

    // Step 3.
    const STEP3: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for &(suffix, with) in STEP3 {
        if s.try_rule(suffix, with, 0) {
            break;
        }
    }

    // Step 4 (m > 1 deletions).
    const STEP4: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    let mut matched = false;
    for &suffix in STEP4 {
        if s.ends_with(suffix) {
            if s.m_for(suffix) > 1 {
                s.replace(suffix, "");
            }
            matched = true;
            break;
        }
    }
    // Special "ion" rule: only after s or t.
    if !matched && s.ends_with("ion") {
        let at = s.stem_len("ion");
        if at >= 1 && matches!(s.buf[at - 1], b's' | b't') && measure(&s.buf, at) > 1 {
            s.replace("ion", "");
        }
    }

    // Step 5a.
    if s.ends_with("e") {
        let at = s.stem_len("e");
        let m = measure(&s.buf, at);
        if m > 1 || (m == 1 && !ends_cvc(&s.buf, at)) {
            s.replace("e", "");
        }
    }
    // Step 5b.
    if ends_double_consonant(&s.buf, s.buf.len())
        && s.buf[s.buf.len() - 1] == b'l'
        && measure(&s.buf, s.buf.len()) > 1
    {
        s.buf.pop();
    }

    String::from_utf8(s.buf).expect("ascii stays utf8")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic vectors from Porter's paper and the reference vocabulary.
    #[test]
    fn reference_vectors() {
        for (input, expect) in [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ] {
            assert_eq!(porter_stem(input), expect, "input {input:?}");
        }
    }

    #[test]
    fn culinary_words() {
        assert_eq!(porter_stem("tomatoes"), "tomato");
        assert_eq!(porter_stem("chopped"), "chop");
        assert_eq!(porter_stem("slices"), "slice");
        assert_eq!(porter_stem("boiling"), "boil");
        assert_eq!(porter_stem("teaspoons"), "teaspoon");
    }

    #[test]
    fn short_and_non_ascii_pass_through() {
        assert_eq!(porter_stem("go"), "go");
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("jalapeño"), "jalapeño");
        assert_eq!(porter_stem("Tomatoes"), "Tomatoes"); // caller lowercases
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in [
            "tomato", "chop", "boil", "slice", "flour", "butter", "pepper",
        ] {
            let once = porter_stem(w);
            assert_eq!(porter_stem(&once), once, "{w}");
        }
    }
}
