#![warn(missing_docs)]

//! Text-processing substrate for recipe knowledge mining.
//!
//! The paper (Diwan et al., ICDE 2020) preprocesses every ingredient phrase
//! and instruction sentence before feeding it to the POS tagger and the NER
//! models:
//!
//! 1. tokenize (recipe text is phrase-like: fractions such as `1/2`, ranges
//!    such as `2-3`, and parenthesised asides such as `( thawed )` are
//!    meaningful tokens);
//! 2. drop stop words;
//! 3. lemmatize with the WordNet lemmatizer (`tomatoes` → `tomato`);
//! 4. lowercase.
//!
//! The paper used NLTK for steps 2–4; this crate implements the same
//! contract natively: [`tokenize`], [`stopwords::is_stop_word`],
//! [`lemma::Lemmatizer`] (an implementation of WordNet's *morphy*
//! algorithm: irregular-form exception lists plus per-part-of-speech suffix
//! detachment rules) and the end-to-end [`normalize::Preprocessor`].
//!
//! # Example
//!
//! ```
//! use recipe_text::normalize::Preprocessor;
//!
//! let pre = Preprocessor::default();
//! let tokens = pre.preprocess("2-3 medium Tomatoes, freshly chopped");
//! let texts: Vec<&str> = tokens.iter().map(|t| t.as_str()).collect();
//! assert_eq!(texts, ["2-3", "medium", "tomato", "freshly", "chopped"]);
//! ```

pub mod lemma;
pub mod normalize;
pub mod stem;
pub mod stopwords;
pub mod token;

pub use lemma::{Lemmatizer, WordClass};
pub use normalize::Preprocessor;
pub use token::{tokenize, Token, TokenKind};
