//! WordNet-style lemmatizer (the *morphy* algorithm).
//!
//! NLTK's `WordNetLemmatizer` — used by the paper for preprocessing — wraps
//! WordNet's morphy procedure: first look the word up in a per-class
//! *exception list* of irregular forms, then try a cascade of suffix
//! *detachment rules* and accept the first candidate found in the lexicon.
//!
//! We embed the exception lists relevant to culinary vocabulary plus a
//! lexicon of base forms, and fall back to conservative rule application
//! (never producing an empty or single-letter stem) when a word is unknown,
//! so novel ingredient names still normalize sensibly (`yuzus` → `yuzu`).

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Word class used to select detachment rules (WordNet's four classes,
/// adverbs handled like adjectives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WordClass {
    /// Nouns: `tomatoes` → `tomato`.
    Noun,
    /// Verbs: `boiling` → `boil`.
    Verb,
    /// Adjectives: `larger` → `large`.
    Adjective,
}

/// Irregular noun plurals common in food text.
const NOUN_EXCEPTIONS: &[(&str, &str)] = &[
    ("children", "child"),
    ("feet", "foot"),
    ("geese", "goose"),
    ("halves", "half"),
    ("knives", "knife"),
    ("leaves", "leaf"),
    ("lives", "life"),
    ("loaves", "loaf"),
    ("men", "man"),
    ("mice", "mouse"),
    ("potatoes", "potato"),
    ("teeth", "tooth"),
    ("tomatoes", "tomato"),
    ("wives", "wife"),
    ("women", "woman"),
];

/// Irregular verb forms common in instruction text.
const VERB_EXCEPTIONS: &[(&str, &str)] = &[
    ("ate", "eat"),
    ("beaten", "beat"),
    ("began", "begin"),
    ("begun", "begin"),
    ("brought", "bring"),
    ("cut", "cut"),
    ("done", "do"),
    ("drew", "draw"),
    ("froze", "freeze"),
    ("frozen", "freeze"),
    ("ground", "grind"),
    ("kept", "keep"),
    ("left", "leave"),
    ("let", "let"),
    ("made", "make"),
    ("melted", "melt"),
    ("put", "put"),
    ("set", "set"),
    ("took", "take"),
    ("threw", "throw"),
    ("thrown", "throw"),
    ("went", "go"),
];

/// Irregular adjective comparative/superlative forms.
const ADJ_EXCEPTIONS: &[(&str, &str)] = &[
    ("best", "good"),
    ("better", "good"),
    ("least", "little"),
    ("less", "little"),
    ("more", "many"),
    ("most", "many"),
    ("worse", "bad"),
    ("worst", "bad"),
];

/// Base-form lexicon: words whose base form we *know*, so detachment
/// candidates can be validated against it. Deliberately food-centric; the
/// lemmatizer degrades gracefully for words outside it.
const LEXICON: &[&str] = &[
    // ingredients & food nouns
    "almond",
    "apple",
    "apricot",
    "asparagus",
    "avocado",
    "bacon",
    "banana",
    "basil",
    "bean",
    "beef",
    "beet",
    "berry",
    "biscuit",
    "blueberry",
    "bread",
    "broccoli",
    "broth",
    "butter",
    "cabbage",
    "cake",
    "caper",
    "carrot",
    "cashew",
    "celery",
    "cheese",
    "cherry",
    "chicken",
    "chickpea",
    "chili",
    "chive",
    "chocolate",
    "cilantro",
    "cinnamon",
    "clove",
    "coconut",
    "cookie",
    "coriander",
    "corn",
    "crab",
    "cranberry",
    "cream",
    "cucumber",
    "cumin",
    "curry",
    "date",
    "dill",
    "dough",
    "egg",
    "eggplant",
    "fennel",
    "fig",
    "fillet",
    "flour",
    "garlic",
    "ginger",
    "grape",
    "gravy",
    "ham",
    "hazelnut",
    "herb",
    "honey",
    "jalapeno",
    "juice",
    "kale",
    "lamb",
    "leek",
    "lemon",
    "lentil",
    "lettuce",
    "lime",
    "lobster",
    "mango",
    "maple",
    "marinade",
    "meat",
    "milk",
    "mint",
    "mushroom",
    "mussel",
    "mustard",
    "noodle",
    "nut",
    "nutmeg",
    "oat",
    "oil",
    "olive",
    "onion",
    "orange",
    "oregano",
    "oyster",
    "paprika",
    "parsley",
    "parsnip",
    "pasta",
    "pastry",
    "pea",
    "peach",
    "peanut",
    "pear",
    "pecan",
    "pepper",
    "pickle",
    "pineapple",
    "pistachio",
    "plum",
    "pork",
    "potato",
    "prawn",
    "pumpkin",
    "quinoa",
    "radish",
    "raisin",
    "raspberry",
    "rhubarb",
    "rice",
    "rosemary",
    "saffron",
    "sage",
    "salmon",
    "salsa",
    "salt",
    "sauce",
    "sausage",
    "scallion",
    "scallop",
    "seed",
    "sesame",
    "shallot",
    "shrimp",
    "soup",
    "spinach",
    "sprout",
    "squash",
    "steak",
    "stock",
    "strawberry",
    "sugar",
    "syrup",
    "thyme",
    "tofu",
    "tomato",
    "tortilla",
    "tuna",
    "turkey",
    "turmeric",
    "turnip",
    "vanilla",
    "vinegar",
    "walnut",
    "water",
    "watermelon",
    "wine",
    "yeast",
    "yogurt",
    "zucchini",
    "hummus",
    "citrus",
    "couscous",
    "asparagus",
    // units & containers
    "bag",
    "batch",
    "bottle",
    "bowl",
    "box",
    "bunch",
    "can",
    "carton",
    "container",
    "cup",
    "dash",
    "dollop",
    "gallon",
    "gram",
    "handful",
    "head",
    "inch",
    "jar",
    "kilogram",
    "liter",
    "loaf",
    "milliliter",
    "ounce",
    "package",
    "packet",
    "piece",
    "pinch",
    "pint",
    "pound",
    "quart",
    "rib",
    "sheet",
    "slice",
    "sprig",
    "stalk",
    "stick",
    "strip",
    "tablespoon",
    "teaspoon",
    "wedge",
    // utensils
    "blender",
    "board",
    "colander",
    "dish",
    "foil",
    "fork",
    "grater",
    "griddle",
    "grill",
    "knife",
    "ladle",
    "mixer",
    "oven",
    "pan",
    "peeler",
    "plate",
    "pot",
    "processor",
    "rack",
    "skewer",
    "skillet",
    "spatula",
    "spoon",
    "thermometer",
    "tong",
    "tray",
    "whisk",
    "wok",
    // processes (verb base forms)
    "add",
    "bake",
    "baste",
    "beat",
    "blanch",
    "blend",
    "boil",
    "braise",
    "bring",
    "broil",
    "brown",
    "brush",
    "chill",
    "chop",
    "coat",
    "combine",
    "cook",
    "cool",
    "core",
    "cover",
    "crush",
    "cube",
    "cut",
    "deglaze",
    "dice",
    "discard",
    "dissolve",
    "drain",
    "dress",
    "drizzle",
    "dry",
    "dust",
    "fill",
    "flip",
    "fold",
    "fry",
    "garnish",
    "glaze",
    "grate",
    "grease",
    "grill",
    "grind",
    "heat",
    "julienne",
    "knead",
    "layer",
    "marinate",
    "mash",
    "measure",
    "melt",
    "microwave",
    "mince",
    "mix",
    "peel",
    "pit",
    "place",
    "poach",
    "pour",
    "preheat",
    "press",
    "puree",
    "reduce",
    "refrigerate",
    "remove",
    "rinse",
    "roast",
    "roll",
    "rub",
    "saute",
    "scrape",
    "sear",
    "season",
    "serve",
    "shred",
    "sift",
    "simmer",
    "skim",
    "slice",
    "soak",
    "soften",
    "sprinkle",
    "steam",
    "stew",
    "stir",
    "strain",
    "stuff",
    "taste",
    "thaw",
    "thicken",
    "toast",
    "top",
    "toss",
    "transfer",
    "trim",
    "turn",
    "whip",
    "whisk",
    "zest",
    // adjectives / states
    "big",
    "bitter",
    "coarse",
    "cold",
    "creamy",
    "crisp",
    "crispy",
    "dark",
    "deep",
    "dried",
    "extra",
    "fine",
    "firm",
    "fresh",
    "gentle",
    "golden",
    "heavy",
    "hot",
    "large",
    "lean",
    "light",
    "little",
    "long",
    "low",
    "medium",
    "mild",
    "new",
    "quick",
    "raw",
    "rich",
    "ripe",
    "short",
    "small",
    "smooth",
    "soft",
    "sour",
    "spicy",
    "stiff",
    "sweet",
    "tender",
    "thick",
    "thin",
    "warm",
    "whole",
    "wide",
];

/// The lemmatizer: exception tables + detachment rules + lexicon validation.
#[derive(Debug, Clone)]
pub struct Lemmatizer {
    lexicon: HashSet<&'static str>,
    noun_exc: HashMap<&'static str, &'static str>,
    verb_exc: HashMap<&'static str, &'static str>,
    adj_exc: HashMap<&'static str, &'static str>,
}

impl Default for Lemmatizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Lemmatizer {
    /// Build a lemmatizer with the embedded culinary lexicon.
    pub fn new() -> Self {
        Lemmatizer {
            lexicon: LEXICON.iter().copied().collect(),
            noun_exc: NOUN_EXCEPTIONS.iter().copied().collect(),
            verb_exc: VERB_EXCEPTIONS.iter().copied().collect(),
            adj_exc: ADJ_EXCEPTIONS.iter().copied().collect(),
        }
    }

    /// Is `word` a known base form?
    pub fn in_lexicon(&self, word: &str) -> bool {
        self.lexicon.contains(word)
    }

    /// Lemmatize `word` (must already be lowercase) as the given class.
    ///
    /// ```
    /// use recipe_text::lemma::{Lemmatizer, WordClass};
    /// let lem = Lemmatizer::new();
    /// assert_eq!(lem.lemmatize("tomatoes", WordClass::Noun), "tomato");
    /// assert_eq!(lem.lemmatize("boiling", WordClass::Verb), "boil");
    /// assert_eq!(lem.lemmatize("larger", WordClass::Adjective), "large");
    /// ```
    pub fn lemmatize(&self, word: &str, class: WordClass) -> String {
        let exc = match class {
            WordClass::Noun => &self.noun_exc,
            WordClass::Verb => &self.verb_exc,
            WordClass::Adjective => &self.adj_exc,
        };
        if let Some(&base) = exc.get(word) {
            return base.to_string();
        }
        if self.lexicon.contains(word) {
            return word.to_string();
        }
        match class {
            WordClass::Noun => self.detach_noun(word),
            WordClass::Verb => self.detach_verb(word),
            WordClass::Adjective => self.detach_adj(word),
        }
    }

    /// Lemmatize as a noun — the default used for ingredient phrases, where
    /// almost every content word is nominal.
    pub fn lemmatize_noun(&self, word: &str) -> String {
        self.lemmatize(word, WordClass::Noun)
    }

    /// Try detachment rules in order; prefer candidates in the lexicon but
    /// accept a safe rule-stem for unknown words.
    fn detach<'a>(&self, word: &str, rules: &[(&'a str, &'a str)]) -> String {
        let mut fallback: Option<String> = None;
        for &(suffix, replacement) in rules {
            if let Some(stem) = word.strip_suffix(suffix) {
                if stem.len() < 2 {
                    continue;
                }
                let candidate = format!("{stem}{replacement}");
                if self.lexicon.contains(candidate.as_str()) {
                    return candidate;
                }
                if fallback.is_none() {
                    fallback = Some(candidate);
                }
            }
        }
        fallback.unwrap_or_else(|| word.to_string())
    }

    fn detach_noun(&self, word: &str) -> String {
        // WordNet noun detachments, most specific first.
        const RULES: &[(&str, &str)] = &[
            ("ies", "y"),
            ("sses", "ss"),
            ("shes", "sh"),
            ("ches", "ch"),
            ("xes", "x"),
            ("zes", "z"),
            ("ves", "f"),
            ("oes", "o"),
            ("es", "e"),
            ("es", ""),
            ("s", ""),
        ];
        // Words ending in "ss" (cress) are singular; true "-us" singulars
        // (asparagus, hummus) are covered by the lexicon before we get here.
        if word.ends_with("ss") || !word.ends_with('s') {
            return word.to_string();
        }
        self.detach(word, RULES)
    }

    fn detach_verb(&self, word: &str) -> String {
        const RULES: &[(&str, &str)] = &[
            ("ies", "y"),
            // doubled consonant + ing/ed: chopping → chop, stirred → stir
            ("bbing", "b"),
            ("dding", "d"),
            ("gging", "g"),
            ("mming", "m"),
            ("nning", "n"),
            ("pping", "p"),
            ("rring", "r"),
            ("tting", "t"),
            ("bbed", "b"),
            ("dded", "d"),
            ("gged", "g"),
            ("mmed", "m"),
            ("nned", "n"),
            ("pped", "p"),
            ("rred", "r"),
            ("tted", "t"),
            ("ing", "e"),
            ("ing", ""),
            ("ed", "e"),
            ("ed", ""),
            ("es", "e"),
            ("es", ""),
            ("s", ""),
        ];
        if !(word.ends_with('s') || word.ends_with("ing") || word.ends_with("ed")) {
            return word.to_string();
        }
        self.detach(word, RULES)
    }

    fn detach_adj(&self, word: &str) -> String {
        const RULES: &[(&str, &str)] = &[("est", "e"), ("est", ""), ("er", "e"), ("er", "")];
        if !(word.ends_with("er") || word.ends_with("est")) {
            return word.to_string();
        }
        self.detach(word, RULES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lem() -> Lemmatizer {
        Lemmatizer::new()
    }

    #[test]
    fn regular_noun_plurals() {
        let l = lem();
        assert_eq!(l.lemmatize_noun("cups"), "cup");
        assert_eq!(l.lemmatize_noun("onions"), "onion");
        assert_eq!(l.lemmatize_noun("berries"), "berry");
        assert_eq!(l.lemmatize_noun("peaches"), "peach");
        assert_eq!(l.lemmatize_noun("boxes"), "box");
        assert_eq!(l.lemmatize_noun("slices"), "slice");
    }

    #[test]
    fn irregular_noun_plurals() {
        let l = lem();
        assert_eq!(l.lemmatize_noun("tomatoes"), "tomato");
        assert_eq!(l.lemmatize_noun("potatoes"), "potato");
        assert_eq!(l.lemmatize_noun("knives"), "knife");
        assert_eq!(l.lemmatize_noun("leaves"), "leaf");
        assert_eq!(l.lemmatize_noun("loaves"), "loaf");
    }

    #[test]
    fn singular_forms_pass_through() {
        let l = lem();
        assert_eq!(l.lemmatize_noun("tomato"), "tomato");
        assert_eq!(l.lemmatize_noun("asparagus"), "asparagus");
        assert_eq!(l.lemmatize_noun("cress"), "cress");
        assert_eq!(l.lemmatize_noun("hummus"), "hummus");
    }

    #[test]
    fn verb_inflections() {
        let l = lem();
        assert_eq!(l.lemmatize("boiling", WordClass::Verb), "boil");
        assert_eq!(l.lemmatize("chopped", WordClass::Verb), "chop");
        assert_eq!(l.lemmatize("chopping", WordClass::Verb), "chop");
        assert_eq!(l.lemmatize("stirred", WordClass::Verb), "stir");
        assert_eq!(l.lemmatize("slices", WordClass::Verb), "slice");
        assert_eq!(l.lemmatize("baked", WordClass::Verb), "bake");
        assert_eq!(l.lemmatize("sauteing", WordClass::Verb), "saute");
        assert_eq!(l.lemmatize("simmering", WordClass::Verb), "simmer");
    }

    #[test]
    fn irregular_verbs() {
        let l = lem();
        assert_eq!(l.lemmatize("brought", WordClass::Verb), "bring");
        assert_eq!(l.lemmatize("frozen", WordClass::Verb), "freeze");
        assert_eq!(l.lemmatize("ground", WordClass::Verb), "grind");
        assert_eq!(l.lemmatize("made", WordClass::Verb), "make");
    }

    #[test]
    fn adjectives() {
        let l = lem();
        assert_eq!(l.lemmatize("larger", WordClass::Adjective), "large");
        assert_eq!(l.lemmatize("largest", WordClass::Adjective), "large");
        assert_eq!(l.lemmatize("thicker", WordClass::Adjective), "thick");
        assert_eq!(l.lemmatize("best", WordClass::Adjective), "good");
        assert_eq!(l.lemmatize("fresh", WordClass::Adjective), "fresh");
    }

    #[test]
    fn unknown_words_degrade_gracefully() {
        let l = lem();
        // Not in the lexicon: the plural rule still applies.
        assert_eq!(l.lemmatize_noun("yuzus"), "yuzu");
        assert_eq!(l.lemmatize_noun("gooseberries"), "gooseberry");
        // Too short to stem.
        assert_eq!(l.lemmatize_noun("as"), "as");
    }

    #[test]
    fn lemmatization_is_idempotent_on_lexicon() {
        let l = lem();
        for w in super::LEXICON {
            let once = l.lemmatize_noun(w);
            assert_eq!(l.lemmatize_noun(&once), once, "noun idempotence for {w}");
        }
    }

    #[test]
    fn never_returns_empty_or_tiny_stems() {
        let l = lem();
        for w in ["s", "es", "ies", "ing", "ed", ""] {
            let out = l.lemmatize_noun(w);
            assert!(out.len() >= w.len().min(2), "{w:?} -> {out:?}");
        }
        assert_eq!(l.lemmatize_noun("s"), "s");
        assert_eq!(l.lemmatize_noun("es"), "es");
    }
}
