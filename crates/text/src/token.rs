//! Recipe-aware tokenizer.
//!
//! Ingredient phrases are not grammatical sentences; they are dense with
//! numeric patterns that ordinary word tokenizers destroy. The lexical
//! challenges called out in §II.A of the paper drive the rules here:
//!
//! * fractions (`1/2`, `3 1/2`) and unicode vulgar fractions (`½`) stay a
//!   single token (`½` is normalized to `1/2`);
//! * numeric ranges (`2-3`, `1-2`) stay a single token — they are a single
//!   `QUANTITY` entity;
//! * hyphenated words (`half-and-half`, `all-purpose`) stay a single token;
//! * punctuation (`(`, `)`, `,`, `.`, `;`, `:`) is split into its own token
//!   so that parenthesised attributes like `( thawed )` can be tagged.

use serde::{Deserialize, Serialize};

/// Broad lexical class of a token, decided purely from its surface form.
///
/// This is *not* a part-of-speech tag — it is cheap surface information used
/// by feature extractors in the tagger and NER crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// Alphabetic (possibly hyphenated) word: `pepper`, `half-and-half`.
    Word,
    /// Pure integer: `2`, `16`.
    Integer,
    /// Fraction: `1/2`, `3/4`.
    Fraction,
    /// Numeric range: `2-3`, `1-2`.
    Range,
    /// Mixed number written as one token after normalization is not
    /// produced; decimals such as `1.5` are `Decimal`.
    Decimal,
    /// Single punctuation character: `(`, `)`, `,`, …
    Punct,
    /// Anything else (alphanumeric mixes such as `8oz`).
    Other,
}

/// A token with its surface text and byte span in the original input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Surface text (after unicode-fraction normalization).
    pub text: String,
    /// Surface-form class.
    pub kind: TokenKind,
    /// Byte offset of the first byte in the original string.
    pub start: usize,
    /// Byte offset one past the last byte in the original string.
    pub end: usize,
}

impl Token {
    /// Borrow the token text.
    pub fn as_str(&self) -> &str {
        &self.text
    }
}

/// Map unicode vulgar fractions to their ASCII spelling.
fn unicode_fraction(c: char) -> Option<&'static str> {
    Some(match c {
        '½' => "1/2",
        '⅓' => "1/3",
        '⅔' => "2/3",
        '¼' => "1/4",
        '¾' => "3/4",
        '⅕' => "1/5",
        '⅖' => "2/5",
        '⅗' => "3/5",
        '⅘' => "4/5",
        '⅙' => "1/6",
        '⅚' => "5/6",
        '⅛' => "1/8",
        '⅜' => "3/8",
        '⅝' => "5/8",
        '⅞' => "7/8",
        _ => return None,
    })
}

fn is_punct(c: char) -> bool {
    matches!(
        c,
        '(' | ')' | ',' | '.' | ';' | ':' | '!' | '?' | '"' | '\'' | '[' | ']' | '&' | '/'
    )
}

/// Classify a completed token's surface form.
fn classify(text: &str) -> TokenKind {
    let bytes = text.as_bytes();
    if bytes.is_empty() {
        return TokenKind::Other;
    }
    if text.chars().count() == 1 && is_punct(text.chars().next().unwrap()) {
        return TokenKind::Punct;
    }
    if text.chars().all(|c| c.is_ascii_digit()) {
        return TokenKind::Integer;
    }
    // Fraction: digits '/' digits
    if let Some(slash) = text.find('/') {
        let (a, b) = (&text[..slash], &text[slash + 1..]);
        if !a.is_empty()
            && !b.is_empty()
            && a.bytes().all(|c| c.is_ascii_digit())
            && b.bytes().all(|c| c.is_ascii_digit())
        {
            return TokenKind::Fraction;
        }
    }
    // Range: digits '-' digits
    if let Some(dash) = text.find('-') {
        let (a, b) = (&text[..dash], &text[dash + 1..]);
        if !a.is_empty()
            && !b.is_empty()
            && a.bytes().all(|c| c.is_ascii_digit())
            && b.bytes().all(|c| c.is_ascii_digit())
        {
            return TokenKind::Range;
        }
    }
    // Decimal: digits '.' digits
    if let Some(dot) = text.find('.') {
        let (a, b) = (&text[..dot], &text[dot + 1..]);
        if !a.is_empty()
            && !b.is_empty()
            && a.bytes().all(|c| c.is_ascii_digit())
            && b.bytes().all(|c| c.is_ascii_digit())
        {
            return TokenKind::Decimal;
        }
    }
    if text
        .chars()
        .all(|c| c.is_alphabetic() || c == '-' || c == '\'')
    {
        return TokenKind::Word;
    }
    TokenKind::Other
}

/// Decide whether a `-` or `/` or `.` at byte position `i` glues two parts
/// of one token together (numeric range / fraction / decimal / hyphenated
/// word) rather than separating tokens.
fn is_glue(prev: Option<char>, c: char, next: Option<char>) -> bool {
    let (p, n) = match (prev, next) {
        (Some(p), Some(n)) => (p, n),
        _ => return false,
    };
    match c {
        // `2-3` and `all-purpose`; also `extra-virgin`.
        '-' => {
            (p.is_ascii_digit() && n.is_ascii_digit()) || (p.is_alphabetic() && n.is_alphabetic())
        }
        // `1/2` only; `and/or` is split so NER sees two words.
        '/' => p.is_ascii_digit() && n.is_ascii_digit(),
        // `1.5`.
        '.' => p.is_ascii_digit() && n.is_ascii_digit(),
        _ => false,
    }
}

/// Tokenize a recipe phrase or instruction sentence.
///
/// The returned tokens carry byte spans into `input`. Unicode vulgar
/// fractions are rewritten (`½` → `1/2`), in which case the token's span
/// still covers the original character.
///
/// ```
/// use recipe_text::token::{tokenize, TokenKind};
///
/// let toks = tokenize("1 (8 ounce) package cream cheese, softened");
/// let texts: Vec<&str> = toks.iter().map(|t| t.as_str()).collect();
/// assert_eq!(
///     texts,
///     ["1", "(", "8", "ounce", ")", "package", "cream", "cheese", ",", "softened"]
/// );
/// assert_eq!(toks[0].kind, TokenKind::Integer);
/// ```
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut buf = String::new();
    let mut buf_start = 0usize;

    let push = |buf: &mut String, start: usize, end: usize, out: &mut Vec<Token>| {
        if !buf.is_empty() {
            let text = std::mem::take(buf);
            let kind = classify(&text);
            out.push(Token {
                text,
                kind,
                start,
                end,
            });
        }
    };

    let chars: Vec<(usize, char)> = input.char_indices().collect();
    for idx in 0..chars.len() {
        let (i, c) = chars[idx];
        let end_of_char = i + c.len_utf8();
        if c.is_whitespace() {
            push(&mut buf, buf_start, i, &mut out);
            continue;
        }
        if let Some(frac) = unicode_fraction(c) {
            // A vulgar fraction is always its own token (e.g. "1½" is rare
            // enough that splitting "1" and "1/2" is the safe reading).
            push(&mut buf, buf_start, i, &mut out);
            out.push(Token {
                text: frac.to_string(),
                kind: TokenKind::Fraction,
                start: i,
                end: end_of_char,
            });
            buf_start = end_of_char;
            continue;
        }
        if is_punct(c) {
            let prev = buf.chars().last();
            let next = chars.get(idx + 1).map(|&(_, n)| n);
            if is_glue(prev, c, next) {
                if buf.is_empty() {
                    buf_start = i;
                }
                buf.push(c);
                continue;
            }
            push(&mut buf, buf_start, i, &mut out);
            out.push(Token {
                text: c.to_string(),
                kind: TokenKind::Punct,
                start: i,
                end: end_of_char,
            });
            buf_start = end_of_char;
            continue;
        }
        if c == '-' {
            let prev = buf.chars().last();
            let next = chars.get(idx + 1).map(|&(_, n)| n);
            if is_glue(prev, c, next) {
                buf.push(c);
                continue;
            }
            push(&mut buf, buf_start, i, &mut out);
            buf_start = end_of_char;
            continue;
        }
        if buf.is_empty() {
            buf_start = i;
        }
        buf.push(c);
    }
    push(&mut buf, buf_start, input.len(), &mut out);
    out
}

/// Convenience: tokenize and return only the surface strings.
pub fn tokenize_words(input: &str) -> Vec<String> {
    tokenize(input).into_iter().map(|t| t.text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(s: &str) -> Vec<String> {
        tokenize_words(s)
    }

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(texts("2 cups flour"), ["2", "cups", "flour"]);
    }

    #[test]
    fn keeps_fractions_whole() {
        let toks = tokenize("1/2 teaspoon pepper");
        assert_eq!(toks[0].text, "1/2");
        assert_eq!(toks[0].kind, TokenKind::Fraction);
    }

    #[test]
    fn keeps_ranges_whole() {
        let toks = tokenize("2-3 medium tomatoes");
        assert_eq!(toks[0].text, "2-3");
        assert_eq!(toks[0].kind, TokenKind::Range);
    }

    #[test]
    fn keeps_decimals_whole() {
        let toks = tokenize("1.5 pounds beef");
        assert_eq!(toks[0].text, "1.5");
        assert_eq!(toks[0].kind, TokenKind::Decimal);
    }

    #[test]
    fn splits_parentheses_and_commas() {
        assert_eq!(
            texts("1 sheet frozen puff pastry (thawed)"),
            ["1", "sheet", "frozen", "puff", "pastry", "(", "thawed", ")"]
        );
        assert_eq!(
            texts("pepper,freshly ground"),
            ["pepper", ",", "freshly", "ground"]
        );
    }

    #[test]
    fn keeps_hyphenated_words_whole() {
        assert_eq!(texts("half-and-half"), ["half-and-half"]);
        assert_eq!(
            texts("2 tablespoons all-purpose flour"),
            ["2", "tablespoons", "all-purpose", "flour"]
        );
    }

    #[test]
    fn normalizes_unicode_fractions() {
        let toks = tokenize("½ cup sugar");
        assert_eq!(toks[0].text, "1/2");
        assert_eq!(toks[0].kind, TokenKind::Fraction);
        assert_eq!(toks[1].text, "cup");
    }

    #[test]
    fn mixed_number_becomes_two_tokens() {
        assert_eq!(texts("1 1/2 cups milk"), ["1", "1/2", "cups", "milk"]);
    }

    #[test]
    fn spans_cover_original_bytes() {
        let input = "1 garlic clove, crushed";
        for tok in tokenize(input) {
            if tok.text.len() == tok.end - tok.start {
                assert_eq!(&input[tok.start..tok.end], tok.text);
            }
        }
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn slash_between_words_splits() {
        assert_eq!(texts("and/or"), ["and", "/", "or"]);
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(classify("salt"), TokenKind::Word);
        assert_eq!(classify("12"), TokenKind::Integer);
        assert_eq!(classify("3/4"), TokenKind::Fraction);
        assert_eq!(classify("2-3"), TokenKind::Range);
        assert_eq!(classify("0.5"), TokenKind::Decimal);
        assert_eq!(classify(","), TokenKind::Punct);
        assert_eq!(classify("8oz"), TokenKind::Other);
    }

    #[test]
    fn trailing_hyphen_dropped() {
        // A dangling dash separates; it is not kept in any token.
        assert_eq!(texts("sugar - free"), ["sugar", "free"]);
    }
}
