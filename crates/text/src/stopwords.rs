//! English stop-word list.
//!
//! The paper removes stop words before POS-tagging and NER (§II.C),
//! matching NLTK's English list. The list below is NLTK's list *minus*
//! words that can be entity-bearing in recipe text: `to` participates in
//! instruction syntax (`bring to a boil`) but is still a stop word for
//! ingredient phrases, so the [`Preprocessor`](crate::normalize::Preprocessor)
//! decides per-section which list to use.

/// NLTK-style English stop words (lowercase).
pub const STOP_WORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren't",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can't",
    "cannot",
    "could",
    "couldn't",
    "did",
    "didn't",
    "do",
    "does",
    "doesn't",
    "doing",
    "don't",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn't",
    "has",
    "hasn't",
    "have",
    "haven't",
    "having",
    "he",
    "he'd",
    "he'll",
    "he's",
    "her",
    "here",
    "here's",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "how's",
    "i",
    "i'd",
    "i'll",
    "i'm",
    "i've",
    "if",
    "in",
    "into",
    "is",
    "isn't",
    "it",
    "it's",
    "its",
    "itself",
    "let's",
    "me",
    "more",
    "most",
    "mustn't",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "shan't",
    "she",
    "she'd",
    "she'll",
    "she's",
    "should",
    "shouldn't",
    "so",
    "some",
    "such",
    "than",
    "that",
    "that's",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "there's",
    "these",
    "they",
    "they'd",
    "they'll",
    "they're",
    "they've",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "wasn't",
    "we",
    "we'd",
    "we'll",
    "we're",
    "we've",
    "were",
    "weren't",
    "what",
    "what's",
    "when",
    "when's",
    "where",
    "where's",
    "which",
    "while",
    "who",
    "who's",
    "whom",
    "why",
    "why's",
    "with",
    "won't",
    "would",
    "wouldn't",
    "you",
    "you'd",
    "you'll",
    "you're",
    "you've",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Stop words that must be *kept* when preprocessing instruction sentences,
/// because the dependency parser needs them to recover prepositional
/// attachments (`fry the potatoes **with** olive oil **in** a pan`).
pub const INSTRUCTION_KEEP: &[&str] = &[
    "in", "into", "with", "to", "on", "over", "under", "from", "until", "for", "the", "a", "an",
];

/// Is `word` (already lowercased) a stop word?
///
/// ```
/// assert!(recipe_text::stopwords::is_stop_word("the"));
/// assert!(!recipe_text::stopwords::is_stop_word("tomato"));
/// ```
pub fn is_stop_word(word: &str) -> bool {
    // The list is sorted; binary search keeps lookups allocation-free.
    STOP_WORDS.binary_search(&word).is_ok()
}

/// Is `word` a stop word that should nevertheless survive instruction
/// preprocessing?
pub fn keep_in_instructions(word: &str) -> bool {
    INSTRUCTION_KEEP.contains(&word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        let mut sorted = STOP_WORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted, STOP_WORDS,
            "STOP_WORDS must stay sorted for binary_search"
        );
    }

    #[test]
    fn common_stop_words_match() {
        for w in ["the", "a", "of", "and", "or", "at", "to"] {
            assert!(is_stop_word(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_are_not_stopped() {
        for w in ["tomato", "cup", "frozen", "boil", "pan", "fresh", "ground"] {
            assert!(!is_stop_word(w), "{w} must not be a stop word");
        }
    }

    #[test]
    fn instruction_keep_words_are_stop_words() {
        for w in INSTRUCTION_KEEP {
            assert!(is_stop_word(w), "{w} should be in the main list too");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_lowercase_contract() {
        // Callers must lowercase first; "The" is not found as-is.
        assert!(!is_stop_word("The"));
    }
}
