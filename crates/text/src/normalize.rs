//! End-to-end preprocessing pipeline (§II.C of the paper).
//!
//! Combines tokenization, lowercasing, stop-word removal and noun
//! lemmatization so that `"tomatoes"` and `"Tomato"` become the identical
//! token `tomato`. Two section-specific modes exist because the
//! instructions section must keep prepositions and determiners for the
//! dependency parser.

use crate::lemma::{Lemmatizer, WordClass};
use crate::stopwords;
use crate::token::{tokenize, Token, TokenKind};

/// Which recipe section is being preprocessed. Controls stop-word policy
/// and the default lemma word-class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Ingredient phrases: aggressive stop-word removal, noun lemmas.
    Ingredients,
    /// Instruction sentences: keep syntax-bearing function words.
    Instructions,
}

/// Configurable preprocessing pipeline.
///
/// The default configuration matches the paper: lowercase, drop stop
/// words, lemmatize with the WordNet lemmatizer, keep punctuation only for
/// parentheses (they delimit attributes like `( thawed )`).
#[derive(Debug, Clone)]
pub struct Preprocessor {
    lemmatizer: Lemmatizer,
    /// Remove stop words entirely (`true` in the paper's pipeline).
    pub remove_stop_words: bool,
    /// Lemmatize tokens (`true` in the paper's pipeline).
    pub lemmatize: bool,
    /// Keep `(`/`)`/`,` punctuation tokens. The NER feature extractor uses
    /// them as boundary signals, so the default is `true`.
    pub keep_punct: bool,
}

impl Default for Preprocessor {
    fn default() -> Self {
        Preprocessor {
            lemmatizer: Lemmatizer::new(),
            remove_stop_words: true,
            lemmatize: true,
            keep_punct: false,
        }
    }
}

impl Preprocessor {
    /// A preprocessor that keeps punctuation tokens.
    pub fn with_punct() -> Self {
        Preprocessor {
            keep_punct: true,
            ..Preprocessor::default()
        }
    }

    /// A preprocessor that lowercases and drops stop words but leaves
    /// inflection intact (the "no lemmatizer" ablation).
    pub fn without_lemmatization() -> Self {
        Preprocessor {
            lemmatize: false,
            ..Preprocessor::default()
        }
    }

    /// Access the underlying lemmatizer.
    pub fn lemmatizer(&self) -> &Lemmatizer {
        &self.lemmatizer
    }

    /// Preprocess an ingredient phrase into normalized token strings.
    ///
    /// ```
    /// let pre = recipe_text::Preprocessor::default();
    /// assert_eq!(pre.preprocess("1/2 teaspoon of Fresh Thyme"), ["1/2", "teaspoon", "fresh", "thyme"]);
    /// ```
    pub fn preprocess(&self, input: &str) -> Vec<String> {
        self.preprocess_section(input, Section::Ingredients)
    }

    /// Preprocess with an explicit section policy.
    pub fn preprocess_section(&self, input: &str, section: Section) -> Vec<String> {
        self.preprocess_tokens(&tokenize(input), section)
    }

    /// Preprocess already-tokenized input (used when gold spans matter).
    pub fn preprocess_tokens(&self, tokens: &[Token], section: Section) -> Vec<String> {
        let mut out = Vec::with_capacity(tokens.len());
        for tok in tokens {
            match tok.kind {
                TokenKind::Punct => {
                    if self.keep_punct {
                        out.push(tok.text.clone());
                    }
                }
                TokenKind::Word => {
                    let lower = tok.text.to_lowercase();
                    if self.remove_stop_words && stopwords::is_stop_word(&lower) {
                        let keep = section == Section::Instructions
                            && stopwords::keep_in_instructions(&lower);
                        if !keep {
                            continue;
                        }
                    }
                    if self.lemmatize {
                        let class = match section {
                            Section::Ingredients => WordClass::Noun,
                            // In instructions most content words are verbs;
                            // nouns in the lexicon pass through unchanged.
                            Section::Instructions => WordClass::Noun,
                        };
                        out.push(self.lemmatizer.lemmatize(&lower, class));
                    } else {
                        out.push(lower);
                    }
                }
                _ => out.push(tok.text.to_lowercase()),
            }
        }
        out
    }

    /// Normalize a single word the same way `preprocess` would (lowercase +
    /// noun lemma), without stop-word filtering. Useful for dictionary keys.
    pub fn normalize_word(&self, word: &str) -> String {
        let lower = word.to_lowercase();
        if self.lemmatize {
            self.lemmatizer.lemmatize_noun(&lower)
        } else {
            lower
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_on_paper_example() {
        let pre = Preprocessor::default();
        assert_eq!(
            pre.preprocess("6 ounces blue cheese, at room temperature"),
            ["6", "ounce", "blue", "cheese", "room", "temperature"]
        );
    }

    #[test]
    fn plurality_and_capitalization_unify() {
        let pre = Preprocessor::default();
        assert_eq!(pre.preprocess("Tomatoes"), pre.preprocess("tomato"));
    }

    #[test]
    fn punctuation_kept_when_requested() {
        let pre = Preprocessor::with_punct();
        assert_eq!(
            pre.preprocess("1 sheet frozen puff pastry ( thawed )"),
            ["1", "sheet", "frozen", "puff", "pastry", "(", "thawed", ")"]
        );
    }

    #[test]
    fn instruction_mode_keeps_prepositions() {
        let pre = Preprocessor::default();
        let toks = pre.preprocess_section(
            "Bring the water to a boil in a large pot",
            Section::Instructions,
        );
        assert!(toks.contains(&"in".to_string()));
        assert!(toks.contains(&"the".to_string()));
        assert!(toks.contains(&"to".to_string()));
    }

    #[test]
    fn ingredient_mode_drops_stop_words() {
        let pre = Preprocessor::default();
        let toks = pre.preprocess("a pinch of the salt");
        assert_eq!(toks, ["pinch", "salt"]);
    }

    #[test]
    fn normalize_word_contract() {
        let pre = Preprocessor::default();
        assert_eq!(pre.normalize_word("Tomatoes"), "tomato");
        assert_eq!(pre.normalize_word("CUPS"), "cup");
        // Stop words pass through normalize_word: it is a key normalizer.
        assert_eq!(pre.normalize_word("the"), "the");
    }

    #[test]
    fn no_lemmatize_mode() {
        let pre = Preprocessor {
            lemmatize: false,
            ..Preprocessor::default()
        };
        assert_eq!(pre.preprocess("Tomatoes"), ["tomatoes"]);
    }

    #[test]
    fn numbers_pass_through() {
        let pre = Preprocessor::default();
        assert_eq!(
            pre.preprocess("2-3 1/2 1.5 12"),
            ["2-3", "1/2", "1.5", "12"]
        );
    }
}
