//! Precision / recall / F1 at token and entity level, plus confusion
//! matrices.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Precision/recall/F1 triple with the number of gold items (`support`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrfScores {
    /// tp / (tp + fp); 0 when the denominator is 0.
    pub precision: f64,
    /// tp / (tp + fn); 0 when the denominator is 0.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub f1: f64,
    /// Number of gold items of this class.
    pub support: usize,
}

impl PrfScores {
    /// Build from raw counts.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PrfScores {
            precision,
            recall,
            f1,
            support: tp + fn_,
        }
    }
}

/// Per-class scores plus micro and macro averages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Scores per class label (sorted by label).
    pub per_class: BTreeMap<String, PrfScores>,
    /// Micro average (global tp/fp/fn pool).
    pub micro: PrfScores,
    /// Macro average (unweighted mean over classes with support).
    pub macro_avg: PrfScores,
}

fn aggregate(counts: BTreeMap<String, (usize, usize, usize)>) -> ClassMetrics {
    let mut per_class = BTreeMap::new();
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for (label, (t, f, n)) in &counts {
        per_class.insert(label.clone(), PrfScores::from_counts(*t, *f, *n));
        tp += t;
        fp += f;
        fn_ += n;
    }
    let micro = PrfScores::from_counts(tp, fp, fn_);
    let with_support: Vec<&PrfScores> = per_class.values().filter(|s| s.support > 0).collect();
    let macro_avg = if with_support.is_empty() {
        PrfScores::from_counts(0, 0, 0)
    } else {
        let k = with_support.len() as f64;
        let p = with_support.iter().map(|s| s.precision).sum::<f64>() / k;
        let r = with_support.iter().map(|s| s.recall).sum::<f64>() / k;
        let f1 = with_support.iter().map(|s| s.f1).sum::<f64>() / k;
        PrfScores {
            precision: p,
            recall: r,
            f1,
            support: micro.support,
        }
    };
    ClassMetrics {
        per_class,
        micro,
        macro_avg,
    }
}

/// Token-level P/R/F1 per class over parallel gold/pred label sequences.
/// The `outside` label (usually `"O"`) is excluded from the classes.
///
/// # Panics
/// Panics when a gold/pred pair has different lengths.
pub fn token_prf(gold: &[Vec<String>], pred: &[Vec<String>], outside: &str) -> ClassMetrics {
    assert_eq!(gold.len(), pred.len(), "gold/pred sequence count mismatch");
    let mut counts: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    for (g_seq, p_seq) in gold.iter().zip(pred) {
        assert_eq!(g_seq.len(), p_seq.len(), "sequence length mismatch");
        for (g, p) in g_seq.iter().zip(p_seq) {
            if g == p {
                if g != outside {
                    counts.entry(g.clone()).or_default().0 += 1;
                }
            } else {
                if p != outside {
                    counts.entry(p.clone()).or_default().1 += 1;
                }
                if g != outside {
                    counts.entry(g.clone()).or_default().2 += 1;
                }
            }
        }
    }
    aggregate(counts)
}

/// An entity span: consecutive tokens sharing one non-outside label.
/// Our annotation scheme is raw per-token tags (no BIO prefixes), matching
/// the paper's Stanford NER setup, so maximal same-label runs are entities.
pub fn extract_entities(labels: &[String], outside: &str) -> Vec<(usize, usize, String)> {
    let _span = recipe_obs::span!("eval.entities");
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < labels.len() {
        if labels[i] == outside {
            i += 1;
            continue;
        }
        let start = i;
        let label = &labels[i];
        while i < labels.len() && &labels[i] == label {
            i += 1;
        }
        out.push((start, i, label.clone()));
    }
    out
}

/// Entity-level P/R/F1: an entity counts as correct only when its span and
/// label both match exactly (CoNLL convention).
pub fn entity_prf(gold: &[Vec<String>], pred: &[Vec<String>], outside: &str) -> ClassMetrics {
    assert_eq!(gold.len(), pred.len(), "gold/pred sequence count mismatch");
    let mut counts: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    for (g_seq, p_seq) in gold.iter().zip(pred) {
        assert_eq!(g_seq.len(), p_seq.len(), "sequence length mismatch");
        let g_ents: BTreeSet<_> = extract_entities(g_seq, outside).into_iter().collect();
        let p_ents: BTreeSet<_> = extract_entities(p_seq, outside).into_iter().collect();
        for e in &p_ents {
            if g_ents.contains(e) {
                counts.entry(e.2.clone()).or_default().0 += 1;
            } else {
                counts.entry(e.2.clone()).or_default().1 += 1;
            }
        }
        for e in &g_ents {
            if !p_ents.contains(e) {
                counts.entry(e.2.clone()).or_default().2 += 1;
            }
        }
    }
    aggregate(counts)
}

/// A labeled confusion matrix over token decisions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Class labels in display order.
    pub labels: Vec<String>,
    /// `counts[gold][pred]`.
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Build from parallel gold/pred sequences; the label inventory is the
    /// union of observed labels, sorted.
    pub fn from_sequences(gold: &[Vec<String>], pred: &[Vec<String>]) -> Self {
        assert_eq!(gold.len(), pred.len());
        let mut labels: BTreeSet<String> = BTreeSet::new();
        for seq in gold.iter().chain(pred) {
            labels.extend(seq.iter().cloned());
        }
        let labels: Vec<String> = labels.into_iter().collect();
        let idx = |l: &str| labels.iter().position(|x| x == l).expect("label present");
        let mut counts = vec![vec![0usize; labels.len()]; labels.len()];
        for (g_seq, p_seq) in gold.iter().zip(pred) {
            assert_eq!(g_seq.len(), p_seq.len());
            for (g, p) in g_seq.iter().zip(p_seq) {
                counts[idx(g)][idx(p)] += 1;
            }
        }
        ConfusionMatrix { labels, counts }
    }

    /// Total tokens.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (diagonal mass).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.labels.len()).map(|i| self.counts[i][i]).sum();
        diag as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(rows: &[&[&str]]) -> Vec<Vec<String>> {
        rows.iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn prf_from_counts() {
        let s = PrfScores::from_counts(8, 2, 2);
        assert!((s.precision - 0.8).abs() < 1e-12);
        assert!((s.recall - 0.8).abs() < 1e-12);
        assert!((s.f1 - 0.8).abs() < 1e-12);
        assert_eq!(s.support, 10);
        let zero = PrfScores::from_counts(0, 0, 0);
        assert_eq!(zero.f1, 0.0);
    }

    #[test]
    fn token_level_counts() {
        let gold = seqs(&[&["QUANTITY", "UNIT", "NAME"]]);
        let pred = seqs(&[&["QUANTITY", "NAME", "NAME"]]);
        let m = token_prf(&gold, &pred, "O");
        assert_eq!(m.per_class["QUANTITY"].support, 1);
        assert!((m.per_class["NAME"].precision - 0.5).abs() < 1e-12);
        assert!((m.per_class["NAME"].recall - 1.0).abs() < 1e-12);
        assert_eq!(m.per_class["UNIT"].recall, 0.0);
        // micro: tp=2 (QUANTITY, NAME), fp=1 (NAME), fn=1 (UNIT)
        assert!((m.micro.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.micro.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn outside_label_is_ignored() {
        let gold = seqs(&[&["O", "NAME", "O"]]);
        let pred = seqs(&[&["O", "NAME", "O"]]);
        let m = token_prf(&gold, &pred, "O");
        assert!(!m.per_class.contains_key("O"));
        assert!((m.micro.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entity_extraction_groups_runs() {
        let labels: Vec<String> = ["NAME", "NAME", "O", "UNIT", "NAME"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ents = extract_entities(&labels, "O");
        assert_eq!(
            ents,
            vec![
                (0, 2, "NAME".to_string()),
                (3, 4, "UNIT".to_string()),
                (4, 5, "NAME".to_string())
            ]
        );
    }

    #[test]
    fn entity_level_requires_exact_span() {
        // Gold: NAME covers tokens 1-2; pred only covers token 1.
        let gold = seqs(&[&["O", "NAME", "NAME"]]);
        let pred = seqs(&[&["O", "NAME", "O"]]);
        let m = entity_prf(&gold, &pred, "O");
        assert_eq!(m.per_class["NAME"].precision, 0.0);
        assert_eq!(m.per_class["NAME"].recall, 0.0);
        // Exact match counts.
        let m2 = entity_prf(&gold, &gold, "O");
        assert!((m2.micro.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_average_ignores_zero_support_classes() {
        let gold = seqs(&[&["NAME", "UNIT"]]);
        let pred = seqs(&[&["NAME", "SIZE"]]);
        let m = token_prf(&gold, &pred, "O");
        // SIZE has support 0 (never in gold): excluded from macro.
        assert_eq!(m.per_class["SIZE"].support, 0);
        let macro_f1 = m.macro_avg.f1;
        // NAME f1 = 1.0, UNIT f1 = 0.0 -> macro 0.5.
        assert!((macro_f1 - 0.5).abs() < 1e-12, "{macro_f1}");
    }

    #[test]
    fn confusion_matrix_accuracy() {
        let gold = seqs(&[&["A", "B", "A", "B"]]);
        let pred = seqs(&[&["A", "B", "B", "B"]]);
        let cm = ConfusionMatrix::from_sequences(&gold, &pred);
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        let a = cm.labels.iter().position(|l| l == "A").unwrap();
        let b = cm.labels.iter().position(|l| l == "B").unwrap();
        assert_eq!(cm.counts[a][b], 1);
    }

    #[test]
    fn empty_inputs() {
        let m = token_prf(&[], &[], "O");
        assert_eq!(m.micro.f1, 0.0);
        let cm = ConfusionMatrix::from_sequences(&[], &[]);
        assert_eq!(cm.accuracy(), 0.0);
        assert!(extract_entities(&[], "O").is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let gold = seqs(&[&["A", "B"]]);
        let pred = seqs(&[&["A"]]);
        token_prf(&gold, &pred, "O");
    }
}
