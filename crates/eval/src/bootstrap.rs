//! Bootstrap confidence intervals for sequence-level evaluation metrics.
//!
//! The paper reports point estimates; on a synthetic corpus we can say how
//! stable they are. Resample the evaluation set with replacement, recompute
//! the metric, and report percentile intervals.

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

/// A percentile bootstrap interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapInterval {
    /// Metric on the full evaluation set.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Number of bootstrap replicates.
    pub replicates: usize,
}

/// Percentile-bootstrap an arbitrary metric over items.
///
/// `metric` maps a set of item indices to a score; it is called once on
/// the identity sample (the point estimate) and once per replicate.
/// `level` is the two-sided confidence level (e.g. 0.95).
///
/// # Panics
/// Panics when `items == 0`, `replicates == 0`, or `level` outside (0,1).
pub fn bootstrap_metric<F: FnMut(&[usize]) -> f64>(
    items: usize,
    replicates: usize,
    level: f64,
    seed: u64,
    mut metric: F,
) -> BootstrapInterval {
    assert!(items > 0, "no items to bootstrap");
    assert!(replicates > 0, "need at least one replicate");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");

    let identity: Vec<usize> = (0..items).collect();
    let point = metric(&identity);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores = Vec::with_capacity(replicates);
    let mut sample = vec![0usize; items];
    for _ in 0..replicates {
        for s in &mut sample {
            *s = rng.random_range(0..items);
        }
        scores.push(metric(&sample));
    }
    scores.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
    let alpha = (1.0 - level) / 2.0;
    let idx = |q: f64| -> usize { ((scores.len() as f64 * q) as usize).min(scores.len() - 1) };
    BootstrapInterval {
        point,
        lo: scores[idx(alpha)],
        hi: scores[idx(1.0 - alpha)],
        replicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_metric_has_zero_width() {
        let ci = bootstrap_metric(50, 200, 0.95, 1, |_| 0.7);
        assert_eq!(ci.point, 0.7);
        assert_eq!(ci.lo, 0.7);
        assert_eq!(ci.hi, 0.7);
    }

    #[test]
    fn interval_brackets_the_point_for_mean_metric() {
        // Items 0..100 with value = index; metric = mean value.
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ci = bootstrap_metric(100, 500, 0.95, 7, |idx| {
            idx.iter().map(|&i| values[i]).sum::<f64>() / idx.len() as f64
        });
        assert!((ci.point - 49.5).abs() < 1e-9);
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        // Standard error of the mean of U(0..99) over n=100 is ~2.9; the
        // 95% interval should be roughly ±6.
        assert!(ci.hi - ci.lo > 5.0 && ci.hi - ci.lo < 20.0, "{ci:?}");
    }

    #[test]
    fn wider_level_means_wider_interval() {
        let values: Vec<f64> = (0..60).map(|i| (i % 7) as f64).collect();
        let mk = |level| {
            bootstrap_metric(60, 400, level, 3, |idx| {
                idx.iter().map(|&i| values[i]).sum::<f64>() / idx.len() as f64
            })
        };
        let narrow = mk(0.5);
        let wide = mk(0.99);
        assert!(wide.hi - wide.lo >= narrow.hi - narrow.lo);
    }

    #[test]
    fn deterministic_given_seed() {
        let f = |idx: &[usize]| idx.iter().map(|&i| (i * i) as f64).sum::<f64>();
        let a = bootstrap_metric(20, 100, 0.9, 11, f);
        let b = bootstrap_metric(20, 100, 0.9, 11, f);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "no items")]
    fn empty_items_panics() {
        bootstrap_metric(0, 10, 0.95, 0, |_| 0.0);
    }
}

/// Result of a paired bootstrap comparison of two systems on the same
/// evaluation items.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedComparison {
    /// Metric of system A on the full set.
    pub a: f64,
    /// Metric of system B on the full set.
    pub b: f64,
    /// Point estimate of A − B.
    pub delta: f64,
    /// Fraction of bootstrap replicates where A beats B (a one-sided
    /// significance proxy: ≥ 0.95 is conventionally "A significantly
    /// better").
    pub win_rate: f64,
}

/// Paired bootstrap: resample item indices once per replicate and evaluate
/// *both* systems on the identical resample, so item difficulty cancels.
///
/// `metric(system, indices)` computes the score of system 0 (A) or 1 (B)
/// on an index multiset.
///
/// # Panics
/// Panics when `items == 0` or `replicates == 0`.
pub fn paired_bootstrap<F: FnMut(usize, &[usize]) -> f64>(
    items: usize,
    replicates: usize,
    seed: u64,
    mut metric: F,
) -> PairedComparison {
    assert!(items > 0, "no items to bootstrap");
    assert!(replicates > 0, "need at least one replicate");
    let identity: Vec<usize> = (0..items).collect();
    let a = metric(0, &identity);
    let b = metric(1, &identity);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut wins = 0usize;
    let mut sample = vec![0usize; items];
    for _ in 0..replicates {
        for s in &mut sample {
            *s = rng.random_range(0..items);
        }
        if metric(0, &sample) > metric(1, &sample) {
            wins += 1;
        }
    }
    PairedComparison {
        a,
        b,
        delta: a - b,
        win_rate: wins as f64 / replicates as f64,
    }
}

#[cfg(test)]
mod paired_tests {
    use super::*;

    #[test]
    fn clearly_better_system_wins_almost_always() {
        // System 0 scores 1 on every item; system 1 scores 0 on a third.
        let scores_b: Vec<f64> = (0..90).map(|i| f64::from(i % 3 != 0)).collect();
        let cmp = paired_bootstrap(90, 300, 5, |sys, idx| {
            if sys == 0 {
                1.0
            } else {
                idx.iter().map(|&i| scores_b[i]).sum::<f64>() / idx.len() as f64
            }
        });
        assert!(cmp.delta > 0.2);
        assert!(cmp.win_rate > 0.99, "{cmp:?}");
    }

    #[test]
    fn identical_systems_tie() {
        let cmp = paired_bootstrap(50, 200, 9, |_, idx| idx.len() as f64);
        assert_eq!(cmp.delta, 0.0);
        // Ties are not wins.
        assert_eq!(cmp.win_rate, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let f =
            |sys: usize, idx: &[usize]| idx.iter().map(|&i| ((i + sys) % 7) as f64).sum::<f64>();
        assert_eq!(
            paired_bootstrap(30, 100, 3, f),
            paired_bootstrap(30, 100, 3, f)
        );
    }
}
