//! Plain-text table rendering for experiment reports.
//!
//! Every `table_*` / `figure_*` binary prints its results with this
//! renderer so EXPERIMENTS.md entries share one format.

use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new<S: AsRef<str>>(header: &[S]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.as_ref().to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; short rows are padded with empty cells.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(|s| s.as_ref().to_string()).collect();
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(|s| s.as_str()).unwrap_or("");
                write!(f, " {cell:w$} |", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with 4 decimal places (the paper's F1 precision).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["Testing Set", "AllRecipes", "FOOD.com"]);
        t.row(&["AllRecipes", "0.9682", "0.9317"]);
        t.row(&["FOOD.com", "0.8672", "0.9519"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
        assert!(s.contains("0.9682"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["x"]);
        assert!(t.to_string().lines().count() == 3);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f4(0.95191), "0.9519");
        assert_eq!(f2(6.164), "6.16");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(&["col"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }
}
