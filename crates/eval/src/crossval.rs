//! k-fold cross-validation splits (the paper validates its NER models with
//! 5-fold cross-validation, §II.F).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One fold: indices for training and held-out evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KFold {
    /// Training item indices.
    pub train: Vec<usize>,
    /// Held-out item indices.
    pub test: Vec<usize>,
}

/// Produce `k` shuffled folds over `n` items. Every item appears in exactly
/// one test fold; fold sizes differ by at most one.
///
/// # Panics
/// Panics when `k == 0` or `k > n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<KFold> {
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "k ({k}) exceeds number of items ({n})");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let test: Vec<usize> = order[start..start + size].to_vec();
        let train: Vec<usize> = order[..start]
            .iter()
            .chain(&order[start + size..])
            .copied()
            .collect();
        folds.push(KFold { train, test });
        start += size;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn folds_partition_the_data() {
        let folds = kfold_indices(23, 5, 7);
        assert_eq!(folds.len(), 5);
        let mut seen = HashSet::new();
        for f in &folds {
            for &i in &f.test {
                assert!(seen.insert(i), "index {i} in two test folds");
            }
        }
        assert_eq!(seen.len(), 23);
    }

    #[test]
    fn fold_sizes_balanced() {
        let folds = kfold_indices(23, 5, 7);
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 23);
        assert!(sizes.iter().all(|&s| s == 4 || s == 5), "{sizes:?}");
    }

    #[test]
    fn train_test_disjoint_and_complete() {
        for f in kfold_indices(10, 3, 1) {
            let train: HashSet<_> = f.train.iter().collect();
            assert!(f.test.iter().all(|i| !train.contains(i)));
            assert_eq!(f.train.len() + f.test.len(), 10);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(kfold_indices(12, 4, 9), kfold_indices(12, 4, 9));
        assert_ne!(kfold_indices(12, 4, 9), kfold_indices(12, 4, 10));
    }

    #[test]
    #[should_panic(expected = "exceeds number of items")]
    fn too_many_folds_panics() {
        kfold_indices(3, 5, 0);
    }
}
