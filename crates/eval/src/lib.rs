#![warn(missing_docs)]

//! Evaluation substrate: precision/recall/F1, confusion matrices, k-fold
//! cross-validation and plain-text table rendering.
//!
//! The paper reports entity-level F1 for the ingredient NER models (Table
//! IV, 5-fold cross-validated) and per-class precision/recall/F1 for the
//! instruction NER model (Table V). This crate provides those metrics in a
//! task-agnostic way over string label sequences.

pub mod bootstrap;
pub mod crossval;
pub mod metrics;
pub mod report;

pub use bootstrap::{bootstrap_metric, paired_bootstrap, BootstrapInterval, PairedComparison};
pub use crossval::{kfold_indices, KFold};
pub use metrics::{entity_prf, token_prf, ClassMetrics, ConfusionMatrix, PrfScores};
pub use report::TextTable;
