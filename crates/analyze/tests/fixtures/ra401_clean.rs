//! Clean twin of ra401_violation: the map is collected and sorted
//! before serialization, so the artifact bytes are order-independent.
use std::collections::HashMap;

pub fn save_phrase_counts(counts: &HashMap<String, u64>) -> String {
    let mut rows: Vec<(&String, &u64)> = counts.iter().collect();
    rows.sort();
    let mut out = String::new();
    for (phrase, n) in rows {
        out.push_str(&serde_json::to_string(&(phrase, n)).unwrap_or_default());
        out.push('\n');
    }
    out
}
