//! Seeded RA408 violations: an unbounded socket read and a blocking
//! sleep, both reachable from a serving `handle_*` entry point.

pub fn handle_extract(stream: &mut std::net::TcpStream) -> Vec<u8> {
    let mut body = Vec::new();
    stream.read_to_end(&mut body).ok();
    throttle();
    body
}

fn throttle() {
    std::thread::sleep(std::time::Duration::from_millis(2));
}
