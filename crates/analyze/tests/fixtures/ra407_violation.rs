//! Seeded RA407 violation: a load entry point reinterprets raw bytes
//! through a helper with no reachable magic/checksum/version check —
//! a truncated or corrupt file flows straight into typed weights.

pub fn load_weights(buf: &[u8]) -> Vec<f64> {
    let count = read_u32(buf, 0) as usize;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        out.push(f64::from_le_bytes(take8(buf, 4 + i * 8)));
    }
    out
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(raw)
}

fn take8(buf: &[u8], at: usize) -> [u8; 8] {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[at..at + 8]);
    raw
}
