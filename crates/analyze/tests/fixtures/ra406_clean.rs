//! Clean twin of ra406_violation: the serving path degrades to a
//! default on bad input instead of panicking, and all slice access is
//! bounds-checked.

pub fn decode(xs: &[u32], trans: &[f32]) -> f32 {
    let _span = recipe_obs::span!("fixtures.decode");
    match xs.first() {
        Some(&first) => lookup(trans, first as usize),
        None => 0.0,
    }
}

fn lookup(trans: &[f32], state: usize) -> f32 {
    trans.get(state * 2 + 1).copied().unwrap_or(0.0)
}
