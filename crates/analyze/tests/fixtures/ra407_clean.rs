//! Clean twin of ra407_violation: the same reinterpreting decode, but
//! the entry validates the container first — magic number and CRC are
//! checked before any bytes become typed values.

const MAGIC: &[u8; 8] = b"RECIPRMA";

pub fn load_weights(buf: &[u8]) -> Vec<f64> {
    check_magic_and_crc(buf);
    let count = read_u32(buf, 8) as usize;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        out.push(f64::from_le_bytes(take8(buf, 12 + i * 8)));
    }
    out
}

fn check_magic_and_crc(buf: &[u8]) {
    assert_eq!(&buf[..8], MAGIC, "bad magic");
    let stored = read_u32(buf, buf.len() - 4);
    assert_eq!(crc32(&buf[..buf.len() - 4]), stored, "checksum mismatch");
}

fn crc32(bytes: &[u8]) -> u32 {
    bytes.iter().fold(0u32, |acc, &b| {
        acc.rotate_left(5) ^ u32::from(b)
    })
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(raw)
}

fn take8(buf: &[u8], at: usize) -> [u8; 8] {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[at..at + 8]);
    raw
}
