//! Clean twin of ra404_violation: Release on the publication flag
//! (paired with Acquire loads on readers), and Relaxed kept for the
//! plain counter, where it is the right ordering.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn publish_model(ready: &AtomicBool, publishes: &AtomicU64) {
    publishes.fetch_add(1, Ordering::Relaxed);
    ready.store(true, Ordering::Release);
}
