//! RA410-clean twin: the handler's loop runs under a `recipe_obs` span
//! guard, the helper records its stage on the shard's profiler, and the
//! unattributed loop lives in a function nothing on the hot graph
//! reaches.

pub fn handle_extract(req: &[u8]) -> u64 {
    let _span = recipe_obs::span::enter("extract");
    let mut acc = 0;
    for b in req {
        acc = acc * 31 + *b as u64;
    }
    acc + decode_all(req)
}

fn decode_all(req: &[u8]) -> u64 {
    let mut n = 0;
    while n < req.len() as u64 {
        n += 1;
    }
    profiler_record(n);
    n
}

fn profiler_record(_ticks: u64) {}

fn offline_sum(xs: &[u64]) -> u64 {
    let mut acc = 0;
    for x in xs {
        acc += *x;
    }
    acc
}
