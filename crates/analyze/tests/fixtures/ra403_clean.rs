//! Clean twin of ra403_violation: the reduction is routed through the
//! runtime's ordered reduce, which folds worker results in a fixed
//! worker-index order regardless of completion timing.

pub fn train(rt: &recipe_runtime::Runtime, partials: &[f64]) -> f64 {
    rt.par_map_reduce(partials, |p| p * 0.5, 0.0, |a, b| a + b)
}
