//! Seeded RA401 violation: hash-ordered iteration feeding a serialized
//! artifact. Not compiled — parsed by the analysis engine in tests.
use std::collections::HashMap;

pub fn save_phrase_counts(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (phrase, n) in counts.iter() {
        out.push_str(&serde_json::to_string(&(phrase, n)).unwrap_or_default());
        out.push('\n');
    }
    out
}
