//! Seeded RA409 violations: a serving handler that stamps its request
//! lifecycle with raw clock reads, and a reachable helper doing the
//! same — both bypass the shard's injectable `Clock`.

pub fn handle_extract(req: &[u8]) -> u64 {
    let started = std::time::Instant::now();
    let decoded = req.len() as u64;
    decoded + wall_stamp() + started.elapsed().as_micros() as u64
}

fn wall_stamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
