//! Clean twin of ra405_violation: both functions take the locks in
//! the same (stats, cache) order, and the guard is dropped before the
//! pool dispatch runs.
use std::sync::Mutex;

pub fn reload(stats: &Mutex<u64>, cache: &Mutex<u64>) {
    let s = stats.lock().unwrap_or_else(|e| e.into_inner());
    let c = cache.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (*s, *c);
}

pub fn flush(stats: &Mutex<u64>, cache: &Mutex<u64>) {
    let s = stats.lock().unwrap_or_else(|e| e.into_inner());
    let c = cache.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (*s, *c);
}

pub fn recount(totals: &Mutex<u64>, rt: &recipe_runtime::Runtime, xs: &[u64]) {
    let guard = totals.lock().unwrap_or_else(|e| e.into_inner());
    let before = *guard;
    drop(guard);
    let bumped = rt.par_map(xs, |x| x + before);
    let _ = bumped.len();
}
