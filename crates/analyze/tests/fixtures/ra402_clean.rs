//! Clean twin of ra402_violation: the manifest token is derived from
//! the run seed, so identical runs write identical artifacts. The
//! telemetry-gated timing read is the workspace's sanctioned pattern.

pub fn generate_corpus_manifest(seed: u64) -> String {
    let token = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    record_generation(seed);
    format!("{seed}:{token:016x}")
}

fn record_generation(seed: u64) {
    if recipe_obs::enabled() {
        let _t0 = std::time::Instant::now();
        let _ = seed;
    }
}
