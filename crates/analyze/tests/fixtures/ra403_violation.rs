//! Seeded RA403 violation: hand-rolled float accumulation across
//! spawned threads — partial sums fold in completion order, so the
//! total varies run to run.

pub fn train(partials: Vec<f64>) -> f64 {
    let mut handles = Vec::new();
    for p in partials {
        handles.push(std::thread::spawn(move || p * 0.5));
    }
    let mut total = 0.0f64;
    for h in handles {
        total += h.join().unwrap_or(0.0);
    }
    total
}
