//! Seeded RA410 violations: a serving handler looping over its request
//! body with no attribution site, and a reachable helper doing the
//! same — both fold their cost into the caller in collapsed-stack
//! profiles, so a regression there reaches bench-diff unnamed.

pub fn handle_extract(req: &[u8]) -> u64 {
    let mut acc = 0;
    for b in req {
        acc = acc * 31 + *b as u64;
    }
    acc + decode_all(req)
}

fn decode_all(req: &[u8]) -> u64 {
    let mut n = 0;
    while n < req.len() as u64 {
        n += 1;
    }
    n
}
