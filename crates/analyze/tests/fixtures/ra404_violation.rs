//! Seeded RA404 violation: a Relaxed store on a publication-style
//! flag — readers that see `ready == true` are not guaranteed to see
//! the model writes that preceded it.
use std::sync::atomic::{AtomicBool, Ordering};

pub fn publish_model(ready: &AtomicBool) {
    ready.store(true, Ordering::Relaxed);
}
