//! Seeded RA405 violations: two functions acquire the same pair of
//! locks in opposite orders (deadlock-prone), and a third holds a
//! guard across a pool dispatch (serializes the workers).
use std::sync::Mutex;

pub fn reload(stats: &Mutex<u64>, cache: &Mutex<u64>) {
    let s = stats.lock().unwrap_or_else(|e| e.into_inner());
    let c = cache.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (*s, *c);
}

pub fn flush(stats: &Mutex<u64>, cache: &Mutex<u64>) {
    let c = cache.lock().unwrap_or_else(|e| e.into_inner());
    let s = stats.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (*s, *c);
}

pub fn recount(totals: &Mutex<u64>, rt: &recipe_runtime::Runtime, xs: &[u64]) {
    let guard = totals.lock().unwrap_or_else(|e| e.into_inner());
    let bumped = rt.par_map(xs, |x| x + 1);
    let _ = (*guard, bumped.len());
}
