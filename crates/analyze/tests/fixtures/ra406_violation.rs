//! Seeded RA406 violations: panics reachable from a serving entry
//! point — an unwrap on caller-controlled input, an explicit panic in
//! a callee, and unchecked arithmetic indexing.

pub fn decode(xs: &[u32], trans: &[f32]) -> f32 {
    let _span = recipe_obs::span!("fixtures.decode");
    let first = xs.first().unwrap();
    lookup(trans, *first as usize)
}

fn lookup(trans: &[f32], state: usize) -> f32 {
    if trans.is_empty() {
        panic!("empty transition table");
    }
    trans[state * 2 + 1]
}
