//! RA409-clean twin: the handler stamps its lifecycle through the
//! shard's injected `Clock` (virtual-clock-drivable in tests), and the
//! raw `Instant::now` lives in a helper nothing on the serving graph
//! reaches.

pub fn handle_extract(clock: &std::sync::Arc<dyn Clock>, req: &[u8]) -> u64 {
    let started = clock.now_ticks();
    let decoded = req.len() as u64;
    decoded + clock.now_ticks().saturating_sub(started)
}

fn offline_stamp() -> u64 {
    std::time::Instant::now().elapsed().as_micros() as u64
}
