//! RA408-clean twin: the handler bounds its socket read with
//! `Read::take`, and the unbounded slurp lives in a helper nothing on
//! the serving graph reaches.

pub fn handle_extract(stream: &mut std::net::TcpStream) -> String {
    let mut body = String::new();
    stream.take(4096).read_to_string(&mut body).ok();
    body
}

fn offline_dump(stream: &mut std::net::TcpStream) -> Vec<u8> {
    let mut body = Vec::new();
    stream.read_to_end(&mut body).ok();
    body
}
