//! Seeded RA402 violation: a wall-clock read on an artifact-producing
//! path (corpus generation), outside any telemetry gate.

pub fn generate_corpus_manifest(seed: u64) -> String {
    let stamp = std::time::SystemTime::now();
    format!("{seed}:{stamp:?}")
}
