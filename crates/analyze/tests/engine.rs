//! Golden tests for the RA4xx dataflow engine over the seeded fixture
//! corpus in `tests/fixtures/`. Each rule must fire on its violation
//! fixture at the expected line and stay silent on the clean twin.
//!
//! The fixture files are never compiled — they are source-only inputs
//! to the analyzer — so they can reference workspace APIs freely.

use recipe_analyze::baseline::{partition, Baseline};
use recipe_analyze::diag::Diagnostic;
use recipe_analyze::source::{scan_file, scan_workspace};
use recipe_analyze::{run_all, Config};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Scan one fixture file through the full single-file pipeline and
/// keep only the diagnostics for the rule under test.
fn scan_fixture(name: &str, code: &str) -> Vec<Diagnostic> {
    let path = fixtures_dir().join(name);
    let content = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    scan_file(name, &content)
        .into_iter()
        .filter(|d| d.code == code)
        .collect()
}

fn lines(diags: &[Diagnostic]) -> Vec<u32> {
    diags.iter().map(|d| d.line()).collect()
}

#[test]
fn ra401_catches_hash_iteration_feeding_artifact() {
    let hits = scan_fixture("ra401_violation.rs", "RA401");
    assert_eq!(lines(&hits), vec![7], "{hits:?}");
    assert!(hits[0].message.contains("counts"), "{hits:?}");

    let clean = scan_fixture("ra401_clean.rs", "RA401");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn ra402_catches_wall_clock_on_artifact_path() {
    let hits = scan_fixture("ra402_violation.rs", "RA402");
    assert_eq!(lines(&hits), vec![5], "{hits:?}");
    assert!(hits[0].message.contains("SystemTime::now"), "{hits:?}");

    let clean = scan_fixture("ra402_clean.rs", "RA402");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn ra403_catches_spawn_join_float_accumulation() {
    let hits = scan_fixture("ra403_violation.rs", "RA403");
    assert_eq!(lines(&hits), vec![12], "{hits:?}");
    assert!(hits[0].message.contains("accumulation"), "{hits:?}");

    let clean = scan_fixture("ra403_clean.rs", "RA403");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn ra404_catches_relaxed_publication_store() {
    let hits = scan_fixture("ra404_violation.rs", "RA404");
    assert_eq!(lines(&hits), vec![7], "{hits:?}");
    assert!(hits[0].message.contains("ready"), "{hits:?}");

    // The twin keeps a Relaxed fetch_add on a plain counter — that must
    // not fire; only the publication-flag store with Relaxed does.
    let clean = scan_fixture("ra404_clean.rs", "RA404");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn ra405_catches_lock_order_conflict_and_guard_across_dispatch() {
    let mut hits = scan_fixture("ra405_violation.rs", "RA405");
    hits.sort_by_key(|d| d.line());
    assert_eq!(lines(&hits), vec![14, 20], "{hits:?}");
    assert!(hits[0].message.contains("opposite order"), "{hits:?}");
    assert!(hits[1].message.contains("held across"), "{hits:?}");

    let clean = scan_fixture("ra405_clean.rs", "RA405");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn ra406_catches_panics_reachable_from_serving() {
    let hits = scan_fixture("ra406_violation.rs", "RA406");
    assert_eq!(lines(&hits), vec![7, 13, 15], "{hits:?}");
    assert!(hits[0].message.contains("unwrap"), "{hits:?}");
    assert!(hits[1].message.contains("panic"), "{hits:?}");
    assert!(hits[2].message.contains("arithmetic indexing"), "{hits:?}");

    let clean = scan_fixture("ra406_clean.rs", "RA406");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn ra407_catches_unchecked_byte_reinterpretation_on_load() {
    let hits = scan_fixture("ra407_violation.rs", "RA407");
    assert_eq!(lines(&hits), vec![5], "{hits:?}");
    assert!(hits[0].message.contains("load_weights"), "{hits:?}");
    assert!(hits[0].message.contains("from_le_bytes"), "{hits:?}");

    let clean = scan_fixture("ra407_clean.rs", "RA407");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn ra408_catches_unbounded_reads_and_sleeps_on_serving() {
    let mut hits = scan_fixture("ra408_violation.rs", "RA408");
    hits.sort_by_key(|d| d.line());
    assert_eq!(lines(&hits), vec![6, 12], "{hits:?}");
    assert!(hits[0].message.contains("read_to_end"), "{hits:?}");
    assert!(hits[1].message.contains("sleep"), "{hits:?}");

    let clean = scan_fixture("ra408_clean.rs", "RA408");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn ra409_catches_raw_clock_reads_on_serving() {
    let mut hits = scan_fixture("ra409_violation.rs", "RA409");
    hits.sort_by_key(|d| d.line());
    assert_eq!(lines(&hits), vec![6, 12], "{hits:?}");
    assert!(hits[0].message.contains("Instant::now"), "{hits:?}");
    assert!(hits[1].message.contains("SystemTime::now"), "{hits:?}");

    let clean = scan_fixture("ra409_clean.rs", "RA409");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn ra410_catches_unattributed_hot_loops() {
    let mut hits = scan_fixture("ra410_violation.rs", "RA410");
    hits.sort_by_key(|d| d.line());
    assert_eq!(lines(&hits), vec![8, 16], "{hits:?}");
    assert!(hits[0].message.contains("handle_extract"), "{hits:?}");
    assert!(hits[1].message.contains("decode_all"), "{hits:?}");

    let clean = scan_fixture("ra410_clean.rs", "RA410");
    assert!(clean.is_empty(), "{clean:?}");
}

fn corpus_config() -> Config {
    Config {
        source_only: true,
        source_root: Some(fixtures_dir()),
        ..Config::default()
    }
}

#[test]
fn corpus_scan_covers_every_rule_and_is_deterministic() {
    let first = run_all(&corpus_config()).expect("corpus scan");
    for code in [
        "RA401", "RA402", "RA403", "RA404", "RA405", "RA406", "RA407", "RA408", "RA409", "RA410",
    ] {
        assert!(
            first.iter().any(|d| d.code == code),
            "{code} missing from corpus scan: {first:?}"
        );
    }
    // Byte-for-byte stable across runs: same diagnostics, same order.
    let second = run_all(&corpus_config()).expect("corpus scan");
    assert_eq!(first, second);
    // Sorted by (file, line, code) and deduped.
    for w in first.windows(2) {
        let key = |d: &Diagnostic| (d.file().to_string(), d.line(), d.code);
        assert!(
            key(&w[0]) <= key(&w[1]),
            "unsorted: {:?} then {:?}",
            w[0],
            w[1]
        );
        assert!(
            (w[0].code, &w[0].location, &w[0].message)
                != (w[1].code, &w[1].location, &w[1].message),
            "duplicate: {:?}",
            w[0]
        );
    }
}

#[test]
fn baselining_the_corpus_suppresses_it_and_still_flags_new_findings() {
    let corpus = scan_workspace(&fixtures_dir());
    assert!(!corpus.is_empty());
    let baseline = Baseline::from_diagnostics(&corpus);

    // Every baselined finding is suppressed; nothing is new.
    let outcome = partition(&corpus, &baseline);
    assert!(outcome.new.is_empty(), "{:?}", outcome.new);
    assert_eq!(outcome.suppressed, corpus.len());

    // A finding introduced after the baseline was written still fails.
    let mut grown = corpus.clone();
    grown.extend(scan_file(
        "new_module.rs",
        "pub fn helper() { todo!(\"fresh violation\") }\n",
    ));
    let outcome = partition(&grown, &baseline);
    assert_eq!(outcome.new.len(), 1, "{:?}", outcome.new);
    assert_eq!(outcome.new[0].code, "RA302");
}
