#![warn(missing_docs)]

//! `recipe-analyze` — static analysis for the recipe-mining workspace.
//!
//! A rustc-style diagnostics engine with stable rule codes (`RAnnn`),
//! three severity levels, allow/deny configuration, and human + JSON
//! renderers, over four pass families:
//!
//! * **artifact lints** (`RA0xx`, [`artifact`]) — health checks over a
//!   *trained* pipeline: non-finite or degenerate weights, BIO-impossible
//!   transitions, label/parameter shape mismatches, empty dictionaries;
//! * **corpus lints** (`RA1xx`, [`corpus`]) — well-formedness of
//!   annotated data: BIO validity, Table II inventory membership, empty
//!   tokens, quantity-grammar and tokenizer round-trip failures;
//! * **invariant lints** (`RA2xx`, [`invariants`]) — the paper's
//!   cross-crate constants (36-dim tagset, k = 23, 47/10 thresholds,
//!   label inventories) checked against each other, plus the parallel
//!   determinism audit (RA207): miniature models retrained on worker
//!   threads must be byte-identical to their serial artifacts, and the
//!   compiled-model drift audit (RA208): frozen sparse-CSR decoders must
//!   reproduce the reference decode byte-for-byte;
//! * **source scans** (`RA3xx`, [`source`]) — `unwrap()`/`expect()` in
//!   non-test library code, leftover `todo!`/`dbg!`, telemetry and
//!   provenance coverage audits — all token-accurate, hosted on a real
//!   Rust lexer ([`lexer`]) and item parser ([`items`]);
//! * **dataflow lints** (`RA4xx`, [`dataflow`]) — determinism,
//!   panic-safety and concurrency discipline over an approximate
//!   workspace call graph ([`callgraph`]): hash-iteration feeding
//!   artifacts, nondeterministic sources on artifact paths, unordered
//!   float reduction, relaxed publication atomics, lock-order
//!   conflicts, and panic sources on the serving path.
//!
//! Run everything through [`run_all`], or individual passes through the
//! per-module entry points. Output is deterministic: diagnostics are
//! sorted by (file, line, code) and exact duplicates removed, and every
//! diagnostic carries a stable content fingerprint used by the
//! [`baseline`] suppression file and the SARIF renderer ([`sarif`]).
//! The `recipe_mine lint` subcommand is a thin wrapper over this crate.

pub mod artifact;
pub mod baseline;
pub mod callgraph;
pub mod corpus;
pub mod dataflow;
pub mod diag;
pub mod invariants;
pub mod items;
pub mod lexer;
pub mod render;
pub mod sarif;
pub mod source;

pub use diag::{has_errors, rule, Diagnostic, Level, LintConfig, RuleInfo, Severity, RULES};
pub use render::{render_human, render_json, summarize, Summary};

use recipe_core::pipeline::{PipelineConfig, TrainedPipeline};
use recipe_corpus::{CorpusSpec, RecipeCorpus};
use std::path::PathBuf;

/// What [`run_all`] should analyze and how to level its findings.
#[derive(Debug, Clone)]
pub struct Config {
    /// Size of the synthetic corpus to generate and lint.
    pub recipes: usize,
    /// Corpus / training seed.
    pub seed: u64,
    /// Load a trained artifact from this path instead of training one.
    pub model_path: Option<PathBuf>,
    /// Run the source scanner over this directory tree (usually the
    /// workspace root). `None` disables the `RA3xx`/`RA4xx` families.
    pub source_root: Option<PathBuf>,
    /// Run *only* the source passes (`RA3xx`/`RA4xx`), skipping corpus
    /// generation, training and the invariant audits. This is the fast
    /// CI path: a full-workspace scan stays well under the 2 s smoke
    /// budget because nothing is trained.
    pub source_only: bool,
    /// Allow/deny overrides and `--deny-warnings`.
    pub lint: LintConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            recipes: 120,
            seed: 42,
            model_path: None,
            source_root: None,
            source_only: false,
            lint: LintConfig::default(),
        }
    }
}

/// Errors from [`run_all`] setup (the lints themselves never fail).
#[derive(Debug)]
pub enum AnalyzeError {
    /// The artifact at `model_path` could not be loaded.
    ModelLoad(recipe_core::persist::PersistError),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::ModelLoad(e) => write!(f, "loading model artifact: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Run every pass: generate a corpus, obtain a trained pipeline (loaded
/// from `model_path` or trained fresh on the generated corpus), lint
/// both, check the cross-crate invariants, and (if configured) scan the
/// sources. Returns the diagnostics after allow/deny configuration.
pub fn run_all(cfg: &Config) -> Result<Vec<Diagnostic>, AnalyzeError> {
    let mut diags = Vec::new();

    if cfg.source_only {
        if let Some(root) = &cfg.source_root {
            diags.extend(source::scan_workspace(root));
        }
        let mut diags = cfg.lint.apply(diags);
        diag::dedupe_diagnostics(&mut diags);
        return Ok(diags);
    }

    // Invariants are pure; always checked.
    diags.extend(invariants::lint_invariants(&invariants::Observed::gather()));

    // RA207: retrain miniature models on 2 worker threads and compare the
    // serialized artifacts to the serial run, byte for byte.
    diags.extend(invariants::lint_parallel_determinism(
        &invariants::DeterminismAudit::recompute(2),
    ));

    // RA208: freeze miniature models into their compiled (CSR) forms and
    // compare compiled vs. reference decodes, byte for byte.
    diags.extend(invariants::lint_compiled_drift(
        &invariants::CompiledDriftAudit::recompute(),
    ));

    // Corpus lints over a freshly generated corpus.
    let generated = RecipeCorpus::generate(&CorpusSpec::scaled(cfg.recipes, cfg.seed));
    diags.extend(corpus::lint_corpus(&generated));

    // Artifact lints over a trained pipeline.
    match &cfg.model_path {
        Some(path) => {
            let pipeline = TrainedPipeline::load(path).map_err(AnalyzeError::ModelLoad)?;
            diags.extend(artifact::lint_pipeline(&pipeline));
        }
        None => {
            let mut pcfg = PipelineConfig::fast();
            pcfg.seed = cfg.seed;
            let pipeline = TrainedPipeline::train(&generated, &pcfg);
            diags.extend(artifact::lint_pipeline(&pipeline));
            // The training config is known here, so threshold consistency
            // is checkable too.
            diags.extend(artifact::lint_dictionaries(
                &pipeline.dicts,
                Some((pcfg.process_threshold, pcfg.utensil_threshold)),
            ));
        }
    }

    // Source scan, when a root is given.
    if let Some(root) = &cfg.source_root {
        diags.extend(source::scan_workspace(root));
    }

    let mut diags = cfg.lint.apply(diags);
    diag::dedupe_diagnostics(&mut diags);
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_on_healthy_workspace_has_no_errors() {
        let cfg = Config {
            recipes: 60,
            ..Config::default()
        };
        let diags = run_all(&cfg).unwrap();
        assert!(
            !has_errors(&diags),
            "healthy pipeline should produce no error-level diagnostics: {:#?}",
            diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn missing_model_path_is_reported() {
        let cfg = Config {
            model_path: Some(PathBuf::from("/nonexistent/model.json")),
            recipes: 10,
            ..Config::default()
        };
        assert!(matches!(run_all(&cfg), Err(AnalyzeError::ModelLoad(_))));
    }
}
