//! The lint baseline: a checked-in suppression file keyed by stable
//! content fingerprints, and the `--deny-new` partition over it.
//!
//! The baseline lets CI enforce "no *new* diagnostics" without first
//! driving the historical count to zero: `recipe-mine lint --deny-new`
//! fails only on findings whose fingerprint is absent from
//! `lint_baseline.json`. Fingerprints hash (rule code, file, message) —
//! not the line number — so editing code *above* a baselined finding
//! does not resurface it, while changing the finding itself (or adding
//! another like it in a new file) does.

use crate::diag::{dedupe_diagnostics, Diagnostic};
use serde_json::{json, Value};
use std::collections::BTreeSet;
use std::path::Path;

/// Schema version written to and required from `lint_baseline.json`.
pub const BASELINE_SCHEMA_VERSION: u64 = 1;

/// Default baseline path, relative to the workspace root.
pub const DEFAULT_BASELINE_PATH: &str = "lint_baseline.json";

/// One suppressed finding. `location` and `message` are carried for
/// human review of the file; only `fingerprint` is matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// 16-hex-digit content fingerprint (see [`Diagnostic::fingerprint`]).
    pub fingerprint: String,
    /// Rule code at capture time.
    pub code: String,
    /// Location at capture time (line may have drifted since).
    pub location: String,
    /// Message at capture time.
    pub message: String,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries sorted by (location, code, message), fingerprint-deduped.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Capture a baseline from the current diagnostic set.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Baseline {
        let mut diags = diags.to_vec();
        dedupe_diagnostics(&mut diags);
        let mut seen = BTreeSet::new();
        let mut entries = Vec::new();
        for d in &diags {
            let fingerprint = d.fingerprint();
            if seen.insert(fingerprint.clone()) {
                entries.push(BaselineEntry {
                    fingerprint,
                    code: d.code.to_string(),
                    location: d.location.clone(),
                    message: d.message.clone(),
                });
            }
        }
        Baseline { entries }
    }

    /// The set of suppressed fingerprints.
    pub fn fingerprints(&self) -> BTreeSet<&str> {
        self.entries
            .iter()
            .map(|e| e.fingerprint.as_str())
            .collect()
    }

    /// Serialize to the `lint_baseline.json` document.
    pub fn to_json(&self) -> Value {
        json!({
            "schema_version": BASELINE_SCHEMA_VERSION,
            "tool": "recipe-analyze",
            "entries": self.entries.iter().map(|e| json!({
                "fingerprint": e.fingerprint,
                "code": e.code,
                "location": e.location,
                "message": e.message,
            })).collect::<Vec<_>>(),
        })
    }

    /// Parse a baseline document, validating the schema version.
    pub fn from_json(v: &Value) -> Result<Baseline, String> {
        let version = v
            .get("schema_version")
            .and_then(|s| s.as_u64())
            .ok_or("baseline: missing schema_version")?;
        if version != BASELINE_SCHEMA_VERSION {
            return Err(format!(
                "baseline: schema_version {version} unsupported (expected {BASELINE_SCHEMA_VERSION})"
            ));
        }
        let entries = v
            .get("entries")
            .and_then(|e| e.as_array())
            .ok_or("baseline: missing entries array")?;
        let mut out = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            let field = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline: entry {i} missing string field `{k}`"))
            };
            out.push(BaselineEntry {
                fingerprint: field("fingerprint")?,
                code: field("code")?,
                location: field("location")?,
                message: field("message")?,
            });
        }
        Ok(Baseline { entries: out })
    }

    /// Load from disk. A missing file is an empty baseline (so
    /// `--deny-new` degrades to "deny everything new from zero").
    pub fn load(path: &Path) -> Result<Baseline, String> {
        if !path.exists() {
            return Ok(Baseline::default());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("baseline: reading {}: {e}", path.display()))?;
        let v: Value = serde_json::from_str(&text)
            .map_err(|e| format!("baseline: parsing {}: {e:?}", path.display()))?;
        Baseline::from_json(&v)
    }

    /// Write to disk as pretty JSON with a trailing newline.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let mut text = serde_json::to_string_pretty(&self.to_json())
            .map_err(|e| format!("baseline: serializing: {e:?}"))?;
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("baseline: writing {}: {e}", path.display()))
    }
}

/// The result of partitioning a diagnostic set against a baseline.
#[derive(Debug, Clone, Default)]
pub struct DenyNewOutcome {
    /// Diagnostics whose fingerprints are not in the baseline — these
    /// fail a `--deny-new` run, at any severity.
    pub new: Vec<Diagnostic>,
    /// How many diagnostics the baseline suppressed.
    pub suppressed: usize,
}

/// Split `diags` into new-vs-baselined by fingerprint.
pub fn partition(diags: &[Diagnostic], baseline: &Baseline) -> DenyNewOutcome {
    let known = baseline.fingerprints();
    let mut out = DenyNewOutcome::default();
    for d in diags {
        if known.contains(d.fingerprint().as_str()) {
            out.suppressed += 1;
        } else {
            out.new.push(d.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(
                "RA301",
                "panicking call in library code: `x.unwrap();`",
                "a.rs:10",
            ),
            Diagnostic::new(
                "RA402",
                "nondeterministic source `Instant::now` in `f`",
                "b.rs:3",
            ),
        ]
    }

    #[test]
    fn round_trips_through_json() {
        let b = Baseline::from_diagnostics(&sample());
        assert_eq!(b.entries.len(), 2);
        let parsed = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn partition_suppresses_known_and_surfaces_new() {
        let b = Baseline::from_diagnostics(&sample()[..1]);
        let out = partition(&sample(), &b);
        assert_eq!(out.suppressed, 1);
        assert_eq!(out.new.len(), 1);
        assert_eq!(out.new[0].code, "RA402");
    }

    #[test]
    fn line_drift_does_not_resurface_a_finding() {
        let b = Baseline::from_diagnostics(&sample());
        let mut drifted = sample();
        drifted[0].location = "a.rs:99".to_string();
        let out = partition(&drifted, &b);
        assert_eq!(out.suppressed, 2, "{:?}", out.new);
        assert!(out.new.is_empty());
    }

    #[test]
    fn message_change_does_resurface_a_finding() {
        let b = Baseline::from_diagnostics(&sample());
        let mut changed = sample();
        changed[0].message = "panicking call in library code: `y.unwrap();`".to_string();
        let out = partition(&changed, &b);
        assert_eq!(out.new.len(), 1);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let v = json!({"schema_version": 999, "tool": "recipe-analyze", "entries": []});
        assert!(Baseline::from_json(&v).is_err());
    }

    #[test]
    fn missing_file_is_an_empty_baseline() {
        let b = Baseline::load(Path::new("/nonexistent/lint_baseline.json")).unwrap();
        assert!(b.entries.is_empty());
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("recipe_analyze_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lint_baseline.json");
        let b = Baseline::from_diagnostics(&sample());
        b.save(&path).unwrap();
        let loaded = Baseline::load(&path).unwrap();
        assert_eq!(loaded, b);
        std::fs::remove_dir_all(&dir).ok();
    }
}
