//! The `RA4xx` dataflow lints: determinism, panic-safety and
//! concurrency-discipline checks that combine token-level pattern
//! matching with the approximate call graph.
//!
//! Every rule here is a *heuristic over tokens* — there is no type
//! inference — so each one is written to overapproximate only where the
//! cost of a false negative is a nondeterministic artifact or a panic in
//! serving, and to suppress aggressively where the workspace has a
//! sanctioned pattern (telemetry behind `recipe_obs`, ordered reduction
//! through `recipe-runtime`, counter-style relaxed atomics).
//!
//! | rule  | finds |
//! |-------|-------|
//! | RA401 | iteration over `HashMap`/`HashSet` feeding a serialized artifact |
//! | RA402 | wall-clock / RNG sources on artifact-producing paths |
//! | RA403 | unordered float reduction not routed through the runtime's ordered reduce |
//! | RA404 | `Ordering::Relaxed` stores on publication-style atomics |
//! | RA405 | inconsistent mutex acquisition order; guards held across pool dispatch |
//! | RA406 | panic sources (`unwrap`, `panic!`, arithmetic indexing) on the serving call graph |
//! | RA407 | load/parse entry points that reinterpret raw bytes without reachable validation |
//! | RA408 | unbounded reads (`read_to_end`/`read_to_string` without a limit) and blocking sleeps on the serving call graph |
//! | RA409 | raw clock reads (`Instant::now`/`SystemTime::now`) on the serving call graph bypassing the injectable `Clock` |
//! | RA410 | loops on the serving or artifact call graph with no span/profiler attribution site |

use crate::callgraph::{call_sites, macro_sites, CallGraph, Workspace};
use crate::diag::Diagnostic;
use crate::items::{match_bracket, FileItems, FnItem};
use crate::lexer::{Lexed, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Hash-container iteration methods whose visit order is nondeterministic.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Identifiers whose presence in a body marks it as a serialization
/// sink (it writes an artifact whose bytes depend on visit order).
const SINK_IDENTS: &[&str] = &[
    "serde_json",
    "to_json",
    "to_jsonl",
    "to_writer",
    "to_string_pretty",
    "serialize",
    "write_all",
    "save",
];

/// Worker-pool / thread dispatch entry points (RA405's "don't hold a
/// lock across these" set).
const DISPATCH_CALLS: &[&str] = &[
    "par_chunks_map",
    "par_map",
    "par_map_reduce",
    "par_for_each_mut",
    "par_dot",
    "spawn",
    "scope",
];

/// Receiver-name fragments that mark an atomic as *publication-style*:
/// a flag or slot other threads read to decide whether shared data is
/// visible. Counter/cursor/config atomics (`threads`, `enabled`,
/// `cursor`, …) are deliberately absent — relaxed is correct for those.
const PUBLICATION_FRAGMENTS: &[&str] = &[
    "ready",
    "init",
    "done",
    "publish",
    "current",
    "latest",
    "epoch",
    "generation",
    "model",
    "committed",
];

/// Run every RA4xx pass over the workspace.
pub fn lint_dataflow(ws: &Workspace) -> Vec<Diagnostic> {
    let g = CallGraph::build(ws);

    let serving_roots = g.select(is_serving_root);
    let artifact_roots = g.select(is_artifact_root);
    let sink_fns = g.select(|file, f| {
        !f.in_test && (is_sink_fn(f) || body_has_sink_tokens(&file.lexed, f.body.clone()))
    });

    let serving = g.reachable_from(&serving_roots);
    let artifact = g.reachable_from(&artifact_roots);
    let feeds_sink = g.can_reach(&sink_fns);

    let mut out = Vec::new();
    let mut lock_orders: Vec<LockPair> = Vec::new();

    for id in 0..g.fns.len() {
        let (file, f) = g.item(id);
        if f.in_test || f.body.is_empty() {
            continue;
        }
        ra401_hash_iteration(file, f, feeds_sink[id], &mut out);
        ra402_nondeterministic_sources(file, f, artifact[id], &mut out);
        ra403_unordered_float_reduction(file, f, feeds_sink[id] || artifact[id], &mut out);
        ra404_relaxed_publication(file, f, &mut out);
        ra405_collect_locks(file, f, &mut out, &mut lock_orders);
        if serving[id] {
            ra406_panic_sources(file, f, &mut out);
            ra408_unbounded_io(file, f, &mut out);
            ra409_raw_clock_reads(file, f, &mut out);
        }
        if serving[id] || artifact[id] {
            ra410_unattributed_hot_loop(file, f, &mut out);
        }
    }

    ra405_order_conflicts(&lock_orders, &mut out);
    ra407_unchecked_reinterpretation(&g, &mut out);
    out
}

/// Serving roots: the public inference surface plus the compiled
/// kernels, the CLI commands that answer queries, and the HTTP
/// request handlers in `recipe-serve` (`handle_*`).
fn is_serving_root(file: &FileItems, f: &FnItem) -> bool {
    if f.in_test {
        return false;
    }
    (f.is_pub && f.qual.starts_with("Inference::"))
        || f.name.starts_with("extract_")
        || f.name.starts_with("model_recipe")
        || f.name.starts_with("handle_")
        || matches!(
            f.name.as_str(),
            "model_text" | "decode" | "viterbi_into" | "tag_into" | "predict_ids_into"
        )
        || (file.file.contains("cli") && matches!(f.name.as_str(), "extract" | "mine" | "explain"))
}

/// Artifact roots: everything serving, plus training, corpus
/// generation and model persistence — any path whose output lands in a
/// file another run will compare.
fn is_artifact_root(file: &FileItems, f: &FnItem) -> bool {
    if f.in_test {
        return false;
    }
    is_serving_root(file, f)
        || f.name == "train"
        || f.qual.starts_with("TrainedPipeline::")
        || f.name.starts_with("generate")
}

/// A function is a serialization sink if its name says so or its body
/// touches a serialization identifier.
fn is_sink_fn(f: &FnItem) -> bool {
    f.name.starts_with("save") || f.name.starts_with("to_json") || f.name == "serialize"
}

fn body_has_sink_tokens(lexed: &Lexed, body: Range<usize>) -> bool {
    body.clone()
        .any(|k| lexed.kind(k) == Some(TokenKind::Ident) && SINK_IDENTS.contains(&lexed.text(k)))
        || macro_sites(lexed, body).iter().any(|m| m.name == "json")
}

/// Whether any token in `range` is a float marker: `f64`/`f32` idents
/// or a float literal (`0.0`, `1e9`, `2f64`).
fn has_float_evidence(lexed: &Lexed, range: Range<usize>) -> bool {
    range.into_iter().any(|k| match lexed.kind(k) {
        Some(TokenKind::Ident) => matches!(lexed.text(k), "f64" | "f32"),
        Some(TokenKind::NumLit) => {
            let t = lexed.text(k);
            let radix_prefixed = t.starts_with("0x")
                || t.starts_with("0X")
                || t.starts_with("0b")
                || t.starts_with("0o");
            t.contains('.')
                || t.ends_with("f64")
                || t.ends_with("f32")
                || (!radix_prefixed && (t.contains('e') || t.contains('E')))
        }
        _ => false,
    })
}

/// Names bound to `HashMap`/`HashSet` values in the signature or body:
/// `m: HashMap<…>`, `let mut m = HashMap::new()`, `m: &HashSet<…>`.
fn hash_bindings(lexed: &Lexed, f: &FnItem) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for range in [f.signature.clone(), f.body.clone()] {
        for k in range {
            if !(lexed.is_ident(k, "HashMap") || lexed.is_ident(k, "HashSet")) {
                continue;
            }
            // Walk left over `&`, `mut` and `std::collections::`-style
            // path prefixes to find what this type/constructor binds.
            let mut j = k as isize - 1;
            loop {
                if j >= 1
                    && lexed.is_punct(j as usize, ':')
                    && lexed.is_punct((j - 1) as usize, ':')
                {
                    j -= 2;
                    if j >= 0 && lexed.kind(j as usize) == Some(TokenKind::Ident) {
                        j -= 1;
                    }
                    continue;
                }
                if j >= 0 && (lexed.is_punct(j as usize, '&') || lexed.is_ident(j as usize, "mut"))
                {
                    j -= 1;
                    continue;
                }
                break;
            }
            if j < 1 {
                continue;
            }
            let j = j as usize;
            let single_colon = lexed.is_punct(j, ':') && !lexed.is_punct(j.wrapping_sub(1), ':');
            if (single_colon || lexed.is_punct(j, '='))
                && lexed.kind(j - 1) == Some(TokenKind::Ident)
            {
                out.insert(lexed.text(j - 1).to_string());
            }
        }
    }
    out
}

/// RA401: iteration over a hash-ordered container in a function that
/// can reach a serialization sink, with no visible ordering step.
fn ra401_hash_iteration(file: &FileItems, f: &FnItem, feeds_sink: bool, out: &mut Vec<Diagnostic>) {
    let lexed = &file.lexed;
    if !(feeds_sink || body_has_sink_tokens(lexed, f.body.clone())) {
        return;
    }
    let names = hash_bindings(lexed, f);
    if names.is_empty() {
        return;
    }
    for k in f.body.clone() {
        if lexed.kind(k) != Some(TokenKind::Ident) || !names.contains(lexed.text(k)) {
            continue;
        }
        let name = lexed.text(k);
        let method_iter = lexed.is_punct(k + 1, '.')
            && lexed.kind(k + 2) == Some(TokenKind::Ident)
            && HASH_ITER_METHODS.contains(&lexed.text(k + 2))
            && lexed.is_punct(k + 3, '(');
        let for_iter = {
            // `for x in name` / `for x in &name`.
            let mut p = k as isize - 1;
            while p >= 0 && lexed.is_punct(p as usize, '&') {
                p -= 1;
            }
            p >= 0 && lexed.is_ident(p as usize, "in")
        };
        if !(method_iter || for_iter) {
            continue;
        }
        // Suppress when the rest of the body visibly restores order:
        // a sort call or a BTree re-collection downstream.
        let ordered_later = (k..f.body.end).any(|j| {
            lexed.kind(j) == Some(TokenKind::Ident)
                && (lexed.text(j).starts_with("sort") || lexed.text(j).starts_with("BTree"))
        });
        if ordered_later {
            continue;
        }
        let line = lexed.line(k);
        out.push(
            Diagnostic::new(
                "RA401",
                format!(
                    "iteration over hash-ordered `{name}` in `{}` feeds a serialized artifact",
                    f.qual
                ),
                format!("{}:{line}", file.file),
            )
            .with_note(
                "hash iteration order varies between runs; collect-and-sort or use a \
                 BTreeMap/BTreeSet before serializing",
            ),
        );
    }
}

/// RA402: wall-clock and RNG reads inside artifact-producing call
/// paths, unless the function is telemetry (gated on `recipe_obs`) or
/// lives in the observability/bench crates.
fn ra402_nondeterministic_sources(
    file: &FileItems,
    f: &FnItem,
    on_artifact_path: bool,
    out: &mut Vec<Diagnostic>,
) {
    if !on_artifact_path || telemetry_exempt(file, f) {
        return;
    }
    let lexed = &file.lexed;
    for site in call_sites(lexed, f.body.clone()) {
        let source = match (site.qualifier.as_deref(), site.name.as_str()) {
            (Some(q @ ("SystemTime" | "Instant" | "Utc")), "now") => format!("{q}::now"),
            (Some("rand"), "random") => "rand::random".to_string(),
            (_, n @ ("thread_rng" | "from_entropy")) => n.to_string(),
            _ => continue,
        };
        out.push(
            Diagnostic::new(
                "RA402",
                format!(
                    "nondeterministic source `{source}` in `{}` on an artifact-producing path",
                    f.qual
                ),
                format!("{}:{}", file.file, site.line),
            )
            .with_note(
                "artifacts must be reproducible from (corpus, seed); derive randomness from \
                 the run seed and keep wall-clock reads behind recipe_obs telemetry",
            ),
        );
    }
}

/// Telemetry code is allowed to read clocks: the obs crate itself, the
/// bench harness, and any body that touches `recipe_obs` (the
/// workspace's sanctioned pattern is `if recipe_obs::enabled() { … }`).
fn telemetry_exempt(file: &FileItems, f: &FnItem) -> bool {
    file.file.contains("obs/")
        || file.file.contains("bench")
        || f.body.clone().any(|k| file.lexed.is_ident(k, "recipe_obs"))
}

/// RA403: float reductions whose result depends on summation order —
/// either folding a hash-ordered container, or accumulating across
/// hand-rolled threads instead of the runtime's ordered reduce.
fn ra403_unordered_float_reduction(
    file: &FileItems,
    f: &FnItem,
    on_artifact_path: bool,
    out: &mut Vec<Diagnostic>,
) {
    if !on_artifact_path {
        return;
    }
    let lexed = &file.lexed;
    let names = hash_bindings(lexed, f);

    // (a) `map.values().sum::<f64>()`-style reductions over hash order.
    for site in call_sites(lexed, f.body.clone()) {
        if !site.is_method || !matches!(site.name.as_str(), "sum" | "product" | "fold") {
            continue;
        }
        let stmt_start = (f.body.start..site.token)
            .rev()
            .find(|&j| lexed.is_punct(j, ';') || lexed.is_punct(j, '{'))
            .map(|j| j + 1)
            .unwrap_or(f.body.start);
        let stmt = stmt_start..site.token;
        let over_hash = stmt.clone().any(|j| {
            lexed.kind(j) == Some(TokenKind::Ident)
                && (names.contains(lexed.text(j))
                    || lexed.text(j) == "HashMap"
                    || lexed.text(j) == "HashSet")
        });
        if over_hash && has_float_evidence(lexed, stmt_start..site.token + 8) {
            out.push(
                Diagnostic::new(
                    "RA403",
                    format!(
                        "float `{}()` over hash-ordered data in `{}`",
                        site.name, f.qual
                    ),
                    format!("{}:{}", file.file, site.line),
                )
                .with_note(
                    "float addition is not associative; fix the iteration order (sort or \
                     BTree) so the reduction is reproducible",
                ),
            );
        }
    }

    // (b) hand-rolled spawn/join float accumulation. The runtime's
    // par_map_reduce folds worker results in worker-index order; ad-hoc
    // `total += handle.join()` folds in completion order.
    if telemetry_exempt(file, f) {
        return;
    }
    let sites = call_sites(lexed, f.body.clone());
    let spawns = sites.iter().any(|s| s.name == "spawn");
    let joins = sites.iter().any(|s| s.name == "join");
    let ordered = f.body.clone().any(|k| {
        lexed.kind(k) == Some(TokenKind::Ident)
            && matches!(lexed.text(k), "par_map_reduce" | "par_dot")
    });
    if spawns && joins && !ordered && has_float_evidence(lexed, f.body.clone()) {
        if let Some(plus) = (f.body.start..f.body.end.saturating_sub(1))
            .find(|&k| lexed.is_punct(k, '+') && lexed.is_punct(k + 1, '='))
        {
            out.push(
                Diagnostic::new(
                    "RA403",
                    format!(
                        "hand-rolled float accumulation across threads in `{}`",
                        f.qual
                    ),
                    format!("{}:{}", file.file, lexed.line(plus)),
                )
                .with_note(
                    "route the reduction through recipe_runtime::Runtime::par_map_reduce, \
                     which folds worker results in a fixed order",
                ),
            );
        }
    }
}

/// RA404: `store`/`swap`/`compare_exchange` with `Ordering::Relaxed` on
/// an atomic whose name says it *publishes* data to other threads.
fn ra404_relaxed_publication(file: &FileItems, f: &FnItem, out: &mut Vec<Diagnostic>) {
    let lexed = &file.lexed;
    for site in call_sites(lexed, f.body.clone()) {
        if !site.is_method
            || !matches!(
                site.name.as_str(),
                "store" | "swap" | "compare_exchange" | "compare_exchange_weak" | "fetch_update"
            )
        {
            continue;
        }
        let recv = site.token.checked_sub(2);
        let Some(recv) = recv.filter(|&r| lexed.kind(r) == Some(TokenKind::Ident)) else {
            continue;
        };
        let recv_name = lexed.text(recv);
        let lower = recv_name.to_ascii_lowercase();
        if !PUBLICATION_FRAGMENTS
            .iter()
            .any(|frag| lower.contains(frag))
        {
            continue;
        }
        let args_end = match_bracket(lexed, site.token + 1, '(', ')');
        let relaxed = (site.token + 1..args_end).any(|k| lexed.is_ident(k, "Relaxed"));
        if relaxed {
            out.push(
                Diagnostic::new(
                    "RA404",
                    format!(
                        "`Ordering::Relaxed` on publication atomic `{recv_name}.{}` in `{}`",
                        site.name, f.qual
                    ),
                    format!("{}:{}", file.file, site.line),
                )
                .with_note(
                    "a relaxed store does not order earlier writes; use Release (and Acquire \
                     on the reader) when the flag gates access to other data",
                ),
            );
        }
    }
}

/// One lock acquisition inside a function body.
struct LockAcq {
    recv: String,
    line: u32,
    token: usize,
    /// `let guard = …` binding name, when the guard outlives the
    /// statement. Temporary guards drop at the end of their statement.
    binding: Option<String>,
}

/// A (first, second) lock-acquisition order observed in one function.
struct LockPair {
    first: String,
    second: String,
    file: String,
    qual: String,
    line: u32,
}

/// RA405 per-function pass: held-across-dispatch diagnostics now,
/// acquisition orders accumulated for the global conflict check.
fn ra405_collect_locks(
    file: &FileItems,
    f: &FnItem,
    out: &mut Vec<Diagnostic>,
    orders: &mut Vec<LockPair>,
) {
    let lexed = &file.lexed;
    let mut acqs: Vec<LockAcq> = Vec::new();
    for site in call_sites(lexed, f.body.clone()) {
        if site.name != "lock" || !site.is_method {
            continue;
        }
        let Some(recv) = site
            .token
            .checked_sub(2)
            .filter(|&r| lexed.kind(r) == Some(TokenKind::Ident) && !lexed.is_ident(r, "self"))
        else {
            continue;
        };
        let stmt_start = (f.body.start..site.token)
            .rev()
            .find(|&j| lexed.is_punct(j, ';') || lexed.is_punct(j, '{') || lexed.is_punct(j, '}'))
            .map(|j| j + 1)
            .unwrap_or(f.body.start);
        let binding = if lexed.is_ident(stmt_start, "let") {
            let name_tok = if lexed.is_ident(stmt_start + 1, "mut") {
                stmt_start + 2
            } else {
                stmt_start + 1
            };
            (lexed.kind(name_tok) == Some(TokenKind::Ident))
                .then(|| lexed.text(name_tok).to_string())
        } else {
            None
        };
        acqs.push(LockAcq {
            recv: lexed.text(recv).to_string(),
            line: site.line,
            token: site.token,
            binding,
        });
    }
    if acqs.is_empty() {
        return;
    }

    let dropped_between = |binding: &str, from: usize, to: usize| {
        (from..to).any(|k| {
            lexed.is_ident(k, "drop")
                && lexed.is_punct(k + 1, '(')
                && lexed.is_ident(k + 2, binding)
        })
    };

    // Guards held across worker-pool dispatch.
    for acq in &acqs {
        let Some(binding) = &acq.binding else {
            continue;
        };
        for site in call_sites(lexed, acq.token..f.body.end) {
            if DISPATCH_CALLS.contains(&site.name.as_str())
                && !dropped_between(binding, acq.token, site.token)
            {
                out.push(
                    Diagnostic::new(
                        "RA405",
                        format!(
                            "mutex guard `{binding}` (locked line {}) held across `{}` dispatch \
                             in `{}`",
                            acq.line, site.name, f.qual
                        ),
                        format!("{}:{}", file.file, site.line),
                    )
                    .with_note(
                        "a guard held while fanning out to the pool serializes the workers \
                         (or deadlocks if they take the same lock); drop it first",
                    ),
                );
                break;
            }
        }
    }

    // Acquisition orders for the cross-function conflict check; only
    // bound guards survive past their statement.
    for i in 0..acqs.len() {
        if acqs[i].binding.is_none() {
            continue;
        }
        for j in (i + 1)..acqs.len() {
            if acqs[i].recv == acqs[j].recv {
                continue;
            }
            let b = acqs[i].binding.as_deref().unwrap_or("");
            if dropped_between(b, acqs[i].token, acqs[j].token) {
                continue;
            }
            orders.push(LockPair {
                first: acqs[i].recv.clone(),
                second: acqs[j].recv.clone(),
                file: file.file.clone(),
                qual: f.qual.clone(),
                line: acqs[j].line,
            });
        }
    }
}

/// RA405 global pass: report each unordered pair of mutexes that two
/// functions acquire in opposite orders.
fn ra405_order_conflicts(orders: &[LockPair], out: &mut Vec<Diagnostic>) {
    let mut by_dir: BTreeMap<(&str, &str), &LockPair> = BTreeMap::new();
    for p in orders {
        by_dir.entry((&p.first, &p.second)).or_insert(p);
    }
    let mut reported: BTreeSet<(&str, &str)> = BTreeSet::new();
    for (&(a, b), p) in &by_dir {
        let key = if a < b { (a, b) } else { (b, a) };
        if reported.contains(&key) {
            continue;
        }
        if let Some(q) = by_dir.get(&(b, a)) {
            reported.insert(key);
            // Deterministic site choice: the lexicographically later
            // (file, line) of the two conflicting acquisitions.
            let (site, other) = if (&p.file, p.line) >= (&q.file, q.line) {
                (p, q)
            } else {
                (q, p)
            };
            out.push(
                Diagnostic::new(
                    "RA405",
                    format!(
                        "`{}` then `{}` locked here in `{}`, but `{}` locks them in the \
                         opposite order",
                        site.first, site.second, site.qual, other.qual
                    ),
                    format!("{}:{}", site.file, site.line),
                )
                .with_note(
                    "two lock orders can deadlock under contention; pick one global order \
                     and acquire in it everywhere",
                ),
            );
        }
    }
}

/// RA406: panic sources in functions reachable from the serving roots.
fn ra406_panic_sources(file: &FileItems, f: &FnItem, out: &mut Vec<Diagnostic>) {
    let lexed = &file.lexed;
    for site in call_sites(lexed, f.body.clone()) {
        if site.is_method && matches!(site.name.as_str(), "unwrap" | "expect") {
            out.push(
                Diagnostic::new(
                    "RA406",
                    format!("`.{}()` on the serving path in `{}`", site.name, f.qual),
                    format!("{}:{}", file.file, site.line),
                )
                .with_note(
                    "a panic here takes down the request; return the error or document the \
                     invariant that rules it out",
                ),
            );
        }
    }
    for site in macro_sites(lexed, f.body.clone()) {
        if matches!(site.name.as_str(), "panic" | "unreachable") {
            out.push(
                Diagnostic::new(
                    "RA406",
                    format!(
                        "`{}!` reachable on the serving path in `{}`",
                        site.name, f.qual
                    ),
                    format!("{}:{}", file.file, site.line),
                )
                .with_note(
                    "a panic here takes down the request; return the error or document the \
                     invariant that rules it out",
                ),
            );
        }
    }
    // Arithmetic indexing (`m[r * n + c]`): one capped finding per
    // function with a site count, so kernel-heavy bodies don't flood
    // the report — the count still changes the fingerprint when sites
    // are added.
    let mut arith_sites = 0usize;
    let mut first_line = 0u32;
    let mut k = f.body.start;
    while k < f.body.end {
        let indexish = lexed.is_punct(k, '[')
            && k > 0
            && (lexed.kind(k - 1) == Some(TokenKind::Ident)
                || lexed.is_punct(k - 1, ')')
                || lexed.is_punct(k - 1, ']'));
        if indexish {
            let end = match_bracket(lexed, k, '[', ']');
            let arith = (k + 1..end).any(|j| {
                lexed.is_punct(j, '+') || lexed.is_punct(j, '-') || lexed.is_punct(j, '*')
            });
            if arith {
                arith_sites += 1;
                if first_line == 0 {
                    first_line = lexed.line(k);
                }
            }
            k = if end > k { end + 1 } else { k + 1 };
            continue;
        }
        k += 1;
    }
    if arith_sites > 0 {
        out.push(
            Diagnostic::new(
                "RA406",
                format!(
                    "arithmetic indexing ({arith_sites} site{}) on the serving path in `{}`",
                    if arith_sites == 1 { "" } else { "s" },
                    f.qual
                ),
                format!("{}:{first_line}", file.file),
            )
            .with_note(
                "computed indices can leave bounds and panic; prefer get()/chunks() or \
                 assert the bound once at entry",
            ),
        );
    }
}

/// RA408: unbounded reads and blocking sleeps on serving-reachable
/// functions.
///
/// An HTTP handler that calls `read_to_end`/`read_to_string` on a
/// socket lets one slow or malicious client allocate without bound
/// and pin a shard for the stream timeout; a `thread::sleep` on the
/// same path stalls every request batched behind it. Both are flagged
/// only where the serving call graph can reach them. The read check
/// is suppressed when the body mentions `take` — `reader.take(limit)`
/// is the sanctioned way to bound a read — and skips
/// `fs::read_to_string`-style qualified calls, which read local files
/// the operator controls, not peer-controlled streams.
fn ra408_unbounded_io(file: &FileItems, f: &FnItem, out: &mut Vec<Diagnostic>) {
    let lexed = &file.lexed;
    let body_has_take = f
        .body
        .clone()
        .any(|k| lexed.kind(k) == Some(TokenKind::Ident) && lexed.text(k) == "take");
    for site in call_sites(lexed, f.body.clone()) {
        let unbounded_read = matches!(site.name.as_str(), "read_to_end" | "read_to_string")
            && (site.is_method || site.qualifier.as_deref() == Some("Read"))
            && !body_has_take;
        if unbounded_read {
            out.push(
                Diagnostic::new(
                    "RA408",
                    format!(
                        "unbounded `{}` on the serving path in `{}`",
                        site.name, f.qual
                    ),
                    format!("{}:{}", file.file, site.line),
                )
                .with_note(
                    "a peer-fed reader can grow without limit; wrap it in `Read::take(max)` \
                     or read a length-checked body instead",
                ),
            );
        }
        if matches!(site.name.as_str(), "sleep" | "sleep_ms") {
            out.push(
                Diagnostic::new(
                    "RA408",
                    format!(
                        "blocking `{}` on the serving path in `{}`",
                        site.name, f.qual
                    ),
                    format!("{}:{}", file.file, site.line),
                )
                .with_note(
                    "a sleep here stalls the whole shard and every batched request behind \
                     this one; use socket timeouts or the queue's deadline wait instead",
                ),
            );
        }
    }
}

/// RA409: raw clock reads on serving-reachable functions.
///
/// The serving layer's windowed metrics, SLO burn rates and drift
/// windows all rotate through one injected `Clock`, which is what lets
/// tests drive bucket expiry deterministically with a virtual clock. A
/// raw `Instant::now()`/`SystemTime::now()` on the same path is a
/// second time source the virtual clock cannot move, so the behavior
/// it feeds (deadlines, stamps, expiry) silently diverges from the
/// windows under test. The obs crate (which *implements* the clock
/// abstraction over `Instant`) and the bench harness are exempt.
fn ra409_raw_clock_reads(file: &FileItems, f: &FnItem, out: &mut Vec<Diagnostic>) {
    if file.file.contains("obs/") || file.file.contains("bench") {
        return;
    }
    let lexed = &file.lexed;
    for site in call_sites(lexed, f.body.clone()) {
        let source = match (site.qualifier.as_deref(), site.name.as_str()) {
            (Some(q @ ("Instant" | "SystemTime")), "now") => format!("{q}::now"),
            _ => continue,
        };
        out.push(
            Diagnostic::new(
                "RA409",
                format!(
                    "raw `{source}` on the serving path in `{}` bypasses the injectable Clock",
                    f.qual
                ),
                format!("{}:{}", file.file, site.line),
            )
            .with_note(
                "windowed metrics, SLO burn rates and drift windows rotate through the \
                 injected Clock; thread the shard's Arc<dyn Clock> (clock.now_ticks()) here \
                 so virtual-clock tests can drive this path too",
            ),
        );
    }
}

/// RA410: loops on the hot graph with no attribution site.
///
/// The continuous profiler can only attribute cost to stages that
/// announce themselves — a `span!` guard, a `Profiler::record` call, or
/// anything else routed through `recipe_obs`. A loop on the serving or
/// artifact call graph whose enclosing function carries none of that
/// evidence is a cost sink the collapsed-stack profile folds into its
/// parent: a regression there shows up in `bench-diff` percentiles but
/// no stage path names it. One finding per function, anchored at the
/// first loop keyword; the obs crate (which implements the profiler)
/// and the bench harness are exempt.
fn ra410_unattributed_hot_loop(file: &FileItems, f: &FnItem, out: &mut Vec<Diagnostic>) {
    if file.file.contains("obs/") || file.file.contains("bench") {
        return;
    }
    let lexed = &file.lexed;
    let mut first_loop: Option<usize> = None;
    let mut attributed = false;
    for k in f.body.clone() {
        if lexed.kind(k) != Some(TokenKind::Ident) {
            continue;
        }
        let text = lexed.text(k);
        if first_loop.is_none() && matches!(text, "for" | "while" | "loop") {
            first_loop = Some(k);
        }
        // Attribution evidence: span guards, instanced profilers or
        // anything qualified through the obs crate. Case-insensitive
        // fragment matching keeps wrappers (`span_guard`,
        // `profiled_extract`) and types (`Profiler`) counted.
        let lower = text.to_ascii_lowercase();
        if lower.contains("span") || lower.contains("profil") || text == "recipe_obs" {
            attributed = true;
        }
    }
    let Some(at) = first_loop else { return };
    if attributed {
        return;
    }
    out.push(
        Diagnostic::new(
            "RA410",
            format!(
                "unattributed hot loop in `{}` on the serving/artifact graph",
                f.qual
            ),
            format!("{}:{}", file.file, lexed.line(at)),
        )
        .with_note(
            "the profiler folds this loop's cost into its caller, so a regression here \
             reaches bench-diff as an unnamed percentile shift; wrap the stage in a \
             `recipe_obs` span (or record it on the shard's Profiler) so collapsed-stack \
             profiles and stage diffs can attribute it",
        ),
    );
}

/// Byte-reinterpretation calls: each one turns raw bytes into typed
/// values, so its result is only as trustworthy as the bytes.
const REINTERP_CALLS: &[&str] = &[
    "from_le_bytes",
    "from_be_bytes",
    "from_ne_bytes",
    "transmute",
    "from_raw_parts",
    "align_to",
];

/// Identifier fragments that count as validation evidence on a load
/// path: a magic check, a checksum, a schema-version gate, or an
/// explicit validate/verify call anywhere in the entry's reachable set.
const VALIDATION_FRAGMENTS: &[&str] = &[
    "magic",
    "crc",
    "checksum",
    "schema_version",
    "validate",
    "verify",
];

/// RA407: a deserialization entry point (`load*`/`parse*`) whose
/// forward-reachable call graph reinterprets raw bytes
/// (`from_le_bytes`, `transmute`, …) while neither the entry nor
/// anything it reaches shows validation evidence (magic, checksum,
/// schema version, validate/verify). Flagging the *entry* rather than
/// each reinterpretation site keeps validated decoders (where one
/// header check covers thousands of reads) clean without per-site
/// suppressions.
fn ra407_unchecked_reinterpretation(g: &CallGraph<'_>, out: &mut Vec<Diagnostic>) {
    for id in 0..g.fns.len() {
        let (file, f) = g.item(id);
        if f.in_test
            || f.body.is_empty()
            || !(f.name.starts_with("load") || f.name.starts_with("parse"))
        {
            continue;
        }
        let reach = g.reachable_from(&[id]);
        let mut reinterp: Option<String> = None;
        let mut evidence = false;
        for rid in 0..g.fns.len() {
            if !reach[rid] {
                continue;
            }
            let (rfile, rf) = g.item(rid);
            for k in rf.body.clone() {
                if rfile.lexed.kind(k) != Some(TokenKind::Ident) {
                    continue;
                }
                let text = rfile.lexed.text(k);
                if REINTERP_CALLS.contains(&text) && reinterp.is_none() {
                    reinterp = Some(text.to_string());
                }
                let lower = text.to_ascii_lowercase();
                if VALIDATION_FRAGMENTS.iter().any(|frag| lower.contains(frag)) {
                    evidence = true;
                }
            }
        }
        if let (Some(call), false) = (reinterp, evidence) {
            out.push(
                Diagnostic::new(
                    "RA407",
                    format!(
                        "`{}` reinterprets raw bytes (`{call}`) with no reachable validation",
                        f.qual
                    ),
                    format!("{}:{}", file.file, file.lexed.line(f.signature.start)),
                )
                .with_note(
                    "corrupt or truncated input flows straight into typed values; check a \
                     magic number, schema version or checksum before decoding (any reachable \
                     magic/crc/checksum/schema_version/validate/verify identifier counts)",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let mut ws = Workspace::default();
        ws.files.push(parse_file("m.rs", src));
        lint_dataflow(&ws)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn ra401_fires_on_hash_iteration_into_serialization() {
        let src = "\
use std::collections::HashMap;
pub fn save_counts(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts {
        out.push_str(&serde_json::to_string(&(k, v)).unwrap_or_default());
    }
    out
}
";
        let diags = lint(src);
        assert!(codes(&diags).contains(&"RA401"), "{diags:?}");
        assert_eq!(
            diags.iter().find(|d| d.code == "RA401").unwrap().location,
            "m.rs:4"
        );
    }

    #[test]
    fn ra401_respects_sorting_and_btree() {
        let sorted = "\
use std::collections::HashMap;
pub fn save_counts(counts: &HashMap<String, u64>) -> String {
    let mut rows: Vec<_> = counts.iter().collect();
    rows.sort();
    serde_json::to_string(&rows).unwrap_or_default()
}
";
        let diags = lint(sorted);
        assert!(!codes(&diags).contains(&"RA401"), "{diags:?}");
    }

    #[test]
    fn ra402_fires_only_on_artifact_paths_and_skips_telemetry() {
        let src = "\
pub fn extract_summary() -> u64 { stamp() + telemetry_stamp() }
fn stamp() -> u64 {
    SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0)
}
fn unrelated() -> u64 {
    SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0)
}
fn telemetry_stamp() -> u64 {
    if recipe_obs::enabled() { SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0) } else { 0 }
}
";
        let diags = lint(src);
        let ra402: Vec<_> = diags.iter().filter(|d| d.code == "RA402").collect();
        assert_eq!(ra402.len(), 1, "{diags:?}");
        assert_eq!(ra402[0].location, "m.rs:3");
        assert!(ra402[0].message.contains("stamp"), "{diags:?}");
    }

    #[test]
    fn ra403_fires_on_spawn_join_accumulation() {
        let src = "\
pub fn train() -> f64 {
    let mut handles = Vec::new();
    for c in 0..4 {
        handles.push(std::thread::spawn(move || c as f64 * 0.5));
    }
    let mut total = 0.0f64;
    for h in handles {
        total += h.join().unwrap_or(0.0);
    }
    total
}
";
        let diags = lint(src);
        assert!(codes(&diags).contains(&"RA403"), "{diags:?}");
    }

    #[test]
    fn ra403_quiet_when_routed_through_ordered_reduce() {
        let src = "\
pub fn train(rt: &Runtime, xs: &[f64]) -> f64 {
    rt.par_map_reduce(xs, |x| x * 0.5, 0.0, |a, b| a + b)
}
";
        let diags = lint(src);
        assert!(!codes(&diags).contains(&"RA403"), "{diags:?}");
    }

    #[test]
    fn ra404_fires_on_relaxed_publication_store_only() {
        let src = "\
fn publish(ready: &AtomicBool, threads: &AtomicUsize) {
    ready.store(true, Ordering::Relaxed);
    threads.store(4, Ordering::Relaxed);
    ready.store(true, Ordering::Release);
}
";
        let diags = lint(src);
        let ra404: Vec<_> = diags.iter().filter(|d| d.code == "RA404").collect();
        assert_eq!(ra404.len(), 1, "{diags:?}");
        assert_eq!(ra404[0].location, "m.rs:2");
    }

    #[test]
    fn ra405_fires_on_opposite_lock_orders() {
        let src = "\
fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
}
fn ba(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = b.lock();
    let ga = a.lock();
    drop(ga);
    drop(gb);
}
";
        let diags = lint(src);
        let ra405: Vec<_> = diags.iter().filter(|d| d.code == "RA405").collect();
        assert_eq!(ra405.len(), 1, "{diags:?}");
        assert!(ra405[0].message.contains("opposite order"), "{diags:?}");
    }

    #[test]
    fn ra405_fires_on_lock_across_dispatch_and_respects_drop() {
        let held = "\
fn f(state: &Mutex<u32>, rt: &Runtime, xs: &[u32]) {
    let g = state.lock();
    rt.par_map(xs, |x| x + 1);
}
";
        let diags = lint(held);
        assert!(codes(&diags).contains(&"RA405"), "{diags:?}");

        let dropped = "\
fn f(state: &Mutex<u32>, rt: &Runtime, xs: &[u32]) {
    let g = state.lock();
    drop(g);
    rt.par_map(xs, |x| x + 1);
}
";
        let diags = lint(dropped);
        assert!(!codes(&diags).contains(&"RA405"), "{diags:?}");
    }

    #[test]
    fn ra406_reports_panic_sources_only_on_serving_paths() {
        let src = "\
pub fn decode(xs: &[u32], table: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    helper(*first, table)
}
fn helper(x: u32, table: &[u32]) -> u32 {
    table[x as usize * 2 + 1]
}
fn offline(xs: &[u32]) -> u32 {
    xs.first().unwrap_or(&0) + xs[0]
}
";
        let diags = lint(src);
        let ra406: Vec<_> = diags.iter().filter(|d| d.code == "RA406").collect();
        // decode's unwrap + helper's arithmetic index; `offline` is not
        // serving-reachable and its plain `xs[0]` has no arithmetic.
        assert_eq!(ra406.len(), 2, "{diags:?}");
        assert!(
            ra406.iter().any(|d| d.message.contains("unwrap")),
            "{diags:?}"
        );
        assert!(
            ra406
                .iter()
                .any(|d| d.message.contains("arithmetic indexing")),
            "{diags:?}"
        );
    }

    #[test]
    fn ra407_fires_on_unchecked_load_entry() {
        let src = "\
pub fn load_header(buf: &[u8]) -> u32 {
    read_u32(buf, 0)
}
fn read_u32(buf: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(raw)
}
";
        let diags = lint(src);
        let ra407: Vec<_> = diags.iter().filter(|d| d.code == "RA407").collect();
        assert_eq!(ra407.len(), 1, "{diags:?}");
        assert_eq!(ra407[0].location, "m.rs:1");
        assert!(ra407[0].message.contains("load_header"), "{diags:?}");
        assert!(ra407[0].message.contains("from_le_bytes"), "{diags:?}");
    }

    #[test]
    fn ra407_quiet_with_reachable_validation_evidence() {
        // The entry itself has no check, but a reachable callee touches
        // the magic constant and a checksum — that is the sanctioned
        // "validate once at the container boundary" shape.
        let src = "\
pub fn load_header(buf: &[u8]) -> u32 {
    check_container(buf);
    read_u32(buf, 0)
}
fn check_container(buf: &[u8]) {
    assert_eq!(&buf[..8], MAGIC);
    assert_eq!(crc32(&buf[8..]), read_u32(buf, 4));
}
fn read_u32(buf: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(raw)
}
";
        let diags = lint(src);
        assert!(!codes(&diags).contains(&"RA407"), "{diags:?}");
    }

    #[test]
    fn ra407_ignores_non_load_entries_and_plain_parsers() {
        // A helper that is not a load/parse entry point never fires,
        // and a parse that never reinterprets bytes never fires.
        let src = "\
pub fn decode_row(buf: &[u8]) -> u32 {
    u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]])
}
pub fn parse_name(s: &str) -> String {
    s.trim().to_string()
}
";
        let diags = lint(src);
        assert!(!codes(&diags).contains(&"RA407"), "{diags:?}");
    }

    #[test]
    fn ra408_fires_on_unbounded_read_in_handler() {
        let src = "\
pub fn handle_extract(stream: &mut TcpStream) -> Vec<u8> {
    let mut body = Vec::new();
    stream.read_to_end(&mut body).ok();
    body
}
";
        let diags = lint(src);
        let ra408: Vec<_> = diags.iter().filter(|d| d.code == "RA408").collect();
        assert_eq!(ra408.len(), 1, "{diags:?}");
        assert_eq!(ra408[0].location, "m.rs:3");
        assert!(ra408[0].message.contains("read_to_end"), "{diags:?}");
    }

    #[test]
    fn ra408_quiet_with_take_bound_and_off_serving_path() {
        // `take(limit)` bounds the read; a fn nothing serving reaches
        // never fires at all.
        let src = "\
pub fn handle_extract(stream: &mut TcpStream) -> String {
    let mut body = String::new();
    stream.take(1024).read_to_string(&mut body).ok();
    body
}
fn offline_slurp(stream: &mut TcpStream) -> Vec<u8> {
    let mut body = Vec::new();
    stream.read_to_end(&mut body).ok();
    body
}
";
        let diags = lint(src);
        assert!(!codes(&diags).contains(&"RA408"), "{diags:?}");
    }

    #[test]
    fn ra408_fires_on_sleep_but_skips_fs_reads() {
        // A blocking sleep on the handler path fires; a qualified
        // `fs::read_to_string` reads an operator-controlled file, not a
        // peer-fed stream, and stays quiet.
        let src = "\
pub fn handle_reload(path: &str) -> String {
    std::thread::sleep(std::time::Duration::from_millis(5));
    std::fs::read_to_string(path).unwrap_or_default()
}
";
        let diags = lint(src);
        let ra408: Vec<_> = diags.iter().filter(|d| d.code == "RA408").collect();
        assert_eq!(ra408.len(), 1, "{diags:?}");
        assert_eq!(ra408[0].location, "m.rs:2");
        assert!(ra408[0].message.contains("sleep"), "{diags:?}");
    }

    #[test]
    fn ra409_fires_on_raw_clock_reads_in_serving_reachable_fns() {
        let src = "\
pub fn handle_extract(req: &[u8]) -> u64 {
    let started = Instant::now();
    stamp() + started.elapsed().as_secs() + req.len() as u64
}
fn stamp() -> u64 {
    SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0)
}
fn offline() -> u64 {
    Instant::now().elapsed().as_secs()
}
";
        let diags = lint(src);
        let ra409: Vec<_> = diags.iter().filter(|d| d.code == "RA409").collect();
        // The handler's own read plus the reachable helper's; `offline`
        // is not on the serving call graph.
        assert_eq!(ra409.len(), 2, "{diags:?}");
        assert_eq!(ra409[0].location, "m.rs:2");
        assert!(ra409[0].message.contains("Instant::now"), "{diags:?}");
        assert_eq!(ra409[1].location, "m.rs:6");
        assert!(ra409[1].message.contains("SystemTime::now"), "{diags:?}");
    }

    #[test]
    fn ra409_quiet_through_injected_clock_and_in_obs_files() {
        let clock_routed = "\
pub fn handle_extract(clock: &Arc<dyn Clock>, req: &[u8]) -> u64 {
    let started = clock.now_ticks();
    clock.now_ticks() - started + req.len() as u64
}
";
        let diags = lint(clock_routed);
        assert!(!codes(&diags).contains(&"RA409"), "{diags:?}");

        // The obs crate implements the Clock abstraction over Instant,
        // so its own files are exempt.
        let mut ws = Workspace::default();
        ws.files.push(parse_file(
            "crates/obs/src/window.rs",
            "pub fn handle_ticks() -> u64 { Instant::now().elapsed().as_micros() as u64 }\n",
        ));
        let diags = lint_dataflow(&ws);
        assert!(!codes(&diags).contains(&"RA409"), "{diags:?}");
    }

    #[test]
    fn ra410_fires_on_unattributed_loops_in_hot_fns() {
        let src = "\
pub fn handle_extract(req: &[u8]) -> u64 {
    let mut acc = 0;
    for b in req {
        acc += *b as u64;
    }
    acc + helper(req)
}
fn helper(req: &[u8]) -> u64 {
    let mut n = 0;
    while n < req.len() as u64 {
        n += 1;
    }
    n
}
fn offline(req: &[u8]) -> u64 {
    let mut acc = 0;
    for b in req {
        acc += *b as u64;
    }
    acc
}
";
        let diags = lint(src);
        let ra410: Vec<_> = diags.iter().filter(|d| d.code == "RA410").collect();
        // One finding per hot function, at the first loop keyword;
        // `offline` is on neither the serving nor the artifact graph.
        assert_eq!(ra410.len(), 2, "{diags:?}");
        assert_eq!(ra410[0].location, "m.rs:3");
        assert!(ra410[0].message.contains("handle_extract"), "{diags:?}");
        assert_eq!(ra410[1].location, "m.rs:10");
        assert!(ra410[1].message.contains("helper"), "{diags:?}");
    }

    #[test]
    fn ra410_quiet_with_span_evidence_and_in_obs_files() {
        let spanned = "\
pub fn handle_extract(req: &[u8]) -> u64 {
    let _span = recipe_obs::span::enter(\"extract\");
    let mut acc = 0;
    for b in req {
        acc += *b as u64;
    }
    acc
}
";
        let diags = lint(spanned);
        assert!(!codes(&diags).contains(&"RA410"), "{diags:?}");

        let profiled = "\
pub fn handle_extract(profiler: &Profiler, req: &[u8]) -> u64 {
    let mut acc = 0;
    for b in req {
        acc += *b as u64;
    }
    profiler.record(&[\"serve\", \"extract\"], acc);
    acc
}
";
        let diags = lint(profiled);
        assert!(!codes(&diags).contains(&"RA410"), "{diags:?}");

        let loopless = "\
pub fn handle_extract(req: &[u8]) -> u64 {
    req.len() as u64
}
";
        let diags = lint(loopless);
        assert!(!codes(&diags).contains(&"RA410"), "{diags:?}");

        // The obs crate implements the profiler itself: exempt.
        let mut ws = Workspace::default();
        ws.files.push(parse_file(
            "crates/obs/src/profile.rs",
            "pub fn handle_cells(xs: &[u64]) -> u64 {\n    \
                 let mut acc = 0;\n    \
                 for x in xs { acc += *x; }\n    \
                 acc\n\
             }\n",
        ));
        let diags = lint_dataflow(&ws);
        assert!(!codes(&diags).contains(&"RA410"), "{diags:?}");
    }

    #[test]
    fn hash_bindings_sees_decls_params_and_constructors() {
        let src = "\
fn f(m: &HashMap<u32, u32>) {
    let mut s = HashSet::new();
    let t: std::collections::HashMap<u32, u32> = Default::default();
    s.insert(1);
    t.len();
    m.len();
}
";
        let file = parse_file("m.rs", src);
        let names = hash_bindings(&file.lexed, &file.fns[0]);
        let names: Vec<_> = names.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["m", "s", "t"]);
    }
}
