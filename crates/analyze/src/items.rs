//! A lightweight item parser over the token stream: functions (with
//! visibility, impl context, body extent and test-ness), `impl` blocks,
//! and `use` edges. This is not a Rust parser — it recovers exactly the
//! structure the lints need: *which function body am I in, what is it
//! called, is it test code, and what does it call?*

use crate::lexer::{lex, Lexed, TokenKind};
use std::ops::Range;

/// One `fn` item (free function, inherent or trait method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name.
    pub name: String,
    /// `Type::name` inside an `impl Type` block, else the bare name.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared with a `pub` modifier.
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` region or annotated `#[test]`.
    pub in_test: bool,
    /// Token range of the signature (from `fn` to the body `{` or `;`).
    pub signature: Range<usize>,
    /// Token range of the body including both braces; empty for
    /// bodyless trait signatures.
    pub body: Range<usize>,
}

/// One parsed file: tokens plus the items found in them.
#[derive(Debug, Clone)]
pub struct FileItems {
    /// Path as reported in diagnostics (workspace-relative).
    pub file: String,
    /// The token stream the ranges index into.
    pub lexed: Lexed,
    /// Every `fn` in the file, in source order.
    pub fns: Vec<FnItem>,
    /// Textual `use` paths (`recipe_obs::span`, `std::collections::HashMap`).
    pub uses: Vec<String>,
}

impl FileItems {
    /// The innermost function whose body contains token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&i))
            .min_by_key(|f| f.body.len())
    }
}

/// Parse `content` (at diagnostics path `file`) into items.
pub fn parse_file(file: &str, content: &str) -> FileItems {
    let lexed = lex(content);
    let mut fns = Vec::new();
    let mut uses = Vec::new();

    let n = lexed.tokens.len();
    // Active `#[cfg(test)]` / `#[test]` regions, as end-token indices.
    let mut test_regions: Vec<usize> = Vec::new();
    // Attribute seen, waiting for its item's `{` (or a `;` to cancel).
    let mut pending_test = false;
    // Active `impl Type` blocks: (type name, end-token index).
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    // Start of the current item's modifier run (`pub`, `const`, …).
    let mut item_start = 0usize;

    let mut i = 0usize;
    while i < n {
        impl_stack.retain(|(_, end)| i <= *end);
        test_regions.retain(|end| i <= *end);

        // Attributes: `#[...]`, possibly marking test code.
        if lexed.is_punct(i, '#') && lexed.is_punct(i + 1, '[') {
            let end = match_bracket(&lexed, i + 1, '[', ']');
            let is_cfg_test =
                lexed.is_ident(i + 2, "cfg") && (i + 3..end).any(|k| lexed.is_ident(k, "test"));
            let is_test_attr = lexed.is_ident(i + 2, "test") && end == i + 3;
            if is_cfg_test || is_test_attr {
                pending_test = true;
            }
            i = end + 1;
            item_start = i;
            continue;
        }

        if pending_test {
            if lexed.is_punct(i, '{') {
                test_regions.push(match_bracket(&lexed, i, '{', '}'));
                pending_test = false;
            } else if lexed.is_punct(i, ';') {
                // The attribute annotated a braceless item.
                pending_test = false;
            }
        }

        if lexed.is_ident(i, "use") {
            let mut j = i + 1;
            let mut path = String::new();
            while j < n && !lexed.is_punct(j, ';') {
                path.push_str(lexed.text(j));
                j += 1;
            }
            uses.push(path);
            // Any pending attribute annotated this (braceless) item.
            pending_test = false;
            i = j + 1;
            item_start = i;
            continue;
        }

        if lexed.is_ident(i, "impl") {
            // Find the block `{`, skipping the generic intro and any
            // parenthesised/bracketed stretches of the type.
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut ty: Option<String> = None;
            while j < n && !(angle <= 0 && lexed.is_punct(j, '{')) && !lexed.is_punct(j, ';') {
                if lexed.is_punct(j, '<') {
                    angle += 1;
                } else if lexed.is_punct(j, '>') {
                    angle -= 1;
                } else if angle <= 0 && lexed.is_ident(j, "for") {
                    // `impl Trait for Type`: the implementing type wins.
                    ty = None;
                } else if angle <= 0
                    && lexed.kind(j) == Some(TokenKind::Ident)
                    && !lexed.is_ident(j, "dyn")
                    && (ty.is_none() || lexed.is_punct(j.wrapping_sub(1), ':'))
                {
                    // First type-position ident; a `::` path keeps
                    // updating so the last segment is recorded.
                    ty = Some(lexed.text(j).to_string());
                }
                j += 1;
            }
            if j < n && lexed.is_punct(j, '{') {
                let end = match_bracket(&lexed, j, '{', '}');
                impl_stack.push((ty.unwrap_or_default(), end));
                if pending_test {
                    test_regions.push(end);
                    pending_test = false;
                }
                i = j + 1;
                item_start = i;
                continue;
            }
            i = j + 1;
            continue;
        }

        if lexed.is_ident(i, "fn") && lexed.kind(i + 1) == Some(TokenKind::Ident) {
            let name = lexed.text(i + 1).to_string();
            // Signature runs to the first `{` or `;` outside (), [] and <>.
            let mut j = i + 2;
            let (mut paren, mut angle) = (0i32, 0i32);
            while j < n {
                if lexed.is_punct(j, '(') || lexed.is_punct(j, '[') {
                    paren += 1;
                } else if lexed.is_punct(j, ')') || lexed.is_punct(j, ']') {
                    paren -= 1;
                } else if lexed.is_punct(j, '<') {
                    angle += 1;
                } else if lexed.is_punct(j, '>') {
                    angle = (angle - 1).max(0);
                } else if paren <= 0 && (lexed.is_punct(j, '{') || lexed.is_punct(j, ';')) {
                    break;
                }
                j += 1;
            }
            let _ = angle;
            let in_test = !test_regions.is_empty() || pending_test;
            let is_pub = (item_start..i).any(|k| lexed.is_ident(k, "pub"));
            let qual = match impl_stack.last() {
                Some((ty, _)) if !ty.is_empty() => format!("{ty}::{name}"),
                _ => name.clone(),
            };
            let body = if j < n && lexed.is_punct(j, '{') {
                let end = match_bracket(&lexed, j, '{', '}');
                if pending_test {
                    test_regions.push(end);
                }
                j..end + 1
            } else {
                j..j
            };
            pending_test = false;
            fns.push(FnItem {
                name,
                qual,
                line: lexed.line(i),
                is_pub,
                in_test,
                signature: i..j,
                body,
            });
            // Continue *inside* the body so nested items are still seen.
            i = j + 1;
            item_start = i;
            continue;
        }

        if lexed.is_punct(i, ';') || lexed.is_punct(i, '}') || lexed.is_punct(i, '{') {
            item_start = i + 1;
        }
        i += 1;
    }

    FileItems {
        file: file.to_string(),
        lexed,
        fns,
        uses,
    }
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold `open_ch`). Returns the last token index when unbalanced.
pub fn match_bracket(lexed: &Lexed, open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0i32;
    let n = lexed.tokens.len();
    let mut i = open;
    while i < n {
        if lexed.is_punct(i, open_ch) {
            depth += 1;
        } else if lexed.is_punct(i, close_ch) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    n.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_free_and_impl_fns() {
        let src = "\
pub fn top(x: usize) -> usize { x }
struct S;
impl S {
    pub fn method(&self) -> usize { helper() }
    fn private(&self) {}
}
impl Clone for S {
    fn clone(&self) -> S { S }
}
";
        let items = parse_file("m.rs", src);
        let quals: Vec<_> = items.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["top", "S::method", "S::private", "S::clone"]);
        assert!(items.fns[0].is_pub);
        assert!(items.fns[1].is_pub);
        assert!(!items.fns[2].is_pub);
        assert_eq!(items.fns[0].line, 1);
    }

    #[test]
    fn cfg_test_marks_module_contents() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn t() {}
}
fn also_real() {}
";
        let items = parse_file("m.rs", src);
        let test_flags: Vec<_> = items
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.in_test))
            .collect();
        assert_eq!(
            test_flags,
            vec![
                ("real", false),
                ("helper", true),
                ("t", true),
                ("also_real", false)
            ]
        );
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn real() {}\n";
        let items = parse_file("m.rs", src);
        assert_eq!(items.fns.len(), 1);
        assert!(!items.fns[0].in_test);
    }

    #[test]
    fn trait_signatures_have_empty_bodies() {
        let src = "pub trait T {\n    fn sig(&self) -> usize;\n    fn has_default(&self) -> usize { 1 }\n}\n";
        let items = parse_file("m.rs", src);
        assert_eq!(items.fns.len(), 2);
        assert!(items.fns[0].body.is_empty());
        assert!(!items.fns[1].body.is_empty());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real() { let f: fn(usize) -> usize = real2; f(1); }\nfn real2(x: usize) -> usize { x }\n";
        let items = parse_file("m.rs", src);
        let names: Vec<_> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real", "real2"]);
    }

    #[test]
    fn use_edges_are_collected() {
        let src = "use std::collections::HashMap;\nuse recipe_obs::span;\nfn f() {}\n";
        let items = parse_file("m.rs", src);
        assert_eq!(
            items.uses,
            vec!["std::collections::HashMap", "recipe_obs::span"]
        );
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn outer() {\n    fn inner() { mark(); }\n}\n";
        let items = parse_file("m.rs", src);
        let mark_idx = (0..items.lexed.tokens.len())
            .find(|&k| items.lexed.is_ident(k, "mark"))
            .unwrap();
        assert_eq!(items.enclosing_fn(mark_idx).unwrap().name, "inner");
    }

    #[test]
    fn strings_and_comments_cannot_fake_items() {
        let src = "fn real() {\n    let s = \"fn fake() {\";\n    // fn commented() {}\n}\n";
        let items = parse_file("m.rs", src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "real");
    }

    #[test]
    fn multiline_signature_line_is_the_fn_keyword() {
        let src = "pub fn long(\n    a: usize,\n    b: usize,\n) -> usize {\n    a + b\n}\n";
        let items = parse_file("m.rs", src);
        assert_eq!(items.fns[0].line, 1);
        assert!(!items.fns[0].body.is_empty());
    }
}
