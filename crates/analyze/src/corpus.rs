//! Corpus lints (`RA1xx`): well-formedness checks over annotated data —
//! both the typed in-memory corpus and string-level label sequences as
//! they appear in interchange files.

use crate::diag::Diagnostic;
use recipe_core::Quantity;
use recipe_corpus::vocab::UNITS;
use recipe_corpus::{Recipe, RecipeCorpus};
use recipe_ner::{IngredientTag, InstructionTag};
use recipe_text::tokenize;
use std::collections::BTreeSet;
use std::collections::HashMap;

/// Run every corpus lint over a generated/loaded corpus.
pub fn lint_corpus(corpus: &RecipeCorpus) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen_ids: HashMap<u64, usize> = HashMap::new();
    for (i, recipe) in corpus.recipes.iter().enumerate() {
        if let Some(&first) = seen_ids.get(&recipe.id) {
            out.push(Diagnostic::new(
                "RA103",
                format!(
                    "recipe id {} appears in both recipe {first} and recipe {i}",
                    recipe.id
                ),
                format!("corpus: recipe {i}"),
            ));
        }
        seen_ids.insert(recipe.id, i);
        out.extend(lint_recipe(recipe, i));
    }
    out
}

/// Lint one recipe: tokens, step structure, quantities, units, trees.
pub fn lint_recipe(recipe: &Recipe, index: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = |what: &str| format!("corpus: recipe {index} ({}), {what}", recipe.title);

    // RA109: empty sections.
    if recipe.ingredients.is_empty() {
        out.push(Diagnostic::new(
            "RA109",
            "recipe has no ingredients",
            loc("ingredients"),
        ));
    }
    if recipe.instructions.is_empty() {
        out.push(Diagnostic::new(
            "RA109",
            "recipe has no instructions",
            loc("instructions"),
        ));
    }

    // RA102: step_of must map every instruction sentence to a step, with
    // steps starting at 0 and never jumping.
    if recipe.step_of.len() != recipe.instructions.len() {
        out.push(Diagnostic::new(
            "RA102",
            format!(
                "step_of has {} entries for {} instruction sentences",
                recipe.step_of.len(),
                recipe.instructions.len()
            ),
            loc("step_of"),
        ));
    } else if !recipe.step_of.is_empty() {
        if recipe.step_of[0] != 0 {
            out.push(Diagnostic::new(
                "RA102",
                format!(
                    "first sentence is in step {}, expected 0",
                    recipe.step_of[0]
                ),
                loc("step_of"),
            ));
        }
        for w in recipe.step_of.windows(2) {
            if w[1] < w[0] || w[1] > w[0] + 1 {
                out.push(Diagnostic::new(
                    "RA102",
                    format!("step indices jump from {} to {}", w[0], w[1]),
                    loc("step_of"),
                ));
                break;
            }
        }
    }

    let unit_vocab: BTreeSet<&str> = UNITS
        .iter()
        .flat_map(|(singular, plural, _)| [*singular, *plural])
        .collect();

    for (j, phrase) in recipe.ingredients.iter().enumerate() {
        let ploc = |what: &str| format!("corpus: recipe {index}, ingredient {j}, {what}");
        for (t, tok) in phrase.tokens.iter().enumerate() {
            // RA101: empty token text.
            if tok.text.is_empty() {
                out.push(Diagnostic::new(
                    "RA101",
                    "token has empty text",
                    ploc(&format!("token {t}")),
                ));
                continue;
            }
            // RA106: QUANTITY tokens must parse under the quantity grammar.
            if tok.tag == IngredientTag::Quantity && Quantity::parse(&tok.text).is_none() {
                out.push(
                    Diagnostic::new(
                        "RA106",
                        format!("token {:?} is tagged QUANTITY but does not parse", tok.text),
                        ploc(&format!("token {t}")),
                    )
                    .with_note("expected an integer, decimal, fraction, mixed number or range"),
                );
            }
            // RA107: UNIT tokens should come from the unit vocabulary.
            if tok.tag == IngredientTag::Unit && !unit_vocab.contains(tok.text.as_str()) {
                out.push(Diagnostic::new(
                    "RA107",
                    format!(
                        "token {:?} is tagged UNIT but is not a known unit",
                        tok.text
                    ),
                    ploc(&format!("token {t}")),
                ));
            }
        }
        // RA108: the rendered text must re-tokenize to the same stream.
        let words = phrase.words();
        let retokenized: Vec<String> = tokenize(&phrase.text())
            .into_iter()
            .map(|t| t.text)
            .collect();
        if retokenized != words {
            out.push(
                Diagnostic::new(
                    "RA108",
                    format!("re-tokenizing yields {retokenized:?}, annotation has {words:?}"),
                    ploc("tokens"),
                )
                .with_note("NER features are computed on tokenizer output; misaligned gold labels corrupt training"),
            );
        }
    }

    for (j, sentence) in recipe.instructions.iter().enumerate() {
        let sloc = |what: &str| format!("corpus: recipe {index}, sentence {j}, {what}");
        for (t, tok) in sentence.tokens.iter().enumerate() {
            if tok.text.is_empty() {
                out.push(Diagnostic::new(
                    "RA101",
                    "token has empty text",
                    sloc(&format!("token {t}")),
                ));
            }
        }
        // RA110: gold dependency trees must cover the sentence and be
        // projective (the arc-standard oracle requires it).
        if sentence.tree.len() != sentence.tokens.len() {
            out.push(Diagnostic::new(
                "RA110",
                format!(
                    "gold tree has {} nodes for {} tokens",
                    sentence.tree.len(),
                    sentence.tokens.len()
                ),
                sloc("tree"),
            ));
        } else if !sentence.tree.is_projective() {
            out.push(
                Diagnostic::new(
                    "RA110",
                    "gold dependency tree is non-projective",
                    sloc("tree"),
                )
                .with_note("the arc-standard oracle cannot reach this tree"),
            );
        }
    }
    out
}

/// String-level label-sequence lints (`RA104`/`RA105`), for data as it
/// appears in CoNLL/JSONL interchange files. `task` selects the
/// inventory: `"ingredient"` or `"instruction"`.
pub fn lint_label_sequence(labels: &[String], task: &str, location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let raw: Vec<String> = match task {
        "instruction" => InstructionTag::ALL.iter().map(|t| t.to_string()).collect(),
        _ => IngredientTag::ALL.iter().map(|t| t.to_string()).collect(),
    };
    let mut inventory: BTreeSet<String> = raw.iter().cloned().collect();
    for r in &raw {
        if r != "O" {
            inventory.insert(format!("B-{r}"));
            inventory.insert(format!("I-{r}"));
        }
    }

    for (i, label) in labels.iter().enumerate() {
        // RA105: labels must come from the task inventory (raw or BIO).
        if !inventory.contains(label) {
            out.push(Diagnostic::new(
                "RA105",
                format!("label {label:?} is outside the {task} inventory"),
                format!("{location}, position {i}"),
            ));
        }
        // RA104: an I-X must continue a B-X/I-X run.
        if let Some(entity) = label.strip_prefix("I-") {
            let prev_ok = i > 0
                && (labels[i - 1].strip_prefix("B-") == Some(entity)
                    || labels[i - 1].strip_prefix("I-") == Some(entity));
            if !prev_ok {
                let prev = if i == 0 {
                    "<start>"
                } else {
                    labels[i - 1].as_str()
                };
                out.push(Diagnostic::new(
                    "RA104",
                    format!("{label} follows {prev}; expected B-{entity} or I-{entity}"),
                    format!("{location}, position {i}"),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipe_corpus::CorpusSpec;

    #[test]
    fn generated_corpus_is_clean() {
        let corpus = RecipeCorpus::generate(&CorpusSpec::scaled(40, 5));
        let diags = lint_corpus(&corpus);
        assert!(
            diags.is_empty(),
            "healthy corpus should lint clean: {diags:?}"
        );
    }

    #[test]
    fn broken_bio_fires_ra104() {
        let labels: Vec<String> = ["O", "I-NAME", "B-UNIT", "I-NAME"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let diags = lint_label_sequence(&labels, "ingredient", "test");
        let ra104: Vec<_> = diags.iter().filter(|d| d.code == "RA104").collect();
        assert_eq!(ra104.len(), 2, "{diags:?}");
    }

    #[test]
    fn unknown_label_fires_ra105() {
        let labels: Vec<String> = ["O", "FLAVOR"].iter().map(|s| s.to_string()).collect();
        let diags = lint_label_sequence(&labels, "ingredient", "test");
        assert!(diags.iter().any(|d| d.code == "RA105"), "{diags:?}");
    }

    #[test]
    fn valid_raw_and_bio_pass() {
        for labels in [
            vec!["QUANTITY", "UNIT", "NAME", "NAME"],
            vec!["B-QUANTITY", "B-UNIT", "B-NAME", "I-NAME"],
            vec!["O"],
        ] {
            let labels: Vec<String> = labels.iter().map(|s| s.to_string()).collect();
            let diags = lint_label_sequence(&labels, "ingredient", "test");
            assert!(diags.is_empty(), "{labels:?} -> {diags:?}");
        }
    }

    #[test]
    fn corrupted_recipe_fires_corpus_rules() {
        let corpus = RecipeCorpus::generate(&CorpusSpec::scaled(4, 5));
        let mut recipe = corpus.recipes[0].clone();
        recipe.ingredients[0].tokens[0].text = String::new(); // RA101 (+ RA108)
        recipe.step_of = vec![3; recipe.instructions.len()]; // RA102
        let diags = lint_recipe(&recipe, 0);
        assert!(diags.iter().any(|d| d.code == "RA101"), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "RA102"), "{diags:?}");
    }

    #[test]
    fn bad_quantity_fires_ra106() {
        let corpus = RecipeCorpus::generate(&CorpusSpec::scaled(4, 5));
        let mut recipe = corpus.recipes[0].clone();
        let phrase = &mut recipe.ingredients[0];
        // Find or make a QUANTITY token and corrupt it.
        let tok = &mut phrase.tokens[0];
        tok.tag = IngredientTag::Quantity;
        tok.text = "plenty".into();
        let diags = lint_recipe(&recipe, 0);
        assert!(diags.iter().any(|d| d.code == "RA106"), "{diags:?}");
    }
}
