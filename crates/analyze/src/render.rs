//! Renderers: rustc-style human output and a machine-readable JSON form.

use crate::diag::{sort_diagnostics, Diagnostic, Severity};
use serde_json::{json, Value};

/// Counts by severity, printed as the summary line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Summary {
    /// Error-level findings.
    pub errors: usize,
    /// Warning-level findings.
    pub warnings: usize,
    /// Note-level findings.
    pub notes: usize,
}

/// Tally a diagnostic set.
pub fn summarize(diags: &[Diagnostic]) -> Summary {
    let mut s = Summary::default();
    for d in diags {
        match d.severity {
            Severity::Error => s.errors += 1,
            Severity::Warning => s.warnings += 1,
            Severity::Note => s.notes += 1,
        }
    }
    s
}

/// Render in rustc style:
///
/// ```text
/// error[RA001]: emission weight for label NAME is NaN
///   --> artifact: ingredient NER, emit[172]
///   = note: reload from JSON would silently reset it to NaN
/// ```
///
/// ends with a `lint result:` summary line.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut diags = diags.to_vec();
    sort_diagnostics(&mut diags);
    let mut out = String::new();
    for d in &diags {
        out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
        out.push_str(&format!("  --> {}\n", d.location));
        for n in &d.notes {
            out.push_str(&format!("  = note: {n}\n"));
        }
        out.push('\n');
    }
    let s = summarize(&diags);
    out.push_str(&format!(
        "lint result: {} error{}, {} warning{}, {} note{}\n",
        s.errors,
        plural(s.errors),
        s.warnings,
        plural(s.warnings),
        s.notes,
        plural(s.notes),
    ));
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Render as one JSON document with `diagnostics` and `summary` keys.
pub fn render_json(diags: &[Diagnostic]) -> Value {
    let mut diags = diags.to_vec();
    sort_diagnostics(&mut diags);
    let s = summarize(&diags);
    json!({
        "diagnostics": diags.iter().map(|d| json!({
            "code": d.code,
            "severity": d.severity.as_str(),
            "message": d.message,
            "location": d.location,
            "notes": d.notes,
        })).collect::<Vec<_>>(),
        "summary": {
            "errors": s.errors,
            "warnings": s.warnings,
            "notes": s.notes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(
                "RA002",
                "transition block is all zeros",
                "artifact: instruction NER",
            )
            .with_note("was the model trained?"),
            Diagnostic::new(
                "RA001",
                "emission weight for label NAME is NaN",
                "artifact: ingredient NER, emit[172]",
            ),
        ]
    }

    #[test]
    fn golden_human_output() {
        let expected = "\
error[RA001]: emission weight for label NAME is NaN
  --> artifact: ingredient NER, emit[172]

warning[RA002]: transition block is all zeros
  --> artifact: instruction NER
  = note: was the model trained?

lint result: 1 error, 1 warning, 0 notes
";
        assert_eq!(render_human(&sample()), expected);
    }

    #[test]
    fn golden_json_output() {
        let v = render_json(&sample());
        let expected = r#"{
  "diagnostics": [
    {
      "code": "RA001",
      "severity": "error",
      "message": "emission weight for label NAME is NaN",
      "location": "artifact: ingredient NER, emit[172]",
      "notes": []
    },
    {
      "code": "RA002",
      "severity": "warning",
      "message": "transition block is all zeros",
      "location": "artifact: instruction NER",
      "notes": [
        "was the model trained?"
      ]
    }
  ],
  "summary": {
    "errors": 1,
    "warnings": 1,
    "notes": 0
  }
}"#;
        assert_eq!(serde_json::to_string_pretty(&v).unwrap(), expected);
    }

    #[test]
    fn empty_set_renders_clean_summary() {
        assert_eq!(
            render_human(&[]),
            "lint result: 0 errors, 0 warnings, 0 notes\n"
        );
        let v = render_json(&[]);
        assert_eq!(v["summary"]["errors"], 0);
        assert_eq!(v["diagnostics"].as_array().unwrap().len(), 0);
    }
}
