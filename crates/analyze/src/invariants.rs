//! Invariant lints (`RA2xx`): cross-crate constants the paper fixes —
//! tagset size, k, dictionary thresholds, label inventories — checked
//! against each other so a change in one crate can't silently skew
//! another.
//!
//! The checks are pure functions over an [`Observed`] snapshot, so tests
//! can verify each rule fires by feeding skewed values.
//!
//! The determinism audit (RA207, [`lint_parallel_determinism`]) follows
//! the same shape: [`DeterminismAudit::recompute`] trains miniature
//! models serially and on worker threads, and the lint compares the
//! serialized artifacts byte-for-byte. The compiled-model drift audit
//! (RA208, [`lint_compiled_drift`]) freezes miniature models into their
//! sparse (CSR) compiled forms and byte-compares compiled vs. reference
//! decodes over a fixed phrase set.

use crate::diag::Diagnostic;
use recipe_cluster::{KMeans, KMeansConfig};
use recipe_core::PipelineConfig;
use recipe_ner::scheme::bio_label_names;
use recipe_ner::{IngredientTag, InstructionTag};
use recipe_tagger::tagset::NUM_TAGS;
use recipe_tagger::POS_VECTOR_DIM;

/// The paper's constants, restated once, here, as the lint's ground truth.
pub mod paper {
    /// Penn Treebank tagset size (§II.D) and POS-vector dimensionality.
    pub const TAGSET: usize = 36;
    /// K-Means cluster count from the elbow analysis (§II.E).
    pub const K: usize = 23;
    /// Process-dictionary frequency threshold (§III.B).
    pub const PROCESS_THRESHOLD: usize = 47;
    /// Utensil-dictionary frequency threshold (§III.B).
    pub const UTENSIL_THRESHOLD: usize = 10;
    /// Entity labels of Table II (plus `O` in the model inventory).
    pub const INGREDIENT_LABELS: [&str; 7] =
        ["NAME", "STATE", "UNIT", "QUANTITY", "SIZE", "TEMP", "DF"];
    /// Instruction-section entity labels (§III.A).
    pub const INSTRUCTION_LABELS: [&str; 3] = ["PROCESS", "UTENSIL", "INGREDIENT"];
}

/// A snapshot of the values the invariant rules compare.
#[derive(Debug, Clone, PartialEq)]
pub struct Observed {
    /// `recipe_tagger::NUM_TAGS`.
    pub tagset_len: usize,
    /// `recipe_tagger::POS_VECTOR_DIM`.
    pub pos_vector_dim: usize,
    /// k in `PipelineConfig::paper()`.
    pub paper_k: usize,
    /// k in `KMeansConfig::default()`.
    pub default_k: usize,
    /// Process threshold in `PipelineConfig::paper()`.
    pub process_threshold: usize,
    /// Utensil threshold in `PipelineConfig::paper()`.
    pub utensil_threshold: usize,
    /// Ingredient label inventory (id order), from `IngredientTag::ALL`.
    pub ingredient_labels: Vec<String>,
    /// Instruction label inventory (id order), from `InstructionTag::ALL`.
    pub instruction_labels: Vec<String>,
}

impl Observed {
    /// Gather the current values from the workspace crates.
    pub fn gather() -> Self {
        let paper_cfg = PipelineConfig::paper();
        Observed {
            tagset_len: NUM_TAGS,
            pos_vector_dim: POS_VECTOR_DIM,
            paper_k: paper_cfg.kmeans.k,
            default_k: KMeansConfig::default().k,
            process_threshold: paper_cfg.process_threshold,
            utensil_threshold: paper_cfg.utensil_threshold,
            ingredient_labels: IngredientTag::ALL.iter().map(|t| t.to_string()).collect(),
            instruction_labels: InstructionTag::ALL.iter().map(|t| t.to_string()).collect(),
        }
    }
}

/// Run every invariant rule over a snapshot.
pub fn lint_invariants(obs: &Observed) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // RA201: tagset size == POS-vector dimensionality == 36.
    if obs.tagset_len != paper::TAGSET || obs.pos_vector_dim != paper::TAGSET {
        out.push(
            Diagnostic::new(
                "RA201",
                format!(
                    "tagset has {} tags, POS vectors have {} dims; the paper fixes both at {}",
                    obs.tagset_len,
                    obs.pos_vector_dim,
                    paper::TAGSET
                ),
                "invariant: recipe-tagger NUM_TAGS / POS_VECTOR_DIM",
            )
            .with_note(
                "clustering distance is computed in this space; a skew silently changes Fig. 2",
            ),
        );
    } else if obs.tagset_len != obs.pos_vector_dim {
        out.push(Diagnostic::new(
            "RA201",
            format!(
                "tagset size {} != POS-vector dimensionality {}",
                obs.tagset_len, obs.pos_vector_dim
            ),
            "invariant: recipe-tagger NUM_TAGS / POS_VECTOR_DIM",
        ));
    }

    // RA202: the paper clusters with k = 23.
    if obs.paper_k != paper::K {
        out.push(Diagnostic::new(
            "RA202",
            format!(
                "PipelineConfig::paper() clusters with k = {}, the paper uses {}",
                obs.paper_k,
                paper::K
            ),
            "invariant: recipe-core PipelineConfig::paper().kmeans.k",
        ));
    }
    if obs.default_k != paper::K {
        out.push(Diagnostic::new(
            "RA202",
            format!(
                "KMeansConfig::default() has k = {}, the paper uses {}",
                obs.default_k,
                paper::K
            ),
            "invariant: recipe-cluster KMeansConfig::default().k",
        ));
    }

    // RA203: dictionary thresholds 47 / 10.
    if (obs.process_threshold, obs.utensil_threshold)
        != (paper::PROCESS_THRESHOLD, paper::UTENSIL_THRESHOLD)
    {
        out.push(Diagnostic::new(
            "RA203",
            format!(
                "paper config thresholds are ({}, {}), the paper uses ({}, {})",
                obs.process_threshold,
                obs.utensil_threshold,
                paper::PROCESS_THRESHOLD,
                paper::UTENSIL_THRESHOLD
            ),
            "invariant: recipe-core PipelineConfig::paper() process/utensil thresholds",
        ));
    }

    // RA204: ingredient inventory = O + the seven Table II labels.
    let expected_ing: Vec<String> = std::iter::once("O".to_string())
        .chain(paper::INGREDIENT_LABELS.iter().map(|s| s.to_string()))
        .collect();
    if obs.ingredient_labels != expected_ing {
        out.push(
            Diagnostic::new(
                "RA204",
                format!(
                    "ingredient inventory is {:?}, expected {:?}",
                    obs.ingredient_labels, expected_ing
                ),
                "invariant: recipe-ner IngredientTag::ALL",
            )
            .with_note("label ids are positional; reordering breaks every saved artifact"),
        );
    }

    // RA205: instruction inventory = O + process/utensil/ingredient.
    let expected_ins: Vec<String> = std::iter::once("O".to_string())
        .chain(paper::INSTRUCTION_LABELS.iter().map(|s| s.to_string()))
        .collect();
    if obs.instruction_labels != expected_ins {
        out.push(Diagnostic::new(
            "RA205",
            format!(
                "instruction inventory is {:?}, expected {:?}",
                obs.instruction_labels, expected_ins
            ),
            "invariant: recipe-ner InstructionTag::ALL",
        ));
    }

    // RA206: the BIO expansion must be 2(n-1)+1 labels and strip back to
    // the raw inventory.
    let raw: Vec<&str> = obs.ingredient_labels.iter().map(|s| s.as_str()).collect();
    if !raw.is_empty() {
        let bio = bio_label_names(&raw, "O");
        let expected_len = 2 * (raw.len() - 1) + 1;
        if bio.len() != expected_len {
            out.push(Diagnostic::new(
                "RA206",
                format!(
                    "BIO inventory has {} labels, expected {expected_len}",
                    bio.len()
                ),
                "invariant: recipe-ner scheme::bio_label_names",
            ));
        }
        let stripped = recipe_ner::scheme::from_bio(&bio);
        let mut uniq: Vec<String> = stripped.clone();
        uniq.dedup();
        let mut sorted_raw: Vec<String> = raw.iter().map(|s| s.to_string()).collect();
        sorted_raw.sort();
        let mut sorted_uniq = uniq.clone();
        sorted_uniq.sort();
        sorted_uniq.dedup();
        if sorted_uniq != sorted_raw {
            out.push(Diagnostic::new(
                "RA206",
                format!("from_bio over the BIO inventory yields {sorted_uniq:?}, expected {sorted_raw:?}"),
                "invariant: recipe-ner scheme::from_bio",
            ));
        }
    }

    out
}

/// Serialized artifacts recomputed for the RA207 determinism audit:
/// one serial and one multi-threaded training run of each parallelized
/// model family, as JSON strings ready for byte comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DeterminismAudit {
    /// Worker threads used for the parallel recompute.
    pub threads: usize,
    /// CRF (L-BFGS) model trained on one thread.
    pub crf_serial: String,
    /// The same training run on `threads` worker threads.
    pub crf_parallel: String,
    /// K-Means model fitted on one thread.
    pub kmeans_serial: String,
    /// The same fit on `threads` worker threads.
    pub kmeans_parallel: String,
}

impl DeterminismAudit {
    /// Train the miniature models serially and on `threads` worker
    /// threads (the fixed inputs keep the audit at a few milliseconds).
    pub fn recompute(threads: usize) -> Self {
        use recipe_ner::model::LabeledSequence;
        use recipe_ner::{SequenceModel, TrainConfig, Trainer};
        use recipe_runtime::Runtime;

        let seq = |words: &[&str], tags: &[&str]| -> LabeledSequence {
            (
                words.iter().map(|w| w.to_string()).collect(),
                tags.iter().map(|t| t.to_string()).collect(),
            )
        };
        let data = vec![
            seq(&["2", "cups", "flour"], &["QUANTITY", "UNIT", "NAME"]),
            seq(
                &["1", "pinch", "sea", "salt"],
                &["QUANTITY", "UNIT", "NAME", "NAME"],
            ),
            seq(
                &["3", "large", "eggs", "beaten"],
                &["QUANTITY", "SIZE", "NAME", "STATE"],
            ),
            seq(
                &["1/2", "cup", "warm", "water"],
                &["QUANTITY", "UNIT", "TEMP", "NAME"],
            ),
            seq(&["fresh", "basil", "leaves"], &["DF", "NAME", "NAME"]),
        ];
        let labels = recipe_ner::IngredientTag::label_set();
        let crf_cfg = |threads: usize| TrainConfig {
            trainer: Trainer::CrfLbfgs,
            epochs: 8,
            threads,
            ..TrainConfig::default()
        };
        let crf_json = |threads: usize| {
            serde_json::to_string(&SequenceModel::train(&labels, &data, &crf_cfg(threads)))
                .expect("serialize CRF model")
        };

        let mut points: Vec<Vec<f64>> = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (12.0, 12.0), (24.0, 0.0)] {
            for j in 0..20 {
                points.push(vec![cx + (j % 4) as f64 * 0.1, cy + (j % 5) as f64 * 0.1]);
            }
        }
        let kcfg = KMeansConfig {
            k: 3,
            max_iters: 25,
            ..KMeansConfig::default()
        };
        let km_json = |rt: &Runtime| {
            serde_json::to_string(&KMeans::fit_rt(&points, &kcfg, rt))
                .expect("serialize K-Means model")
        };

        DeterminismAudit {
            threads,
            crf_serial: crf_json(1),
            crf_parallel: crf_json(threads),
            kmeans_serial: km_json(&Runtime::serial()),
            kmeans_parallel: km_json(&Runtime::new(threads)),
        }
    }
}

/// RA207: the parallel recompute of each trained artifact must be
/// byte-identical to the serial artifact.
pub fn lint_parallel_determinism(audit: &DeterminismAudit) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (what, serial, parallel, location) in [
        (
            "CRF (L-BFGS) model",
            &audit.crf_serial,
            &audit.crf_parallel,
            "invariant: recipe-ner train_lbfgs via recipe-runtime",
        ),
        (
            "K-Means model",
            &audit.kmeans_serial,
            &audit.kmeans_parallel,
            "invariant: recipe-cluster KMeans::fit_rt via recipe-runtime",
        ),
    ] {
        if serial != parallel {
            out.push(
                Diagnostic::new(
                    "RA207",
                    format!(
                        "{what} trained on {} worker threads differs from the serial artifact",
                        audit.threads
                    ),
                    location,
                )
                .with_note(
                    "the runtime contract (fixed chunking + ordered reduction) guarantees \
                     bit-identical artifacts at every thread count",
                ),
            );
        }
    }
    out
}

/// Decoded outputs recomputed for the RA208 compiled-model drift audit:
/// a miniature CRF and POS tagger are frozen into their compiled (sparse
/// CSR) forms and both paths decode a fixed phrase set; the serialized
/// tag sequences are compared byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledDriftAudit {
    /// NER tag sequences from the reference (dense) decoder.
    pub ner_reference: String,
    /// NER tag sequences from the compiled (CSR) decoder.
    pub ner_compiled: String,
    /// POS tag sequences from the reference tagger.
    pub pos_reference: String,
    /// POS tag sequences from the compiled tagger.
    pub pos_compiled: String,
}

impl CompiledDriftAudit {
    /// Train the miniature models, freeze them, and decode the fixed
    /// phrase set through both paths (a few milliseconds end to end).
    pub fn recompute() -> Self {
        use recipe_ner::model::LabeledSequence;
        use recipe_ner::{CompiledSequenceModel, SequenceModel, TrainConfig, Trainer};
        use recipe_tagger::{CompiledPosTagger, PennTag, PosTagger};

        // Miniature CRF on the same fixed corpus as the RA207 audit.
        let seq = |words: &[&str], tags: &[&str]| -> LabeledSequence {
            (
                words.iter().map(|w| w.to_string()).collect(),
                tags.iter().map(|t| t.to_string()).collect(),
            )
        };
        let data = vec![
            seq(&["2", "cups", "flour"], &["QUANTITY", "UNIT", "NAME"]),
            seq(
                &["1", "pinch", "sea", "salt"],
                &["QUANTITY", "UNIT", "NAME", "NAME"],
            ),
            seq(
                &["3", "large", "eggs", "beaten"],
                &["QUANTITY", "SIZE", "NAME", "STATE"],
            ),
            seq(
                &["1/2", "cup", "warm", "water"],
                &["QUANTITY", "UNIT", "TEMP", "NAME"],
            ),
            seq(&["fresh", "basil", "leaves"], &["DF", "NAME", "NAME"]),
        ];
        let labels = recipe_ner::IngredientTag::label_set();
        let model = SequenceModel::train(
            &labels,
            &data,
            &TrainConfig {
                trainer: Trainer::CrfLbfgs,
                epochs: 8,
                threads: 1,
                ..TrainConfig::default()
            },
        );
        let compiled = CompiledSequenceModel::compile(&model);

        // Fixed decode set: in-domain phrases plus unseen tokens, so the
        // out-of-vocabulary path is exercised too.
        let phrases: Vec<Vec<String>> = [
            &["2", "cups", "flour"][..],
            &["1/2", "cup", "diced", "unseen-word"][..],
            &["3", "small", "ripe", "tomatoes"][..],
            &["fresh", "warm", "water"][..],
            &["1", "pinch", "salt"][..],
        ]
        .iter()
        .map(|p| p.iter().map(|w| w.to_string()).collect())
        .collect();
        let ner_reference =
            serde_json::to_string(&phrases.iter().map(|p| model.predict(p)).collect::<Vec<_>>())
                .expect("serialize reference NER decode");
        let ner_compiled = serde_json::to_string(
            &phrases
                .iter()
                .map(|p| compiled.predict(p))
                .collect::<Vec<_>>(),
        )
        .expect("serialize compiled NER decode");

        // Miniature POS tagger. "mix" is ambiguous (verb and noun) so it
        // stays out of the tag dictionary and the perceptron path runs.
        let ts = |words: &[&str], tags: &[PennTag]| -> (Vec<String>, Vec<PennTag>) {
            (words.iter().map(|w| w.to_string()).collect(), tags.to_vec())
        };
        let mut pos_data = Vec::new();
        for _ in 0..12 {
            use PennTag::*;
            pos_data.push(ts(&["2", "cups", "flour"], &[CD, NNS, NN]));
            pos_data.push(ts(&["boil", "the", "water"], &[VB, DT, NN]));
            pos_data.push(ts(&["finely", "chopped", "onion"], &[RB, VBN, NN]));
            pos_data.push(ts(&["mix", "the", "batter"], &[VB, DT, NN]));
            pos_data.push(ts(&["pour", "the", "mix"], &[VB, DT, NN]));
            pos_data.push(ts(&["mix", "well"], &[VB, RB]));
        }
        let tagger = PosTagger::train(&pos_data, 6, 7);
        let compiled_pos = CompiledPosTagger::compile(&tagger);
        let tag_names =
            |tags: &[PennTag]| -> Vec<&'static str> { tags.iter().map(|t| t.as_str()).collect() };
        let pos_reference = serde_json::to_string(
            &phrases
                .iter()
                .map(|p| tag_names(&tagger.tag(p)))
                .collect::<Vec<_>>(),
        )
        .expect("serialize reference POS decode");
        let pos_compiled = serde_json::to_string(
            &phrases
                .iter()
                .map(|p| tag_names(&compiled_pos.tag(p)))
                .collect::<Vec<_>>(),
        )
        .expect("serialize compiled POS decode");

        CompiledDriftAudit {
            ner_reference,
            ner_compiled,
            pos_reference,
            pos_compiled,
        }
    }
}

/// RA208: the compiled decode of a frozen model must be byte-identical
/// to the reference decode.
pub fn lint_compiled_drift(audit: &CompiledDriftAudit) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (what, reference, compiled, location) in [
        (
            "CRF (sparse CSR Viterbi)",
            &audit.ner_reference,
            &audit.ner_compiled,
            "invariant: recipe-ner CompiledSequenceModel vs SequenceModel::predict",
        ),
        (
            "POS tagger (sparse CSR scoring)",
            &audit.pos_reference,
            &audit.pos_compiled,
            "invariant: recipe-tagger CompiledPosTagger vs PosTagger::tag",
        ),
    ] {
        if reference != compiled {
            out.push(
                Diagnostic::new(
                    "RA208",
                    format!("{what} decode differs from the reference decode"),
                    location,
                )
                .with_note(
                    "pruning exact-zero weights only perturbs ±0.0 intermediates, which are \
                     invisible to comparisons — any drift is a real decoding bug",
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_workspace_satisfies_all_invariants() {
        let diags = lint_invariants(&Observed::gather());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn skewed_tagset_fires_ra201() {
        let mut obs = Observed::gather();
        obs.pos_vector_dim = 35;
        let diags = lint_invariants(&obs);
        assert!(diags.iter().any(|d| d.code == "RA201"), "{diags:?}");
    }

    #[test]
    fn skewed_k_fires_ra202() {
        let mut obs = Observed::gather();
        obs.paper_k = 20;
        let diags = lint_invariants(&obs);
        assert!(diags.iter().any(|d| d.code == "RA202"), "{diags:?}");
    }

    #[test]
    fn skewed_thresholds_fire_ra203() {
        let mut obs = Observed::gather();
        obs.process_threshold = 48;
        let diags = lint_invariants(&obs);
        assert!(diags.iter().any(|d| d.code == "RA203"), "{diags:?}");
    }

    #[test]
    fn reordered_inventory_fires_ra204() {
        let mut obs = Observed::gather();
        obs.ingredient_labels.swap(1, 2);
        let diags = lint_invariants(&obs);
        assert!(diags.iter().any(|d| d.code == "RA204"), "{diags:?}");
    }

    #[test]
    fn missing_instruction_label_fires_ra205() {
        let mut obs = Observed::gather();
        obs.instruction_labels.pop();
        let diags = lint_invariants(&obs);
        assert!(diags.iter().any(|d| d.code == "RA205"), "{diags:?}");
    }

    #[test]
    fn determinism_audit_is_clean_on_current_workspace() {
        let audit = DeterminismAudit::recompute(2);
        let diags = lint_parallel_determinism(&audit);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn corrupted_audit_fires_ra207() {
        let mut audit = DeterminismAudit::recompute(2);
        audit.crf_parallel.push('x');
        let diags = lint_parallel_determinism(&audit);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RA207");
        audit.kmeans_parallel.push('x');
        assert_eq!(lint_parallel_determinism(&audit).len(), 2);
    }

    #[test]
    fn compiled_drift_audit_is_clean_on_current_workspace() {
        let audit = CompiledDriftAudit::recompute();
        let diags = lint_compiled_drift(&audit);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn corrupted_compiled_audit_fires_ra208() {
        let mut audit = CompiledDriftAudit::recompute();
        audit.ner_compiled.push('x');
        let diags = lint_compiled_drift(&audit);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RA208");
        audit.pos_compiled.push('x');
        assert_eq!(lint_compiled_drift(&audit).len(), 2);
    }
}
