//! A std-only Rust lexer for the source-analysis engine.
//!
//! Produces a flat token stream with line numbers, correctly skipping
//! the constructs that confused the old line scanner: normal and raw
//! string literals (`r#"…"#` at any hash depth), byte strings, char
//! literals vs. lifetimes, nested block comments, and doc comments.
//! Everything downstream — the item parser ([`crate::items`]), the call
//! graph ([`crate::callgraph`]) and every `RA3xx`/`RA4xx` source lint —
//! works on these tokens, so a needle inside `"a string"` or `/* a
//! comment */` can never fire a diagnostic again.
//!
//! The lexer is deliberately permissive: unterminated literals or stray
//! bytes never panic, they just close the token at end of input. Lint
//! passes prefer under-reporting on malformed input over crashing.

use std::ops::Range;

/// What a token is. Comments and whitespace are not emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// `'a` — a lifetime or loop label, not a char literal.
    Lifetime,
    /// `'x'`, `'\n'`, `b'x'`.
    CharLit,
    /// `"…"`, `b"…"` (escapes resolved only far enough to find the end).
    StrLit,
    /// `r"…"`, `r#"…"#`, `br#"…"#` at any hash depth.
    RawStrLit,
    /// Integer or float literal, including suffixes.
    NumLit,
    /// A single punctuation byte (`{`, `.`, `:`, `!`, …).
    Punct,
}

/// One token: kind, byte range into the source, and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte range into the lexed source.
    pub span: Range<usize>,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

/// A lexed file: the source plus its token stream.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// The source text the spans index into.
    pub src: String,
    /// Tokens in source order.
    pub tokens: Vec<Token>,
}

impl Lexed {
    /// Text of token `i` (empty for out-of-range indices).
    pub fn text(&self, i: usize) -> &str {
        self.tokens
            .get(i)
            .map(|t| &self.src[t.span.clone()])
            .unwrap_or("")
    }

    /// Kind of token `i`, or `None` past the end.
    pub fn kind(&self, i: usize) -> Option<TokenKind> {
        self.tokens.get(i).map(|t| t.kind)
    }

    /// True when token `i` is punctuation equal to `ch`.
    pub fn is_punct(&self, i: usize, ch: char) -> bool {
        self.tokens.get(i).is_some_and(|t| {
            t.kind == TokenKind::Punct && self.src[t.span.clone()].chars().next() == Some(ch)
        })
    }

    /// True when token `i` is an identifier with exactly this text.
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && &self.src[t.span.clone()] == text)
    }

    /// Line of token `i` (0 past the end — callers treat it as "nowhere").
    pub fn line(&self, i: usize) -> u32 {
        self.tokens.get(i).map(|t| t.line).unwrap_or(0)
    }
}

/// Lex `src` into a token stream. Never fails; malformed input produces
/// a best-effort stream that simply ends early.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut tokens = Vec::with_capacity(src.len() / 6);
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Count the newlines in `bytes[from..to]` into `line`.
    macro_rules! count_lines {
        ($from:expr, $to:expr) => {
            line += bytes[$from..$to].iter().filter(|&&b| b == b'\n').count() as u32
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            // Comments: line (incl. doc) and nested block.
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                count_lines!(start, i);
            }
            // Raw strings and raw identifiers: r"…", r#"…"#, r#ident.
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                let start = i;
                let start_line = line;
                i += if b == b'b' { 2 } else { 1 }; // skip r / br
                let mut hashes = 0usize;
                while bytes.get(i) == Some(&b'#') {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                loop {
                    match bytes.get(i) {
                        None => break,
                        Some(b'"') => {
                            let mut ok = true;
                            for k in 0..hashes {
                                if bytes.get(i + 1 + k) != Some(&b'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                i += 1 + hashes;
                                break;
                            }
                            i += 1;
                        }
                        Some(_) => i += 1,
                    }
                }
                count_lines!(start, i);
                tokens.push(Token {
                    kind: TokenKind::RawStrLit,
                    span: start..i,
                    line: start_line,
                });
            }
            // Normal and byte strings.
            b'"' => {
                let (end, lines) = skip_string(bytes, i);
                tokens.push(Token {
                    kind: TokenKind::StrLit,
                    span: i..end,
                    line,
                });
                line += lines;
                i = end;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let (end, lines) = skip_string(bytes, i + 1);
                tokens.push(Token {
                    kind: TokenKind::StrLit,
                    span: i..end,
                    line,
                });
                line += lines;
                i = end;
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                let end = skip_char_lit(bytes, i + 1);
                tokens.push(Token {
                    kind: TokenKind::CharLit,
                    span: i..end,
                    line,
                });
                i = end;
            }
            // Char literal vs. lifetime.
            b'\'' => {
                if is_char_literal(bytes, i) {
                    let end = skip_char_lit(bytes, i);
                    tokens.push(Token {
                        kind: TokenKind::CharLit,
                        span: i..end,
                        line,
                    });
                    i = end;
                } else {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        span: start..i,
                        line,
                    });
                }
            }
            // Identifiers and keywords (raw identifiers handled above
            // only when they open a raw string; `r#ident` lands here).
            _ if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => {
                let start = i;
                if (b == b'r' || b == b'b')
                    && bytes.get(i + 1) == Some(&b'#')
                    && bytes
                        .get(i + 2)
                        .is_some_and(|&c| c.is_ascii_alphabetic() || c == b'_')
                {
                    i += 2; // raw identifier prefix
                }
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    span: start..i,
                    line,
                });
            }
            // Numbers.
            _ if b.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    if is_ident_byte(c) {
                        i += 1;
                    } else if c == b'.'
                        && bytes.get(i + 1).is_some_and(|&d| d.is_ascii_digit())
                        && !src[start..i].contains('.')
                    {
                        // One decimal point, only when followed by a digit
                        // (so `1.max(2)` and `0..n` stay method/range).
                        i += 1;
                    } else if (c == b'+' || c == b'-')
                        && matches!(bytes.get(i - 1), Some(b'e') | Some(b'E'))
                        && bytes.get(i + 1).is_some_and(|&d| d.is_ascii_digit())
                    {
                        i += 1; // exponent sign
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::NumLit,
                    span: start..i,
                    line,
                });
            }
            // Everything else: single punctuation byte.
            _ => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    span: i..i + 1,
                    line,
                });
                i += 1;
            }
        }
    }

    Lexed {
        src: src.to_string(),
        tokens,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Does a raw-string literal start at `i`? (`r"`, `r#…#"`, `br"`, `br#…`)
fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if bytes[i] == b'b' {
        if bytes.get(j) != Some(&b'r') {
            return false;
        }
        j += 1;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    // `r#ident` (raw identifier) has an ident char here, not a quote.
    bytes.get(j) == Some(&b'"')
}

/// Skip a `"…"` literal starting at the opening quote; returns
/// (index past the closing quote, newline count inside).
fn skip_string(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut i = start + 1;
    let mut lines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                lines += 1;
                i += 1;
            }
            b'"' => return (i + 1, lines),
            _ => i += 1,
        }
    }
    (bytes.len(), lines)
}

/// Skip a `'…'` char literal starting at the quote; returns the index
/// past the closing quote.
fn skip_char_lit(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    if bytes.get(i) == Some(&b'\\') {
        i += 2; // escape + escaped byte (covers \', \\, \n, and opens \u{)
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
    } else {
        // One (possibly multi-byte) character.
        i += 1;
        while i < bytes.len() && (bytes[i] & 0xC0) == 0x80 {
            i += 1;
        }
    }
    if bytes.get(i) == Some(&b'\'') {
        i + 1
    } else {
        i
    }
}

/// Disambiguate `'` at `i`: char literal (closing quote soon) or
/// lifetime/label. `'a'` is a char; `'a` and `'static` are lifetimes.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        None => false,
        Some(b'\\') => true,
        Some(&c) => {
            if is_ident_byte(c) && c < 0x80 {
                // `'x'` is a char literal only if the very next byte after
                // one ident char is the closing quote; `'xy`/`'x,` are
                // lifetimes/labels.
                bytes.get(i + 2) == Some(&b'\'')
            } else {
                // Non-ident char (`'('`, `' '`) must be a char literal.
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let lx = lex(src);
        lx.tokens
            .iter()
            .map(|t| (t.kind, lx.src[t.span.clone()].to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn f(x: u32) -> u32 { x }");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".to_string()));
        assert_eq!(toks[1], (TokenKind::Ident, "f".to_string()));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == "{"));
    }

    #[test]
    fn string_contents_are_single_tokens() {
        let toks = kinds(r#"let s = "x.unwrap() // not code";"#);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::StrLit)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("unwrap"));
        // No ident token "unwrap" leaked out of the literal.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_literal() {
        let toks = kinds(r#"let s = "a \" b"; let t = 1;"#);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::StrLit)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].1, r#""a \" b""#);
    }

    #[test]
    fn raw_strings_at_every_hash_depth() {
        for src in [
            r###"let s = r"todo!(x)";"###,
            r###"let s = r#"todo!("quoted")"#;"###,
            r####"let s = r##"nested "# inside"##;"####,
            r###"let s = br#"bytes todo!()"#;"###,
        ] {
            let toks = kinds(src);
            assert!(
                toks.iter().any(|(k, _)| *k == TokenKind::RawStrLit),
                "{src}"
            );
            assert!(
                !toks
                    .iter()
                    .any(|(k, t)| *k == TokenKind::Ident && t == "todo"),
                "{src}: {toks:?}"
            );
        }
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let toks = kinds("a /* x /* y.unwrap() */ z */ b");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".to_string()),
                (TokenKind::Ident, "b".to_string())
            ]
        );
    }

    #[test]
    fn doc_and_line_comments_are_skipped() {
        let toks = kinds("/// dbg!(x) in docs\n//! todo!()\nfn f() {} // trailing");
        assert!(!toks.iter().any(|(_, t)| t == "dbg" || t == "todo"));
        assert!(toks.iter().any(|(_, t)| t == "fn"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds(r"let c = 'x'; let n = '\n'; fn f<'a>(s: &'a str) {} 'outer: loop {}");
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, vec!["'x'".to_string(), r"'\n'".to_string()]);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(
            lifetimes,
            vec!["'a".to_string(), "'a".to_string(), "'outer".to_string()]
        );
    }

    #[test]
    fn quote_char_literal_does_not_eat_the_file() {
        let toks = kinds(r"let q = '\''; let x = 1;");
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::CharLit));
        assert!(toks.iter().any(|(_, t)| t == "x"));
    }

    #[test]
    fn numbers_with_suffixes_floats_and_ranges() {
        let toks = kinds("let a = 1_000u64; let b = 0.5e-3; for i in 0..n { x[i+1]; } 1.max(2);");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, t)| t.clone())
            .collect();
        assert!(nums.contains(&"1_000u64".to_string()), "{nums:?}");
        assert!(nums.contains(&"0.5e-3".to_string()), "{nums:?}");
        // Range `0..n` keeps 0 separate; method call `1.max` keeps 1 separate.
        assert!(nums.contains(&"0".to_string()), "{nums:?}");
        assert!(nums.contains(&"1".to_string()), "{nums:?}");
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "fn a() {}\n/* two\nlines */\nfn b() {}\nlet s = \"x\ny\";\nfn c() {}";
        let lx = lex(src);
        let line_of = |name: &str| {
            lx.tokens
                .iter()
                .position(|t| &lx.src[t.span.clone()] == name)
                .map(|i| lx.tokens[i].line)
                .unwrap()
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 4);
        assert_eq!(line_of("c"), 7);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["let s = \"unterminated", "let s = r#\"open", "let c = '"] {
            let _ = lex(src);
        }
    }
}
