//! Artifact lints (`RA0xx`): structural health checks over a trained
//! pipeline — the things `cargo test` can't see because they depend on
//! what training actually produced.

use crate::diag::Diagnostic;
use recipe_core::instructions::Dictionaries;
use recipe_core::pipeline::TrainedPipeline;
use recipe_ner::decode::Params;
use recipe_ner::{IngredientTag, InstructionTag, SequenceModel};
use recipe_parser::parser::DependencyParser;
use recipe_tagger::tagset::NUM_TAGS;
use recipe_tagger::PosTagger;

/// Below this magnitude a whole parameter block counts as untrained.
const DEGENERATE_EPS: f64 = 1e-12;

/// Run every artifact lint over a trained pipeline.
pub fn lint_pipeline(p: &TrainedPipeline) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(lint_sequence_model(&p.ingredient_ner, "ingredient NER"));
    out.extend(lint_sequence_model(&p.instruction_ner, "instruction NER"));
    out.extend(lint_pos_tagger(&p.pos));
    out.extend(lint_parser(&p.parser));
    out.extend(lint_dictionaries(&p.dicts, None));
    out
}

/// Lint one sequence model (label set + parameter block + feature table).
pub fn lint_sequence_model(model: &SequenceModel, which: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let params = model.params();
    let labels = model.labels();
    let loc = |part: &str| format!("artifact: {which}, {part}");

    // RA004: dimensional consistency between the label set, the parameter
    // block and the interner.
    if labels.len() != params.n_labels {
        out.push(
            Diagnostic::new(
                "RA004",
                format!(
                    "label set has {} labels but parameters are sized for {}",
                    labels.len(),
                    params.n_labels
                ),
                loc("labels vs params"),
            )
            .with_note("decoding will panic or silently mislabel"),
        );
    }
    let n = params.n_labels;
    if params.trans.len() != n * n || params.start.len() != n || params.end.len() != n {
        out.push(Diagnostic::new(
            "RA004",
            format!(
                "parameter block shapes are inconsistent: trans {} (want {}), start {} / end {} (want {})",
                params.trans.len(),
                n * n,
                params.start.len(),
                params.end.len(),
                n
            ),
            loc("params"),
        ));
    }
    if n > 0 && params.emit.len() != model.interner().len() * n {
        out.push(
            Diagnostic::new(
                "RA004",
                format!(
                    "emission block has {} weights but {} features x {} labels = {}",
                    params.emit.len(),
                    model.interner().len(),
                    n,
                    model.interner().len() * n
                ),
                loc("emit vs interner"),
            )
            .with_note("feature ids decoded against the wrong rows produce garbage scores"),
        );
    }

    // RA005: a frozen-but-empty feature table means predictions ignore
    // the input entirely.
    if model.interner().is_empty() {
        out.push(Diagnostic::new(
            "RA005",
            "model has no interned features — every input scores identically",
            loc("interner"),
        ));
    }

    // RA001: non-finite parameters.
    out.extend(lint_params_finite(
        params,
        labels.names().collect::<Vec<_>>().as_slice(),
        which,
    ));

    // RA002: a model whose every weight is ~zero was never trained.
    let max_abs = params
        .emit
        .iter()
        .chain(&params.trans)
        .chain(&params.start)
        .chain(&params.end)
        .fold(0.0f64, |m, w| m.max(w.abs()));
    if max_abs < DEGENERATE_EPS && !params.emit.is_empty() {
        out.push(
            Diagnostic::new(
                "RA002",
                format!(
                    "all {} parameters are zero",
                    params.emit.len() + params.trans.len()
                ),
                loc("params"),
            )
            .with_note("was the model trained, or did a pruning pass drop everything?"),
        );
    }

    // RA010 / RA003: inventory-shape dependent checks.
    let names: Vec<&str> = labels.names().collect();
    match classify_inventory(&names) {
        InventoryKind::Bio => out.extend(lint_bio_transitions(params, &names, which)),
        InventoryKind::Raw => {}
        InventoryKind::Unknown => {
            out.push(
                Diagnostic::new(
                    "RA010",
                    format!("label inventory {names:?} matches no known task"),
                    loc("labels"),
                )
                .with_note(
                    "expected the Table II ingredient tags, the instruction tags, or a BIO expansion of either",
                ),
            );
        }
    }
    out
}

/// RA001 over one parameter block, with labeled locations.
fn lint_params_finite(params: &Params, label_names: &[&str], which: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = params.n_labels.max(1);
    let mut report = |block: &str, idx: usize, w: f64| {
        let label = label_names.get(idx % n).copied().unwrap_or("?");
        out.push(
            Diagnostic::new(
                "RA001",
                format!("{block} weight for label {label} is {w}"),
                format!("artifact: {which}, {block}[{idx}]"),
            )
            .with_note("a reloaded artifact would quietly regenerate this as NaN"),
        );
    };
    // Cap the reports per block so a fully poisoned model doesn't flood.
    for (name, block) in [
        ("emit", &params.emit),
        ("trans", &params.trans),
        ("start", &params.start),
        ("end", &params.end),
    ] {
        let mut seen = 0;
        for (i, &w) in block.iter().enumerate() {
            if !w.is_finite() {
                report(name, i, w);
                seen += 1;
                if seen >= 3 {
                    break;
                }
            }
        }
    }
    out
}

/// RA003: in a BIO inventory, a transition into `I-X` from anything other
/// than `B-X`/`I-X` is structurally impossible; if the trained weight for
/// an impossible transition is at least as large as every legal one into
/// that label, Viterbi can emit invalid sequences.
fn lint_bio_transitions(params: &Params, names: &[&str], which: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = params.n_labels;
    if params.trans.len() != n * n || names.len() != n {
        return out; // RA004 already covers shape problems.
    }
    for (j, to) in names.iter().enumerate() {
        let Some(entity) = to.strip_prefix("I-") else {
            continue;
        };
        let legal: Vec<usize> = names
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.strip_prefix("B-") == Some(entity) || f.strip_prefix("I-") == Some(entity)
            })
            .map(|(i, _)| i)
            .collect();
        let max_legal = legal
            .iter()
            .map(|&i| params.trans[i * n + j])
            .fold(f64::NEG_INFINITY, f64::max);
        for (i, from) in names.iter().enumerate() {
            if legal.contains(&i) {
                continue;
            }
            let w = params.trans[i * n + j];
            if w >= max_legal {
                out.push(
                    Diagnostic::new(
                        "RA003",
                        format!(
                            "impossible transition {from} -> {to} scores {w:.3}, >= best legal score {max_legal:.3}"
                        ),
                        format!("artifact: {which}, trans[{i},{j}]"),
                    )
                    .with_note("the decoder can emit BIO sequences that no valid entity tiling explains"),
                );
            }
        }
    }
    out
}

/// RA006/RA007 over the POS tagger.
pub fn lint_pos_tagger(pos: &PosTagger) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if pos.model().num_classes() != NUM_TAGS {
        out.push(Diagnostic::new(
            "RA004",
            format!(
                "POS perceptron has {} classes but the Penn tagset has {NUM_TAGS}",
                pos.model().num_classes()
            ),
            "artifact: POS tagger, classes",
        ));
    }
    let mut reported = 0;
    'rows: for (feature, row) in pos.model().weight_rows() {
        for (c, &w) in row.iter().enumerate() {
            if !w.is_finite() {
                out.push(Diagnostic::new(
                    "RA006",
                    format!("weight for feature {feature:?}, class {c} is {w}"),
                    "artifact: POS tagger, weights",
                ));
                reported += 1;
                if reported >= 3 {
                    break 'rows;
                }
            }
        }
    }
    if pos.num_features() == 0 {
        out.push(Diagnostic::new(
            "RA007",
            "POS tagger has no feature rows",
            "artifact: POS tagger, weights",
        ));
    }
    if pos.tagdict_len() == 0 {
        out.push(
            Diagnostic::new(
                "RA007",
                "POS tagger's unambiguous-word dictionary is empty",
                "artifact: POS tagger, tagdict",
            )
            .with_note(
                "every token will go through the perceptron path; accuracy and speed both suffer",
            ),
        );
    }
    out
}

/// RA008 over the dependency parser.
pub fn lint_parser(parser: &DependencyParser) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if parser.transitions().is_empty() {
        out.push(Diagnostic::new(
            "RA008",
            "parser has an empty transition inventory — it cannot parse anything",
            "artifact: parser, transitions",
        ));
    }
    let mut reported = 0;
    'rows: for (feature, row) in parser.model().weight_rows() {
        for (c, &w) in row.iter().enumerate() {
            if !w.is_finite() {
                out.push(Diagnostic::new(
                    "RA008",
                    format!("weight for feature {feature:?}, transition {c} is {w}"),
                    "artifact: parser, weights",
                ));
                reported += 1;
                if reported >= 3 {
                    break 'rows;
                }
            }
        }
    }
    out
}

/// RA009 over the process/utensil dictionaries. When `thresholds` is
/// given, entries whose recorded counts fall below it are flagged.
pub fn lint_dictionaries(
    dicts: &Dictionaries,
    thresholds: Option<(usize, usize)>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (name, set) in [("process", &dicts.processes), ("utensil", &dicts.utensils)] {
        if set.is_empty() {
            out.push(
                Diagnostic::new(
                    "RA009",
                    format!("{name} dictionary is empty"),
                    format!("artifact: dictionaries, {name}"),
                )
                .with_note("event extraction will find no events of this kind"),
            );
        }
    }
    if let Some((process_min, utensil_min)) = thresholds {
        for (name, set, counts, min) in [
            (
                "process",
                &dicts.processes,
                &dicts.process_counts,
                process_min,
            ),
            (
                "utensil",
                &dicts.utensils,
                &dicts.utensil_counts,
                utensil_min,
            ),
        ] {
            for word in set.iter() {
                let count = counts.get(word).copied().unwrap_or(0);
                if count < min {
                    out.push(Diagnostic::new(
                        "RA009",
                        format!(
                            "{name} dictionary entry {word:?} has count {count}, below the threshold {min}"
                        ),
                        format!("artifact: dictionaries, {name}[{word}]"),
                    ));
                }
            }
        }
    }
    out
}

/// Which task a label inventory belongs to.
enum InventoryKind {
    /// Raw tags of one of the two tasks.
    Raw,
    /// BIO expansion of one of the two tasks.
    Bio,
    /// Neither.
    Unknown,
}

fn is_bio(names: &[&str]) -> bool {
    names
        .iter()
        .any(|n| n.starts_with("B-") || n.starts_with("I-"))
}

fn classify_inventory(names: &[&str]) -> InventoryKind {
    let mut sorted: Vec<&str> = names.to_vec();
    sorted.sort_unstable();
    let matches = |inventory: &[String]| {
        let mut inv: Vec<&str> = inventory.iter().map(|s| s.as_str()).collect();
        inv.sort_unstable();
        inv == sorted
    };
    let ingredient: Vec<String> = IngredientTag::ALL.iter().map(|t| t.to_string()).collect();
    let instruction: Vec<String> = InstructionTag::ALL.iter().map(|t| t.to_string()).collect();
    if matches(&ingredient) || matches(&instruction) {
        return InventoryKind::Raw;
    }
    let ing_refs: Vec<&str> = ingredient.iter().map(|s| s.as_str()).collect();
    let ins_refs: Vec<&str> = instruction.iter().map(|s| s.as_str()).collect();
    let ing_bio = recipe_ner::scheme::bio_label_names(&ing_refs, "O");
    let ins_bio = recipe_ner::scheme::bio_label_names(&ins_refs, "O");
    if matches(&ing_bio) || matches(&ins_bio) {
        return InventoryKind::Bio;
    }
    if is_bio(names) {
        // A BIO-looking inventory for some other task: lint transitions
        // anyway, the structure argument still holds.
        return InventoryKind::Bio;
    }
    InventoryKind::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipe_ner::encode::Interner;
    use recipe_ner::labels::LabelSet;

    fn tiny_model(labels: &[&str], n_features: usize) -> SequenceModel {
        let mut interner = Interner::new();
        for i in 0..n_features {
            interner.intern(&format!("f{i}"));
        }
        interner.freeze();
        let params = Params::zeros(n_features, labels.len());
        SequenceModel::from_parts(LabelSet::new(labels), interner, params)
    }

    #[test]
    fn zero_model_is_degenerate_not_invalid() {
        let model = tiny_model(&["O", "NAME"], 4);
        let diags = lint_sequence_model(&model, "test");
        assert!(diags.iter().any(|d| d.code == "RA002"), "{diags:?}");
        assert!(!diags.iter().any(|d| d.code == "RA001"), "{diags:?}");
    }

    #[test]
    fn nan_weight_fires_ra001() {
        let mut model = tiny_model(&["O", "NAME"], 4);
        model.params_mut().emit[3] = f64::NAN;
        let diags = lint_sequence_model(&model, "test");
        assert!(diags.iter().any(|d| d.code == "RA001"), "{diags:?}");
    }

    #[test]
    fn shape_mismatch_fires_ra004() {
        let mut model = tiny_model(&["O", "NAME"], 4);
        model.params_mut().trans.pop();
        let diags = lint_sequence_model(&model, "test");
        assert!(diags.iter().any(|d| d.code == "RA004"), "{diags:?}");
    }

    #[test]
    fn bio_impossible_transition_fires_ra003() {
        // O, B-NAME, I-NAME; make O -> I-NAME the best-scoring way in.
        let mut model = tiny_model(&["O", "B-NAME", "I-NAME"], 2);
        {
            let p = model.params_mut();
            let n = 3;
            p.trans[n * 2 + 2] = 1.0; // O(0) -> I-NAME(2) strong... index math:
                                      // trans[from * n + to]; O=0, B-NAME=1, I-NAME=2.
            p.trans[2] = 5.0; // O -> I-NAME impossible, strong
            p.trans[n + 2] = 1.0; // B-NAME -> I-NAME legal, weaker
            p.trans[2 * n + 2] = 1.0; // I-NAME -> I-NAME legal, weaker
        }
        let diags = lint_sequence_model(&model, "test");
        assert!(diags.iter().any(|d| d.code == "RA003"), "{diags:?}");
    }

    #[test]
    fn healthy_bio_model_passes_ra003() {
        let mut model = tiny_model(&["O", "B-NAME", "I-NAME"], 2);
        {
            let p = model.params_mut();
            let n = 3;
            p.trans[2] = -5.0; // O -> I-NAME suppressed
            p.trans[n + 2] = 2.0;
            p.trans[2 * n + 2] = 2.0;
            p.emit[0] = 0.1; // not degenerate
        }
        let diags = lint_sequence_model(&model, "test");
        assert!(!diags.iter().any(|d| d.code == "RA003"), "{diags:?}");
    }

    #[test]
    fn unknown_inventory_fires_ra010() {
        let model = tiny_model(&["X", "Y"], 2);
        let diags = lint_sequence_model(&model, "test");
        assert!(diags.iter().any(|d| d.code == "RA010"), "{diags:?}");
    }

    #[test]
    fn dictionary_threshold_violations_fire_ra009() {
        let mut dicts = Dictionaries::default();
        dicts.processes.insert("boil".into());
        dicts.process_counts.insert("boil".into(), 3);
        dicts.utensils.insert("pan".into());
        dicts.utensil_counts.insert("pan".into(), 50);
        let diags = lint_dictionaries(&dicts, Some((47, 10)));
        assert!(
            diags
                .iter()
                .any(|d| d.code == "RA009" && d.message.contains("boil")),
            "{diags:?}"
        );
        assert!(
            !diags.iter().any(|d| d.message.contains("\"pan\"")),
            "{diags:?}"
        );
    }
}
