//! An approximate workspace call graph over the parsed items.
//!
//! Edges are resolved *by name* (with an `impl`-type qualifier when the
//! call site spells one), which overapproximates dynamic dispatch and
//! same-named functions — exactly the right bias for lints that must
//! not miss a panic or a nondeterministic source on a serving path.

use crate::items::FileItems;
use crate::lexer::{Lexed, TokenKind};
use std::collections::{BTreeMap, VecDeque};
use std::ops::Range;

/// Identifiers that look like calls but are control flow.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "mut", "where",
    "unsafe", "else", "fn", "impl", "pub", "let", "use", "mod", "dyn", "box", "break", "continue",
    "Some", "Ok", "Err", "None",
];

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (method or function).
    pub name: String,
    /// `Type` in `Type::name(…)` call syntax, when present.
    pub qualifier: Option<String>,
    /// `recv.name(…)` method-call syntax.
    pub is_method: bool,
    /// Token index of the callee name.
    pub token: usize,
    /// 1-based source line.
    pub line: u32,
}

/// Extract the call sites in `body` (a token range of `lexed`).
pub fn call_sites(lexed: &Lexed, body: Range<usize>) -> Vec<CallSite> {
    let mut out = Vec::new();
    for k in body.clone() {
        if lexed.kind(k) != Some(TokenKind::Ident) || !lexed.is_punct(k + 1, '(') {
            continue;
        }
        let name = lexed.text(k);
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let is_method = lexed.is_punct(k.wrapping_sub(1), '.');
        let qualifier = if !is_method
            && k >= 3
            && lexed.is_punct(k - 1, ':')
            && lexed.is_punct(k - 2, ':')
            && lexed.kind(k - 3) == Some(TokenKind::Ident)
        {
            Some(lexed.text(k - 3).to_string())
        } else {
            None
        };
        out.push(CallSite {
            name: name.to_string(),
            qualifier,
            is_method,
            token: k,
            line: lexed.line(k),
        });
    }
    out
}

/// Macro invocations (`name!(…)`, `name![…]`, `name!{…}`) in `body`.
pub fn macro_sites(lexed: &Lexed, body: Range<usize>) -> Vec<CallSite> {
    let mut out = Vec::new();
    for k in body.clone() {
        if lexed.kind(k) == Some(TokenKind::Ident)
            && lexed.is_punct(k + 1, '!')
            && (lexed.is_punct(k + 2, '(')
                || lexed.is_punct(k + 2, '[')
                || lexed.is_punct(k + 2, '{'))
        {
            out.push(CallSite {
                name: lexed.text(k).to_string(),
                qualifier: None,
                is_method: false,
                token: k,
                line: lexed.line(k),
            });
        }
    }
    out
}

/// All parsed files of the workspace.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Parsed files in path order.
    pub files: Vec<FileItems>,
}

/// A function id: index into [`CallGraph::fns`].
pub type FnId = usize;

/// The resolved call graph.
pub struct CallGraph<'w> {
    /// Backing workspace.
    pub ws: &'w Workspace,
    /// Flat function list as `(file index, fn index)`.
    pub fns: Vec<(usize, usize)>,
    /// `edges[f]` = resolved callee ids of `f`, sorted and deduped.
    pub edges: Vec<Vec<FnId>>,
    /// Reverse edges, for "can this reach a sink" queries.
    reverse: Vec<Vec<FnId>>,
}

impl<'w> CallGraph<'w> {
    /// Build the graph: index every non-test fn by name and qualified
    /// name, then resolve each body's call sites.
    pub fn build(ws: &'w Workspace) -> CallGraph<'w> {
        let mut fns = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (ki, _) in file.fns.iter().enumerate() {
                fns.push((fi, ki));
            }
        }
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_qual: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, &(fi, ki)) in fns.iter().enumerate() {
            let f = &ws.files[fi].fns[ki];
            if f.in_test {
                continue; // test fns are never call targets for lint paths
            }
            by_name.entry(f.name.as_str()).or_default().push(id);
            by_qual.entry(f.qual.as_str()).or_default().push(id);
        }
        let mut edges: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
        for (id, &(fi, ki)) in fns.iter().enumerate() {
            let file = &ws.files[fi];
            let f = &file.fns[ki];
            let mut targets = Vec::new();
            for site in call_sites(&file.lexed, f.body.clone()) {
                if let Some(q) = &site.qualifier {
                    let qual = format!("{q}::{}", site.name);
                    if let Some(ids) = by_qual.get(qual.as_str()) {
                        targets.extend_from_slice(ids);
                        continue;
                    }
                }
                if let Some(ids) = by_name.get(site.name.as_str()) {
                    targets.extend_from_slice(ids);
                }
            }
            targets.sort_unstable();
            targets.dedup();
            targets.retain(|t| *t != id);
            edges[id] = targets;
        }
        let mut reverse: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
        for (id, outs) in edges.iter().enumerate() {
            for &t in outs {
                reverse[t].push(id);
            }
        }
        CallGraph {
            ws,
            fns,
            edges,
            reverse,
        }
    }

    /// The file and item behind a function id.
    pub fn item(&self, id: FnId) -> (&FileItems, &crate::items::FnItem) {
        let (fi, ki) = self.fns[id];
        (&self.ws.files[fi], &self.ws.files[fi].fns[ki])
    }

    /// Ids of functions matching a predicate.
    pub fn select(
        &self,
        mut pred: impl FnMut(&FileItems, &crate::items::FnItem) -> bool,
    ) -> Vec<FnId> {
        (0..self.fns.len())
            .filter(|&id| {
                let (file, f) = self.item(id);
                pred(file, f)
            })
            .collect()
    }

    /// Forward closure: every function reachable *from* any root
    /// (roots included).
    pub fn reachable_from(&self, roots: &[FnId]) -> Vec<bool> {
        bfs(&self.edges, roots, self.fns.len())
    }

    /// Backward closure: every function that can *reach* any sink
    /// (sinks included).
    pub fn can_reach(&self, sinks: &[FnId]) -> Vec<bool> {
        bfs(&self.reverse, sinks, self.fns.len())
    }
}

fn bfs(adj: &[Vec<FnId>], starts: &[FnId], n: usize) -> Vec<bool> {
    let mut seen = vec![false; n];
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for &s in starts {
        if s < n && !seen[s] {
            seen[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn ws(srcs: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: srcs.iter().map(|(p, s)| parse_file(p, s)).collect(),
        }
    }

    #[test]
    fn resolves_bare_method_and_qualified_calls() {
        let w = ws(&[(
            "a.rs",
            "\
pub fn entry() { helper(); S::assoc(); obj.finish(); }
fn helper() {}
struct S;
impl S { fn assoc() {} }
struct T;
impl T { fn finish(&self) {} }
",
        )]);
        let g = CallGraph::build(&w);
        let entry = g.select(|_, f| f.name == "entry")[0];
        let callees: Vec<&str> = g.edges[entry]
            .iter()
            .map(|&t| g.item(t).1.qual.as_str())
            .collect();
        assert_eq!(callees, vec!["helper", "S::assoc", "T::finish"]);
    }

    #[test]
    fn reachability_forward_and_backward() {
        let w = ws(&[(
            "a.rs",
            "\
pub fn root() { mid(); }
fn mid() { leaf(); }
fn leaf() {}
fn island() {}
fn sinky() { serialize_out(); }
fn serialize_out() {}
",
        )]);
        let g = CallGraph::build(&w);
        let root = g.select(|_, f| f.name == "root")[0];
        let reach = g.reachable_from(&[root]);
        let name = |id: FnId| g.item(id).1.name.clone();
        let reached: Vec<String> = (0..g.fns.len()).filter(|&i| reach[i]).map(name).collect();
        assert_eq!(reached, vec!["root", "mid", "leaf"]);

        let sink = g.select(|_, f| f.name == "serialize_out")[0];
        let backward = g.can_reach(&[sink]);
        let reaching: Vec<String> = (0..g.fns.len())
            .filter(|&i| backward[i])
            .map(|i| g.item(i).1.name.clone())
            .collect();
        assert_eq!(reaching, vec!["sinky", "serialize_out"]);
    }

    #[test]
    fn test_fns_are_not_call_targets() {
        let w = ws(&[(
            "a.rs",
            "\
pub fn entry() { check(); }
#[cfg(test)]
mod tests {
    fn check() {}
}
",
        )]);
        let g = CallGraph::build(&w);
        let entry = g.select(|_, f| f.name == "entry")[0];
        assert!(g.edges[entry].is_empty());
    }

    #[test]
    fn control_flow_keywords_are_not_calls() {
        let w = ws(&[(
            "a.rs",
            "pub fn f(x: usize) -> usize { if (x > 1) { x } else { (x + 1) } }\n",
        )]);
        let g = CallGraph::build(&w);
        let f = g.select(|_, fi| fi.name == "f")[0];
        assert!(g.edges[f].is_empty());
    }

    #[test]
    fn call_sites_capture_shapes() {
        let lexed = crate::lexer::lex("f(); x.g(); T::h(); mac!(1);");
        let sites = call_sites(&lexed, 0..lexed.tokens.len());
        let shapes: Vec<(String, Option<String>, bool)> = sites
            .iter()
            .map(|s| (s.name.clone(), s.qualifier.clone(), s.is_method))
            .collect();
        assert_eq!(
            shapes,
            vec![
                ("f".to_string(), None, false),
                ("g".to_string(), None, true),
                ("h".to_string(), Some("T".to_string()), false),
            ]
        );
        let macros = macro_sites(&lexed, 0..lexed.tokens.len());
        assert_eq!(macros.len(), 1);
        assert_eq!(macros[0].name, "mac");
    }
}
