//! Source-scan lints: a std-only walk over the workspace's `.rs` files
//! flagging panics-in-library-code and leftover debug markers (`RA3xx`),
//! plus the telemetry-coverage audit (`RA209`) that keeps every public
//! hot-path entry point instrumented with a `recipe_obs` span. No syn,
//! no parsing — a line scanner that understands just enough structure to
//! skip test code.

use crate::diag::Diagnostic;
use std::path::{Path, PathBuf};

/// Directories never scanned (test/bench/example code may unwrap freely;
/// vendored shims are third-party stand-ins).
const SKIP_DIRS: &[&str] = &[
    "target", ".git", "tests", "benches", "examples", "vendor", ".github",
];

// The needles are assembled with `concat!` so the scanner does not flag
// its own pattern table when it scans this file.
const UNWRAP: &str = concat!(".unw", "rap()");
const EXPECT: &str = concat!(".exp", "ect(");
const TODO: &str = concat!("to", "do!(");
const UNIMPLEMENTED: &str = concat!("unimpl", "emented!(");
const DBG: &str = concat!("db", "g!(");

// RA209 body needles: a span site inside an audited entry point.
const SPAN_MACRO: &str = concat!("sp", "an!(");
const OBS_SPAN: &str = concat!("recipe_ob", "s::span");

// RA210 registration-site needles: the opening of a name literal at
// every span/metric/event call. Each includes the opening quote so the
// name can be cut out up to the closing quote.
const NAME_SITES: &[&str] = &[
    concat!("sp", "an!(\""),
    concat!("cou", "nter(\""),
    concat!("gau", "ge(\""),
    concat!("histo", "gram(\""),
    concat!("latency_histo", "gram(\""),
    concat!("count_histo", "gram(\""),
    concat!("ser", "ies(\""),
    concat!("inst", "ant(\""),
];

// RA210 provenance needle: any reference to a provenance helper inside
// an explain-reachable site (module calls and the `record_*_provenance`
// wrappers alike).
const PROVENANCE_CALL: &str = concat!("proven", "ance");

/// Scan every non-test `.rs` file under `root` (expected: workspace root).
pub fn scan_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files);
    files.sort();
    let mut out = Vec::new();
    for f in files {
        if let Ok(content) = std::fs::read_to_string(&f) {
            let rel = f.strip_prefix(root).unwrap_or(&f).display().to_string();
            out.extend(scan_file(&rel, &content));
        }
    }
    out
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rust_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Scan one file's contents. `rel` is the path used in locations.
pub fn scan_file(rel: &str, content: &str) -> Vec<Diagnostic> {
    let mut out = scan_telemetry_coverage(rel, content);
    out.extend(scan_event_names(rel, content));
    out.extend(scan_provenance_coverage(rel, content));
    // Brace-depth tracking for `#[cfg(test)]`-gated blocks: when the
    // attribute appears, everything until its item's closing brace is
    // test code. Good enough for the idiomatic `#[cfg(test)] mod tests`.
    let mut depth: i32 = 0;
    let mut test_block_floor: Option<i32> = None;
    let mut pending_cfg_test = false;

    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let code = strip_comment(line);
        let trimmed = code.trim();

        if trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if pending_cfg_test && test_block_floor.is_none() && trimmed.contains('{') {
            test_block_floor = Some(depth);
            pending_cfg_test = false;
        }

        let in_test = test_block_floor.is_some();
        if !in_test {
            let loc = format!("{rel}:{lineno}");
            if trimmed.contains(UNWRAP) || trimmed.contains(EXPECT) {
                out.push(
                    Diagnostic::new(
                        "RA301",
                        format!("panicking call in library code: `{}`", trimmed.trim()),
                        loc.clone(),
                    )
                    .with_note("prefer a Result or a documented # Panics contract"),
                );
            }
            if trimmed.contains(TODO) || trimmed.contains(UNIMPLEMENTED) {
                out.push(Diagnostic::new(
                    "RA302",
                    "todo!/unimplemented! left in source",
                    loc.clone(),
                ));
            }
            if trimmed.contains(DBG) {
                out.push(Diagnostic::new("RA303", "dbg! left in source", loc));
            }
        }

        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(floor) = test_block_floor {
                        if depth <= floor {
                            test_block_floor = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Names the RA209 telemetry audit treats as instrumented entry points:
/// the runtime-parameterised hot paths (`*_rt`), the extraction and
/// recipe-modelling surface, and the compiled decode/tag kernels.
fn telemetry_entry_point(name: &str) -> bool {
    name.ends_with("_rt")
        || name.starts_with("extract_")
        || name.starts_with("model_recipe")
        || matches!(
            name,
            "model_text" | "decode" | "predict_ids_into" | "tag_into"
        )
}

/// RA209: every matching `pub fn` outside test code must open a
/// `recipe_obs` span somewhere in its body, so the stage tree keeps
/// covering the hot paths as they evolve.
fn scan_telemetry_coverage(rel: &str, content: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    let mut test_block_floor: Option<i32> = None;
    let mut pending_cfg_test = false;
    // A matching `pub fn` whose body brace has not appeared yet.
    let mut pending_fn: Option<(usize, String)> = None;
    // (decl line, name, brace depth before the body) of an open body.
    let mut open_body: Option<(usize, String, i32)> = None;
    let mut body_has_span = false;

    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let code = strip_comment(line);
        let trimmed = code.trim();

        if trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if pending_cfg_test && test_block_floor.is_none() && trimmed.contains('{') {
            test_block_floor = Some(depth);
            pending_cfg_test = false;
        }

        if test_block_floor.is_none() && pending_fn.is_none() && open_body.is_none() {
            if let Some(pos) = code.find("pub fn ") {
                let name: String = code[pos + "pub fn ".len()..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if telemetry_entry_point(&name) {
                    pending_fn = Some((lineno, name));
                }
            }
        }
        if open_body.is_none() {
            if let Some((decl_line, name)) = pending_fn.take() {
                if code.contains('{') {
                    open_body = Some((decl_line, name, depth));
                    body_has_span = false;
                } else if trimmed.ends_with(';') {
                    // Bodyless signature (trait declaration): not audited.
                } else {
                    pending_fn = Some((decl_line, name));
                }
            }
        }
        if open_body.is_some() && (code.contains(SPAN_MACRO) || code.contains(OBS_SPAN)) {
            body_has_span = true;
        }

        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(floor) = test_block_floor {
                        if depth <= floor {
                            test_block_floor = None;
                        }
                    }
                    if let Some((decl_line, name, floor)) = &open_body {
                        if depth <= *floor {
                            if !body_has_span {
                                out.push(
                                    Diagnostic::new(
                                        "RA209",
                                        format!(
                                            "public entry point `{name}` opens no tracing span"
                                        ),
                                        format!("{rel}:{decl_line}"),
                                    )
                                    .with_note(
                                        "open a span first: `let _span = \
                                         recipe_obs::span!(\"stage.name\");`",
                                    ),
                                );
                            }
                            open_body = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// RA210 name hygiene: lowercase dot-separated segments of
/// `[a-z0-9_]+`, so timelines and metric reports group consistently.
fn hygienic_event_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// RA210 (names): every name literal handed to a span/metric/instant
/// registration site must be hygienic. Test code may use throwaway
/// names freely.
fn scan_event_names(rel: &str, content: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    let mut test_block_floor: Option<i32> = None;
    let mut pending_cfg_test = false;

    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let code = strip_comment(line);
        let trimmed = code.trim();

        if trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if pending_cfg_test && test_block_floor.is_none() && trimmed.contains('{') {
            test_block_floor = Some(depth);
            pending_cfg_test = false;
        }

        if test_block_floor.is_none() {
            // Name-literal start offsets; overlapping needles (e.g. the
            // plain and latency histogram sites) land on the same
            // offset and are deduplicated.
            let mut starts: Vec<usize> = Vec::new();
            for needle in NAME_SITES {
                starts.extend(code.match_indices(needle).map(|(p, _)| p + needle.len()));
            }
            starts.sort_unstable();
            starts.dedup();
            for start in starts {
                let Some(len) = code[start..].find('"') else {
                    continue;
                };
                let name = &code[start..start + len];
                if !hygienic_event_name(name) {
                    out.push(
                        Diagnostic::new(
                            "RA210",
                            format!("event name {name:?} is not lowercase dot-separated"),
                            format!("{rel}:{lineno}"),
                        )
                        .with_note(
                            "name spans/metrics/instants with dot-joined [a-z0-9_] segments, \
                             e.g. `ner.decode.tokens`",
                        ),
                    );
                }
            }
        }

        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(floor) = test_block_floor {
                        if depth <= floor {
                            test_block_floor = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Names the RA210 provenance audit treats as explain-reachable
/// decision sites: the compiled decode/tag kernels, the event-frame
/// filter, and every memoized lookup (`*_memo`). Each must reference a
/// provenance helper so `--explain` keeps covering the decisions that
/// shape its output.
fn provenance_site(name: &str) -> bool {
    name.ends_with("_memo") || matches!(name, "viterbi_into" | "tag_into" | "events_from_analysis")
}

/// RA210 (coverage): every explain-reachable decision site outside test
/// code must mention a provenance helper somewhere in its body.
fn scan_provenance_coverage(rel: &str, content: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    let mut test_block_floor: Option<i32> = None;
    let mut pending_cfg_test = false;
    // A matching `fn` whose body brace has not appeared yet.
    let mut pending_fn: Option<(usize, String)> = None;
    // (decl line, name, brace depth before the body) of an open body.
    let mut open_body: Option<(usize, String, i32)> = None;
    let mut body_has_provenance = false;

    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let code = strip_comment(line);
        let trimmed = code.trim();

        if trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if pending_cfg_test && test_block_floor.is_none() && trimmed.contains('{') {
            test_block_floor = Some(depth);
            pending_cfg_test = false;
        }

        if test_block_floor.is_none() && pending_fn.is_none() && open_body.is_none() {
            if let Some(name) = fn_decl_name(code) {
                if provenance_site(&name) {
                    pending_fn = Some((lineno, name));
                }
            }
        }
        if open_body.is_none() {
            if let Some((decl_line, name)) = pending_fn.take() {
                if code.contains('{') {
                    open_body = Some((decl_line, name, depth));
                    body_has_provenance = false;
                } else if trimmed.ends_with(';') {
                    // Bodyless signature (trait declaration): not audited.
                } else {
                    pending_fn = Some((decl_line, name));
                }
            }
        }
        if open_body.is_some() && code.contains(PROVENANCE_CALL) {
            body_has_provenance = true;
        }

        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(floor) = test_block_floor {
                        if depth <= floor {
                            test_block_floor = None;
                        }
                    }
                    if let Some((decl_line, name, floor)) = &open_body {
                        if depth <= *floor {
                            if !body_has_provenance {
                                out.push(
                                    Diagnostic::new(
                                        "RA210",
                                        format!(
                                            "explain-reachable decision site `{name}` records \
                                             no provenance"
                                        ),
                                        format!("{rel}:{decl_line}"),
                                    )
                                    .with_note(
                                        "record the decision when \
                                         recipe_obs::provenance::enabled(), so `--explain` \
                                         keeps seeing it",
                                    ),
                                );
                            }
                            open_body = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// The name of a `fn` declared on this line (any visibility), if one is.
fn fn_decl_name(code: &str) -> Option<String> {
    let mut from = 0usize;
    while let Some(rel) = code[from..].find("fn ") {
        let pos = from + rel;
        let boundary_ok = pos == 0
            || code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| !c.is_alphanumeric() && c != '_');
        if boundary_ok {
            let name: String = code[pos + 3..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        from = pos + 3;
    }
    None
}

/// Drop a trailing `// ...` comment (naive: ignores `//` inside strings,
/// which only risks under-reporting on a line that both has a panicking
/// call and embeds `//` in a literal before it).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_outside_tests() {
        let src = "fn f() {\n    let x = y.unwrap();\n}\n";
        let diags = scan_file("lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RA301");
        assert_eq!(diags[0].location, "lib.rs:2");
    }

    #[test]
    fn ignores_unwrap_inside_cfg_test_module() {
        let src = "\
fn f() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = y.unwrap();
        assert!(todo_marker());
    }
}
fn g() { h.expect(\"boom\"); }
";
        let diags = scan_file("lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].location, "lib.rs:10");
    }

    #[test]
    fn flags_todo_and_dbg() {
        let src = "fn f() {\n    todo!(\"later\");\n    dbg!(x);\n}\n";
        let diags = scan_file("m.rs", src);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"RA302"));
        assert!(codes.contains(&"RA303"));
    }

    #[test]
    fn comments_do_not_fire() {
        let src = "fn f() {\n    // x.unwrap() would be wrong here\n}\n";
        assert!(scan_file("m.rs", src).is_empty());
    }

    #[test]
    fn flags_uninstrumented_entry_point() {
        let src = "\
impl M {
    pub fn decode(&self, xs: &[u32]) -> Vec<usize> {
        xs.iter().map(|x| *x as usize).collect()
    }
}
";
        let diags = scan_file("m.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "RA209");
        assert_eq!(diags[0].location, "m.rs:2");
        assert!(diags[0].message.contains("decode"), "{diags:?}");
    }

    #[test]
    fn span_macro_satisfies_telemetry_coverage() {
        let src = "\
pub fn minimize_rt(x: &mut [f64]) -> f64 {
    let _span = recipe_obs::span!(\"opt.minimize\");
    x.iter().sum()
}
pub fn model_text(t: &str) -> usize {
    let _g = span!(\"pipeline.model_text\");
    t.len()
}
";
        assert!(scan_file("m.rs", src).is_empty());
    }

    #[test]
    fn telemetry_coverage_skips_tests_traits_and_other_fns() {
        let src = "\
pub trait Decoder {
    fn decode(&self) -> usize;
}
pub fn helper(x: usize) -> usize { x }
#[cfg(test)]
mod tests {
    pub fn extract_everything() -> usize { 7 }
}
";
        assert!(
            scan_file("m.rs", src).is_empty(),
            "{:?}",
            scan_file("m.rs", src)
        );
    }

    #[test]
    fn flags_unhygienic_event_names() {
        let src = format!(
            "fn f() {{\n    let _s = recipe_obs::{}\"Mix.Phase\");\n}}\n",
            concat!("sp", "an!(")
        );
        let diags = scan_file("m.rs", &src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "RA210");
        assert!(diags[0].message.contains("Mix.Phase"), "{diags:?}");

        for bad in ["ner..decode", "ner-decode", "", "ner.decode "] {
            let src = format!(
                "fn f() {{\n    reg.{}\"{bad}\");\n}}\n",
                concat!("cou", "nter(")
            );
            let diags = scan_file("m.rs", &src);
            assert_eq!(diags.len(), 1, "{bad:?}: {diags:?}");
            assert_eq!(diags[0].code, "RA210");
        }
    }

    #[test]
    fn hygienic_event_names_pass_and_tests_are_exempt() {
        let src = format!(
            "fn f() {{\n    let _s = {span}\"events.sentence\");\n    \
             reg.{lat}\"latency.phrase_s\");\n}}\n\
             #[cfg(test)]\nmod tests {{\n    fn t() {{ reg.{ctr}\"X\"); }}\n}}\n",
            span = concat!("sp", "an!("),
            lat = concat!("latency_histo", "gram("),
            ctr = concat!("cou", "nter(")
        );
        assert!(
            scan_file("m.rs", &src).is_empty(),
            "{:?}",
            scan_file("m.rs", &src)
        );
    }

    #[test]
    fn flags_provenance_free_decision_sites() {
        let src = "\
fn viterbi_into(xs: &[u32]) -> usize {
    xs.len()
}
pub fn lookup_memo(k: &str) -> usize {
    k.len()
}
";
        let diags = scan_file("m.rs", src);
        let ra210: Vec<_> = diags.iter().filter(|d| d.code == "RA210").collect();
        assert_eq!(ra210.len(), 2, "{diags:?}");
        assert!(ra210[0].message.contains("viterbi_into"), "{diags:?}");
        assert!(ra210[1].message.contains("lookup_memo"), "{diags:?}");
    }

    #[test]
    fn provenance_calls_satisfy_the_coverage_audit() {
        let src = "\
fn tag_into(xs: &[u32]) -> usize {
    let explain = recipe_obs::provenance::enabled();
    xs.len() + explain as usize
}
fn entry_memo(k: &str) -> usize {
    record_cache_provenance(\"cache.ingredient\", k, \"hit\");
    k.len()
}
fn other_helper(k: &str) -> usize {
    k.len()
}
";
        assert!(
            scan_file("m.rs", src).is_empty(),
            "{:?}",
            scan_file("m.rs", src)
        );
    }

    #[test]
    fn multiline_signature_is_audited() {
        let src = "\
pub fn extract_sentence_events(
    a: usize,
    b: usize,
) -> usize {
    a + b
}
";
        let diags = scan_file("m.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "RA209");
        assert_eq!(diags[0].location, "m.rs:1");
    }
}
