//! Source-scan lints (`RA3xx`): a std-only walk over the workspace's
//! `.rs` files flagging panics-in-library-code and leftover debug
//! markers. No syn, no parsing — a line scanner that understands just
//! enough structure to skip test code.

use crate::diag::Diagnostic;
use std::path::{Path, PathBuf};

/// Directories never scanned (test/bench/example code may unwrap freely;
/// vendored shims are third-party stand-ins).
const SKIP_DIRS: &[&str] = &[
    "target", ".git", "tests", "benches", "examples", "vendor", ".github",
];

// The needles are assembled with `concat!` so the scanner does not flag
// its own pattern table when it scans this file.
const UNWRAP: &str = concat!(".unw", "rap()");
const EXPECT: &str = concat!(".exp", "ect(");
const TODO: &str = concat!("to", "do!(");
const UNIMPLEMENTED: &str = concat!("unimpl", "emented!(");
const DBG: &str = concat!("db", "g!(");

/// Scan every non-test `.rs` file under `root` (expected: workspace root).
pub fn scan_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files);
    files.sort();
    let mut out = Vec::new();
    for f in files {
        if let Ok(content) = std::fs::read_to_string(&f) {
            let rel = f.strip_prefix(root).unwrap_or(&f).display().to_string();
            out.extend(scan_file(&rel, &content));
        }
    }
    out
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rust_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Scan one file's contents. `rel` is the path used in locations.
pub fn scan_file(rel: &str, content: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Brace-depth tracking for `#[cfg(test)]`-gated blocks: when the
    // attribute appears, everything until its item's closing brace is
    // test code. Good enough for the idiomatic `#[cfg(test)] mod tests`.
    let mut depth: i32 = 0;
    let mut test_block_floor: Option<i32> = None;
    let mut pending_cfg_test = false;

    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let code = strip_comment(line);
        let trimmed = code.trim();

        if trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if pending_cfg_test && test_block_floor.is_none() && trimmed.contains('{') {
            test_block_floor = Some(depth);
            pending_cfg_test = false;
        }

        let in_test = test_block_floor.is_some();
        if !in_test {
            let loc = format!("{rel}:{lineno}");
            if trimmed.contains(UNWRAP) || trimmed.contains(EXPECT) {
                out.push(
                    Diagnostic::new(
                        "RA301",
                        format!("panicking call in library code: `{}`", trimmed.trim()),
                        loc.clone(),
                    )
                    .with_note("prefer a Result or a documented # Panics contract"),
                );
            }
            if trimmed.contains(TODO) || trimmed.contains(UNIMPLEMENTED) {
                out.push(Diagnostic::new(
                    "RA302",
                    "todo!/unimplemented! left in source",
                    loc.clone(),
                ));
            }
            if trimmed.contains(DBG) {
                out.push(Diagnostic::new("RA303", "dbg! left in source", loc));
            }
        }

        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(floor) = test_block_floor {
                        if depth <= floor {
                            test_block_floor = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Drop a trailing `// ...` comment (naive: ignores `//` inside strings,
/// which only risks under-reporting on a line that both has a panicking
/// call and embeds `//` in a literal before it).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_outside_tests() {
        let src = "fn f() {\n    let x = y.unwrap();\n}\n";
        let diags = scan_file("lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RA301");
        assert_eq!(diags[0].location, "lib.rs:2");
    }

    #[test]
    fn ignores_unwrap_inside_cfg_test_module() {
        let src = "\
fn f() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = y.unwrap();
        assert!(todo_marker());
    }
}
fn g() { h.expect(\"boom\"); }
";
        let diags = scan_file("lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].location, "lib.rs:10");
    }

    #[test]
    fn flags_todo_and_dbg() {
        let src = "fn f() {\n    todo!(\"later\");\n    dbg!(x);\n}\n";
        let diags = scan_file("m.rs", src);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"RA302"));
        assert!(codes.contains(&"RA303"));
    }

    #[test]
    fn comments_do_not_fire() {
        let src = "fn f() {\n    // x.unwrap() would be wrong here\n}\n";
        assert!(scan_file("m.rs", src).is_empty());
    }
}
