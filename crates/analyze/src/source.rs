//! Source-scan lints, re-hosted on the real lexer ([`crate::lexer`]) and
//! item parser ([`crate::items`]): panics-in-library-code and leftover
//! debug markers (`RA3xx`), the telemetry-coverage audit (`RA209`), the
//! event-name/provenance hygiene audit (`RA210`), and — through
//! [`crate::dataflow`] — the token-level dataflow lints (`RA4xx`).
//!
//! Because every pass works on tokens, needles inside string literals,
//! raw strings, char literals and (nested) block comments can no longer
//! produce false positives; the old line scanner's `concat!` needle
//! obfuscation is gone for the same reason.

use crate::callgraph::{macro_sites, Workspace};
use crate::diag::Diagnostic;
use crate::items::{parse_file, FileItems};
use crate::lexer::TokenKind;
use std::path::{Path, PathBuf};

/// Directories never scanned (test/bench/example code may unwrap freely;
/// vendored shims are third-party stand-ins).
const SKIP_DIRS: &[&str] = &[
    "target", ".git", "tests", "benches", "examples", "vendor", ".github",
];

/// Parse every non-test `.rs` file under `root` into a [`Workspace`].
pub fn parse_workspace(root: &Path) -> Workspace {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files);
    files.sort();
    let mut ws = Workspace::default();
    for f in files {
        if let Ok(content) = std::fs::read_to_string(&f) {
            let rel = f.strip_prefix(root).unwrap_or(&f).display().to_string();
            ws.files.push(parse_file(&rel, &content));
        }
    }
    ws
}

/// Scan every non-test `.rs` file under `root` (expected: workspace
/// root): per-file `RA3xx`/`RA209`/`RA210` plus the cross-file `RA4xx`
/// dataflow lints.
pub fn scan_workspace(root: &Path) -> Vec<Diagnostic> {
    let ws = parse_workspace(root);
    let mut out = Vec::new();
    for file in &ws.files {
        out.extend(scan_items(file));
    }
    out.extend(crate::dataflow::lint_dataflow(&ws));
    out
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rust_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Scan one file's contents (`rel` is the path used in locations),
/// treating it as a one-file workspace for the dataflow lints. Library
/// callers with many files should use [`scan_workspace`] so the call
/// graph sees cross-file edges.
pub fn scan_file(rel: &str, content: &str) -> Vec<Diagnostic> {
    let mut ws = Workspace::default();
    ws.files.push(parse_file(rel, content));
    let mut out = scan_items(&ws.files[0]);
    out.extend(crate::dataflow::lint_dataflow(&ws));
    out
}

/// Whether the token at `k` is inside test code (a `#[cfg(test)]` /
/// `#[test]` function body). Tokens outside any function body count as
/// library code.
fn in_test_code(file: &FileItems, k: usize) -> bool {
    file.enclosing_fn(k).is_some_and(|f| f.in_test)
}

/// The trimmed source line a token sits on, for diagnostics messages.
fn line_text(file: &FileItems, line: u32) -> &str {
    file.lexed
        .src
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim()
}

/// Per-file passes: `RA301`–`RA303`, `RA209`, `RA210`.
fn scan_items(file: &FileItems) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let lexed = &file.lexed;
    let n = lexed.tokens.len();

    // RA301: `.unwrap()` / `.expect(` in non-test code.
    for k in 0..n {
        if lexed.kind(k) != Some(TokenKind::Ident) || !lexed.is_punct(k + 1, '(') {
            continue;
        }
        let name = lexed.text(k);
        if (name == "unwrap" || name == "expect")
            && lexed.is_punct(k.wrapping_sub(1), '.')
            && !in_test_code(file, k)
        {
            let line = lexed.line(k);
            out.push(
                Diagnostic::new(
                    "RA301",
                    format!(
                        "panicking call in library code: `{}`",
                        line_text(file, line)
                    ),
                    format!("{}:{line}", file.file),
                )
                .with_note("prefer a Result or a documented # Panics contract"),
            );
        }
    }

    // RA302 / RA303: leftover macros.
    for site in macro_sites(lexed, 0..n) {
        if in_test_code(file, site.token) {
            continue;
        }
        let loc = format!("{}:{}", file.file, site.line);
        match site.name.as_str() {
            "todo" | "unimplemented" => out.push(Diagnostic::new(
                "RA302",
                "todo!/unimplemented! left in source",
                loc,
            )),
            "dbg" => out.push(Diagnostic::new("RA303", "dbg! left in source", loc)),
            _ => {}
        }
    }

    // RA209: telemetry coverage of public hot-path entry points.
    for f in &file.fns {
        if f.in_test || !f.is_pub || f.body.is_empty() || !telemetry_entry_point(&f.name) {
            continue;
        }
        let has_span = macro_sites(lexed, f.body.clone())
            .iter()
            .any(|m| m.name == "span")
            || f.body.clone().any(|k| {
                lexed.is_ident(k, "span")
                    && (lexed.is_punct(k.wrapping_sub(1), ':') || lexed.is_punct(k + 1, '!'))
            });
        if !has_span {
            out.push(
                Diagnostic::new(
                    "RA209",
                    format!("public entry point `{}` opens no tracing span", f.name),
                    format!("{}:{}", file.file, f.line),
                )
                .with_note("open a span first: `let _span = recipe_obs::span!(\"stage.name\");`"),
            );
        }
    }

    // RA210 (names): string literals handed to span/metric/instant
    // registration sites must be lowercase dot-separated.
    for k in 0..n {
        if lexed.kind(k) != Some(TokenKind::Ident) || in_test_code(file, k) {
            continue;
        }
        let name = lexed.text(k);
        let lit = if name == "span" && lexed.is_punct(k + 1, '!') && lexed.is_punct(k + 2, '(') {
            k + 3
        } else if NAME_SITES.contains(&name) && lexed.is_punct(k + 1, '(') {
            k + 2
        } else {
            continue;
        };
        if lexed.kind(lit) != Some(TokenKind::StrLit) {
            continue;
        }
        let text = lexed.text(lit);
        let event_name = text.get(1..text.len().saturating_sub(1)).unwrap_or("");
        if !hygienic_event_name(event_name) {
            out.push(
                Diagnostic::new(
                    "RA210",
                    format!("event name {event_name:?} is not lowercase dot-separated"),
                    format!("{}:{}", file.file, lexed.line(lit)),
                )
                .with_note(
                    "name spans/metrics/instants with dot-joined [a-z0-9_] segments, \
                     e.g. `ner.decode.tokens`",
                ),
            );
        }
    }

    // RA210 (coverage): explain-reachable decision sites must record
    // provenance somewhere in their bodies.
    for f in &file.fns {
        if f.in_test || f.body.is_empty() || !provenance_site(&f.name) {
            continue;
        }
        let has_provenance = f.body.clone().any(|k| {
            lexed.kind(k) == Some(TokenKind::Ident) && lexed.text(k).contains("provenance")
        });
        if !has_provenance {
            out.push(
                Diagnostic::new(
                    "RA210",
                    format!(
                        "explain-reachable decision site `{}` records no provenance",
                        f.name
                    ),
                    format!("{}:{}", file.file, f.line),
                )
                .with_note(
                    "record the decision when recipe_obs::provenance::enabled(), so \
                     `--explain` keeps seeing it",
                ),
            );
        }
    }

    out
}

/// Metric/instant registration methods whose first argument is an event
/// name literal (the `span!` macro is handled separately).
const NAME_SITES: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "latency_histogram",
    "count_histogram",
    "series",
    "instant",
];

/// Names the RA209 telemetry audit treats as instrumented entry points:
/// the runtime-parameterised hot paths (`*_rt`), the extraction and
/// recipe-modelling surface, and the compiled decode/tag kernels.
fn telemetry_entry_point(name: &str) -> bool {
    name.ends_with("_rt")
        || name.starts_with("extract_")
        || name.starts_with("model_recipe")
        || matches!(
            name,
            "model_text" | "decode" | "predict_ids_into" | "tag_into"
        )
}

/// RA210 name hygiene: lowercase dot-separated segments of `[a-z0-9_]+`,
/// so timelines and metric reports group consistently.
fn hygienic_event_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Names the RA210 provenance audit treats as explain-reachable decision
/// sites: the compiled decode/tag kernels, the event-frame filter, and
/// every memoized lookup (`*_memo`).
fn provenance_site(name: &str) -> bool {
    name.ends_with("_memo") || matches!(name, "viterbi_into" | "tag_into" | "events_from_analysis")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_outside_tests() {
        let src = "fn f() {\n    let x = y.unwrap();\n}\n";
        let diags = scan_file("lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RA301");
        assert_eq!(diags[0].location, "lib.rs:2");
    }

    #[test]
    fn ignores_unwrap_inside_cfg_test_module() {
        let src = "\
fn f() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = y.unwrap();
        assert!(todo_marker());
    }
}
fn g() { h.expect(\"boom\"); }
";
        let diags = scan_file("lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].location, "lib.rs:10");
    }

    #[test]
    fn flags_todo_and_dbg() {
        let src = "fn f() {\n    todo!(\"later\");\n    dbg!(x);\n}\n";
        let diags = scan_file("m.rs", src);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"RA302"));
        assert!(codes.contains(&"RA303"));
    }

    #[test]
    fn comments_do_not_fire() {
        let src = "fn f() {\n    // x.unwrap() would be wrong here\n}\n";
        assert!(scan_file("m.rs", src).is_empty());
    }

    #[test]
    fn string_literals_do_not_fire() {
        // The regression class the lexer re-host fixes: needles inside
        // string literals, raw strings and block comments.
        let src = r####"
fn f() -> String {
    let msg = "call x.unwrap() then todo!(later) and dbg!(x)";
    let raw = r#"even .expect("here") is fine"#;
    /* and todo!()
       inside /* nested */ block comments */
    format!("{msg}{raw}")
}
"####;
        assert!(
            scan_file("m.rs", src).is_empty(),
            "{:?}",
            scan_file("m.rs", src)
        );
    }

    #[test]
    fn flags_uninstrumented_entry_point() {
        let src = "\
impl M {
    pub fn decode(&self, xs: &[u32]) -> Vec<usize> {
        xs.iter().map(|x| *x as usize).collect()
    }
}
";
        let diags = scan_file("m.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "RA209");
        assert_eq!(diags[0].location, "m.rs:2");
        assert!(diags[0].message.contains("decode"), "{diags:?}");
    }

    #[test]
    fn span_macro_satisfies_telemetry_coverage() {
        let src = "\
pub fn minimize_rt(x: &mut [f64]) -> f64 {
    let _span = recipe_obs::span!(\"opt.minimize\");
    x.iter().sum()
}
pub fn model_text(t: &str) -> usize {
    let _g = span!(\"pipeline.model_text\");
    t.len()
}
";
        assert!(scan_file("m.rs", src).is_empty());
    }

    #[test]
    fn telemetry_coverage_skips_tests_traits_and_other_fns() {
        let src = "\
pub trait Decoder {
    fn decode(&self) -> usize;
}
pub fn helper(x: usize) -> usize { x }
#[cfg(test)]
mod tests {
    pub fn extract_everything() -> usize { 7 }
}
";
        assert!(
            scan_file("m.rs", src).is_empty(),
            "{:?}",
            scan_file("m.rs", src)
        );
    }

    #[test]
    fn a_span_mentioned_in_a_string_does_not_satisfy_ra209() {
        let src = "\
pub fn decode(xs: &[u32]) -> usize {
    let _hint = \"recipe_obs::span!(\\\"x\\\") would go here\";
    xs.len()
}
";
        let diags = scan_file("m.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "RA209");
    }

    #[test]
    fn flags_unhygienic_event_names() {
        let src = "fn f() {\n    let _s = recipe_obs::span!(\"Mix.Phase\");\n}\n";
        let diags = scan_file("m.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "RA210");
        assert!(diags[0].message.contains("Mix.Phase"), "{diags:?}");

        for bad in ["ner..decode", "ner-decode", "", "ner.decode "] {
            let src = format!("fn f() {{\n    reg.counter(\"{bad}\");\n}}\n");
            let diags = scan_file("m.rs", &src);
            assert_eq!(diags.len(), 1, "{bad:?}: {diags:?}");
            assert_eq!(diags[0].code, "RA210");
        }
    }

    #[test]
    fn hygienic_event_names_pass_and_tests_are_exempt() {
        let src = "\
fn f() {
    let _s = span!(\"events.sentence\");
    reg.latency_histogram(\"latency.phrase_s\");
}
#[cfg(test)]
mod tests {
    fn t() { reg.counter(\"X\"); }
}
";
        assert!(
            scan_file("m.rs", src).is_empty(),
            "{:?}",
            scan_file("m.rs", src)
        );
    }

    #[test]
    fn flags_provenance_free_decision_sites() {
        let src = "\
fn viterbi_into(xs: &[u32]) -> usize {
    xs.len()
}
pub fn lookup_memo(k: &str) -> usize {
    k.len()
}
";
        let diags = scan_file("m.rs", src);
        let ra210: Vec<_> = diags.iter().filter(|d| d.code == "RA210").collect();
        assert_eq!(ra210.len(), 2, "{diags:?}");
        assert!(ra210[0].message.contains("viterbi_into"), "{diags:?}");
        assert!(ra210[1].message.contains("lookup_memo"), "{diags:?}");
    }

    #[test]
    fn provenance_calls_satisfy_the_coverage_audit() {
        let src = "\
fn tag_into(xs: &[u32]) -> usize {
    let explain = recipe_obs::provenance::enabled();
    xs.len() + explain as usize
}
fn entry_memo(k: &str) -> usize {
    record_cache_provenance(\"cache.ingredient\", k, \"hit\");
    k.len()
}
fn other_helper(k: &str) -> usize {
    k.len()
}
";
        assert!(
            scan_file("m.rs", src).is_empty(),
            "{:?}",
            scan_file("m.rs", src)
        );
    }

    #[test]
    fn multiline_signature_is_audited() {
        let src = "\
pub fn extract_sentence_events(
    a: usize,
    b: usize,
) -> usize {
    a + b
}
";
        let diags = scan_file("m.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "RA209");
        assert_eq!(diags[0].location, "m.rs:1");
    }
}
