//! SARIF 2.1.0 output: the interchange format GitHub code scanning and
//! most lint dashboards ingest.
//!
//! One run per document, with the full rule registry in
//! `tool.driver.rules` (so viewers can show names/summaries even for
//! rules with no findings), one `result` per diagnostic, and the stable
//! content fingerprint under `partialFingerprints` so ingesting tools
//! track findings across line drift exactly like the local baseline
//! ([`crate::baseline`]) does.

use crate::diag::{sort_diagnostics, Diagnostic, Severity, RULES};
use serde_json::{json, Value};

/// SARIF schema URI for 2.1.0.
pub const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Key under `partialFingerprints` carrying the content fingerprint.
/// Versioned so the hashing scheme can evolve without colliding.
pub const FINGERPRINT_KEY: &str = "recipeAnalyze/v1";

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Note => "note",
    }
}

/// Render a diagnostic set as a SARIF 2.1.0 document.
pub fn render_sarif(diags: &[Diagnostic]) -> Value {
    let mut diags = diags.to_vec();
    sort_diagnostics(&mut diags);

    let rules: Vec<Value> = RULES
        .iter()
        .map(|r| {
            json!({
                "id": r.code,
                "name": r.name,
                "shortDescription": { "text": r.summary },
                "defaultConfiguration": { "level": level(r.default_severity) },
            })
        })
        .collect();

    let results: Vec<Value> = diags
        .iter()
        .map(|d| {
            let rule_index = RULES.iter().position(|r| r.code == d.code);
            let location = if d.line() > 0 {
                json!({
                    "physicalLocation": {
                        "artifactLocation": { "uri": d.file() },
                        "region": { "startLine": d.line() },
                    }
                })
            } else {
                // Artifact/corpus/invariant findings have logical
                // locations ("artifact: ingredient NER, emit[172]"),
                // not files.
                let name = json!({ "fullyQualifiedName": d.location });
                json!({ "logicalLocations": [name] })
            };
            let mut fields = vec![
                ("ruleId".to_string(), json!(d.code)),
                ("level".to_string(), json!(level(d.severity))),
                ("message".to_string(), json!({ "text": render_message(d) })),
                ("locations".to_string(), Value::Array(vec![location])),
                (
                    "partialFingerprints".to_string(),
                    // The key is a constant, which the `json!` shim's
                    // object form cannot splice — build it directly.
                    Value::Object(vec![(FINGERPRINT_KEY.to_string(), json!(d.fingerprint()))]),
                ),
            ];
            if let Some(ix) = rule_index {
                fields.insert(1, ("ruleIndex".to_string(), json!(ix)));
            }
            Value::Object(fields)
        })
        .collect();

    let run = json!({
        "tool": {
            "driver": {
                "name": "recipe-analyze",
                "version": env!("CARGO_PKG_VERSION"),
                "informationUri": "https://github.com/oasis-tcs/sarif-spec",
                "rules": rules,
            }
        },
        "results": results,
    });
    json!({
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [run],
    })
}

/// SARIF has no `notes` side channel; fold them into the message.
fn render_message(d: &Diagnostic) -> String {
    if d.notes.is_empty() {
        d.message.clone()
    } else {
        let mut text = d.message.clone();
        for n in &d.notes {
            text.push_str("; note: ");
            text.push_str(n);
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(
                "RA301",
                "panicking call in library code: `x.unwrap();`",
                "a.rs:10",
            )
            .with_note("prefer a Result"),
            Diagnostic::new(
                "RA001",
                "emission weight for label NAME is NaN",
                "artifact: ingredient NER, emit[172]",
            ),
        ]
    }

    #[test]
    fn document_shape_is_sarif_2_1_0() {
        let v = render_sarif(&sample());
        assert_eq!(v["version"], "2.1.0");
        assert_eq!(v["runs"].as_array().unwrap().len(), 1);
        let driver = &v["runs"][0]["tool"]["driver"];
        assert_eq!(driver["name"], "recipe-analyze");
        assert_eq!(
            driver["rules"].as_array().unwrap().len(),
            RULES.len(),
            "every registry rule is described"
        );
    }

    #[test]
    fn file_locations_are_physical_and_artifact_locations_logical() {
        let v = render_sarif(&sample());
        let results = v["runs"][0]["results"].as_array().unwrap();
        assert_eq!(results.len(), 2);
        // Sorted by (file, line, code): "a.rs" sorts before the
        // artifact lint's "artifact: …" location string.
        let artifact = &results[1];
        assert_eq!(artifact["ruleId"], "RA001");
        assert!(artifact["locations"][0].get("physicalLocation").is_none());
        assert_eq!(
            artifact["locations"][0]["logicalLocations"][0]["fullyQualifiedName"],
            "artifact: ingredient NER, emit[172]"
        );
        let source = &results[0];
        assert_eq!(source["ruleId"], "RA301");
        assert_eq!(
            source["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
            "a.rs"
        );
        assert_eq!(
            source["locations"][0]["physicalLocation"]["region"]["startLine"],
            10
        );
    }

    #[test]
    fn results_carry_fingerprints_and_folded_notes() {
        let v = render_sarif(&sample());
        let results = v["runs"][0]["results"].as_array().unwrap();
        for r in results {
            let fp = r["partialFingerprints"][FINGERPRINT_KEY].as_str().unwrap();
            assert_eq!(fp.len(), 16);
            assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
        }
        let with_note = results.iter().find(|r| r["ruleId"] == "RA301").unwrap();
        let text = with_note["message"]["text"].as_str().unwrap();
        assert!(text.contains("note: prefer a Result"), "{text}");
    }

    #[test]
    fn levels_map_to_sarif_levels() {
        let v = render_sarif(&sample());
        let results = v["runs"][0]["results"].as_array().unwrap();
        let ra001 = results.iter().find(|r| r["ruleId"] == "RA001").unwrap();
        assert_eq!(ra001["level"], "error");
        let ra301 = results.iter().find(|r| r["ruleId"] == "RA301").unwrap();
        assert_eq!(ra301["level"], "note");
    }
}
