//! The diagnostic data model: severities, rule codes, the rule registry,
//! and allow/deny configuration.

use std::collections::BTreeMap;
use std::fmt;

/// How serious a diagnostic is. Ordering is by increasing severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never fails a run.
    Note,
    /// Suspicious but not necessarily wrong; fails under `--deny-warnings`.
    Warning,
    /// A defect; always fails the run.
    Error,
}

impl Severity {
    /// Lowercase name used by both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from a lint pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule code, `RAnnn`.
    pub code: &'static str,
    /// Effective severity (after configuration).
    pub severity: Severity,
    /// One-line description of what was found.
    pub message: String,
    /// Where it was found (model component, corpus coordinate, file:line).
    pub location: String,
    /// Extra context lines, rendered as `= note:`.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Construct with the rule's default severity from the registry.
    pub fn new(
        code: &'static str,
        message: impl Into<String>,
        location: impl Into<String>,
    ) -> Self {
        let severity = rule(code)
            .map(|r| r.default_severity)
            .unwrap_or(Severity::Warning);
        Diagnostic {
            code,
            severity,
            message: message.into(),
            location: location.into(),
            notes: Vec::new(),
        }
    }

    /// Append a `= note:` context line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// The location's file part: everything before a trailing `:NNN`
    /// line suffix (the whole location when there is none, e.g. for
    /// artifact/corpus lints).
    pub fn file(&self) -> &str {
        match self.location.rsplit_once(':') {
            Some((file, line)) if !line.is_empty() && line.bytes().all(|b| b.is_ascii_digit()) => {
                file
            }
            _ => &self.location,
        }
    }

    /// The location's 1-based line, or 0 when the location has none.
    pub fn line(&self) -> u32 {
        match self.location.rsplit_once(':') {
            Some((_, line)) => line.parse().unwrap_or(0),
            None => 0,
        }
    }

    /// Stable content fingerprint: rule code + file (line dropped, so
    /// unrelated edits above a finding do not churn the baseline) +
    /// message. Rendered as 16 hex digits; used by `lint_baseline.json`
    /// and SARIF `partialFingerprints`.
    pub fn fingerprint(&self) -> String {
        recipe_obs::fingerprint::to_hex(recipe_obs::fingerprint_parts(&[
            self.code,
            self.file(),
            &self.message,
        ]))
    }
}

/// Registry entry describing one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable code, `RAnnn`. Never renumbered; retired codes are not reused.
    pub code: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Severity when not overridden by configuration.
    pub default_severity: Severity,
    /// One-line summary for `--list-rules` and the docs.
    pub summary: &'static str,
}

/// Every rule the subsystem can emit, ordered by code.
///
/// Families: `RA0xx` artifact lints over trained models, `RA1xx` corpus
/// lints over annotated data, `RA2xx` cross-crate invariant checks,
/// `RA3xx` source-code scans.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "RA001",
        name: "non-finite-weight",
        default_severity: Severity::Error,
        summary: "a trained model parameter is NaN or infinite",
    },
    RuleInfo {
        code: "RA002",
        name: "degenerate-weights",
        default_severity: Severity::Warning,
        summary: "all parameters of a model block are (near) zero — the model was not actually trained",
    },
    RuleInfo {
        code: "RA003",
        name: "bio-impossible-transition",
        default_severity: Severity::Warning,
        summary: "a BIO-scheme model scores an impossible transition (into I-X from outside X) at least as high as every legal one",
    },
    RuleInfo {
        code: "RA004",
        name: "label-set-mismatch",
        default_severity: Severity::Error,
        summary: "model label inventory, parameter dimensions and feature table disagree",
    },
    RuleInfo {
        code: "RA005",
        name: "empty-feature-space",
        default_severity: Severity::Warning,
        summary: "a sequence model has no interned features — every prediction ignores the input",
    },
    RuleInfo {
        code: "RA006",
        name: "pos-non-finite",
        default_severity: Severity::Error,
        summary: "a POS-tagger perceptron weight is NaN or infinite",
    },
    RuleInfo {
        code: "RA007",
        name: "pos-empty-model",
        default_severity: Severity::Warning,
        summary: "the POS tagger has no feature rows or an empty tag dictionary",
    },
    RuleInfo {
        code: "RA008",
        name: "parser-anomaly",
        default_severity: Severity::Error,
        summary: "the dependency parser has non-finite weights or an empty transition inventory",
    },
    RuleInfo {
        code: "RA009",
        name: "dict-anomaly",
        default_severity: Severity::Warning,
        summary: "a process/utensil dictionary is empty or contains entries below its frequency threshold",
    },
    RuleInfo {
        code: "RA010",
        name: "unknown-label-inventory",
        default_severity: Severity::Warning,
        summary: "a model's labels match neither the raw task inventory nor its BIO expansion",
    },
    RuleInfo {
        code: "RA101",
        name: "empty-token",
        default_severity: Severity::Error,
        summary: "an annotated token has empty text",
    },
    RuleInfo {
        code: "RA102",
        name: "step-structure",
        default_severity: Severity::Error,
        summary: "a recipe's step_of map is malformed (wrong length, not monotone, or not starting at step 0)",
    },
    RuleInfo {
        code: "RA103",
        name: "duplicate-recipe-id",
        default_severity: Severity::Error,
        summary: "two recipes share an id",
    },
    RuleInfo {
        code: "RA104",
        name: "invalid-bio",
        default_severity: Severity::Error,
        summary: "a BIO label sequence is invalid (I-X follows neither B-X nor I-X)",
    },
    RuleInfo {
        code: "RA105",
        name: "unknown-label",
        default_severity: Severity::Error,
        summary: "a label string is outside the task inventory (Table II / instruction tags, raw or BIO)",
    },
    RuleInfo {
        code: "RA106",
        name: "quantity-grammar",
        default_severity: Severity::Warning,
        summary: "a token tagged QUANTITY does not parse as a number, fraction or range",
    },
    RuleInfo {
        code: "RA107",
        name: "unknown-unit",
        default_severity: Severity::Note,
        summary: "a token tagged UNIT is not in the unit vocabulary",
    },
    RuleInfo {
        code: "RA108",
        name: "tokenization-roundtrip",
        default_severity: Severity::Warning,
        summary: "re-tokenizing a phrase's rendered text does not reproduce its tokens",
    },
    RuleInfo {
        code: "RA109",
        name: "empty-section",
        default_severity: Severity::Warning,
        summary: "a recipe has no ingredients or no instructions",
    },
    RuleInfo {
        code: "RA110",
        name: "invalid-dep-tree",
        default_severity: Severity::Error,
        summary: "a gold dependency tree is the wrong length or non-projective",
    },
    RuleInfo {
        code: "RA201",
        name: "tagset-dim",
        default_severity: Severity::Error,
        summary: "Penn tagset size and POS-vector dimensionality must both be 36",
    },
    RuleInfo {
        code: "RA202",
        name: "kmeans-k",
        default_severity: Severity::Error,
        summary: "the paper configuration must cluster with k = 23",
    },
    RuleInfo {
        code: "RA203",
        name: "dict-thresholds",
        default_severity: Severity::Error,
        summary: "the paper configuration must threshold dictionaries at 47 (process) and 10 (utensil)",
    },
    RuleInfo {
        code: "RA204",
        name: "ingredient-inventory",
        default_severity: Severity::Error,
        summary: "the ingredient tag inventory must be O plus the seven Table II labels",
    },
    RuleInfo {
        code: "RA205",
        name: "instruction-inventory",
        default_severity: Severity::Error,
        summary: "the instruction tag inventory must be O, PROCESS, UTENSIL, INGREDIENT",
    },
    RuleInfo {
        code: "RA206",
        name: "bio-inventory",
        default_severity: Severity::Error,
        summary: "the BIO expansion of a raw inventory must have 2(n-1)+1 labels and round-trip through from_bio",
    },
    RuleInfo {
        code: "RA207",
        name: "parallel-nondeterminism",
        default_severity: Severity::Error,
        summary: "recomputing a trained artifact on 2 worker threads does not reproduce the serial artifact byte-for-byte",
    },
    RuleInfo {
        code: "RA208",
        name: "compiled-model-drift",
        default_severity: Severity::Error,
        summary: "the compiled (sparse CSR) decode of a frozen model does not reproduce the reference decode byte-for-byte",
    },
    RuleInfo {
        code: "RA209",
        name: "telemetry-coverage",
        default_severity: Severity::Warning,
        summary: "a public `*_rt`/decode/extract entry point opens no tracing span",
    },
    RuleInfo {
        code: "RA210",
        name: "event-name-hygiene",
        default_severity: Severity::Warning,
        summary: "a span/metric/instant name is not lowercase dot-separated, or an explain-reachable decision site records no provenance",
    },
    RuleInfo {
        code: "RA301",
        name: "unwrap-in-lib",
        default_severity: Severity::Note,
        summary: "unwrap()/expect() in non-test library code",
    },
    RuleInfo {
        code: "RA302",
        name: "todo-marker",
        default_severity: Severity::Warning,
        summary: "todo!/unimplemented! left in source",
    },
    RuleInfo {
        code: "RA303",
        name: "dbg-macro",
        default_severity: Severity::Warning,
        summary: "dbg! left in source",
    },
    RuleInfo {
        code: "RA401",
        name: "hash-iteration-order",
        default_severity: Severity::Warning,
        summary: "HashMap/HashSet iteration feeds a serialized artifact — use BTreeMap/BTreeSet or sort before emitting",
    },
    RuleInfo {
        code: "RA402",
        name: "nondeterministic-source",
        default_severity: Severity::Warning,
        summary: "a wall-clock/RNG source (SystemTime/Instant/thread_rng) is reachable from an artifact-producing path outside telemetry",
    },
    RuleInfo {
        code: "RA403",
        name: "unordered-float-reduction",
        default_severity: Severity::Warning,
        summary: "a floating-point reduction runs in nondeterministic order — route it through recipe_runtime's ordered par_map_reduce",
    },
    RuleInfo {
        code: "RA404",
        name: "relaxed-publication",
        default_severity: Severity::Warning,
        summary: "an Ordering::Relaxed atomic appears to gate data publication — use Acquire/Release (or SeqCst) for handoff flags",
    },
    RuleInfo {
        code: "RA405",
        name: "lock-discipline",
        default_severity: Severity::Warning,
        summary: "mutexes are acquired in inconsistent order across functions, or a lock guard is held across a pool dispatch",
    },
    RuleInfo {
        code: "RA406",
        name: "panic-on-serving-path",
        default_severity: Severity::Note,
        summary: "a panic site (unwrap/expect/panic!/arithmetic-indexing) sits on the serving-critical call graph",
    },
    RuleInfo {
        code: "RA407",
        name: "unchecked-byte-reinterpretation",
        default_severity: Severity::Warning,
        summary: "a load/parse entry point reinterprets raw bytes with no reachable magic/checksum/version validation",
    },
    RuleInfo {
        code: "RA408",
        name: "unbounded-serving-io",
        default_severity: Severity::Warning,
        summary: "an unbounded read (read_to_end/read_to_string without take) or blocking sleep sits on the serving call graph",
    },
    RuleInfo {
        code: "RA409",
        name: "unclocked-serving-time",
        default_severity: Severity::Note,
        summary: "a raw Instant::now/SystemTime::now on the serving call graph bypasses the injectable Clock that windowed metrics rotate through",
    },
    RuleInfo {
        code: "RA410",
        name: "unattributed-hot-loop",
        default_severity: Severity::Note,
        summary: "a loop on the serving or artifact call graph has no span/profiler attribution site, so collapsed-stack profiles fold its cost into the caller",
    },
];

/// Look up a rule by code.
pub fn rule(code: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.code == code)
}

/// A per-rule level override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Drop the diagnostic entirely.
    Allow,
    /// Force severity to warning.
    Warn,
    /// Force severity to error.
    Deny,
}

/// Allow/deny configuration applied after all passes run.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Per-code overrides (`RAnnn` → level).
    pub overrides: BTreeMap<String, Level>,
    /// Treat surviving warnings as errors.
    pub deny_warnings: bool,
}

impl LintConfig {
    /// Record an override for `code`.
    pub fn set(&mut self, code: &str, level: Level) {
        self.overrides.insert(code.to_string(), level);
    }

    /// Apply overrides: drop allowed diagnostics, re-level the rest, and
    /// (under `deny_warnings`) promote warnings to errors.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter_map(|mut d| {
                match self.overrides.get(d.code) {
                    Some(Level::Allow) => return None,
                    Some(Level::Warn) => d.severity = Severity::Warning,
                    Some(Level::Deny) => d.severity = Severity::Error,
                    None => {}
                }
                if self.deny_warnings && d.severity == Severity::Warning {
                    d.severity = Severity::Error;
                }
                Some(d)
            })
            .collect()
    }
}

/// Whether a diagnostic set should fail the run (any error-level finding).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Sort by (file, line, code), then message and severity — the stable
/// order every renderer (human, JSON, SARIF) and the baseline file use.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.file()
            .cmp(b.file())
            .then_with(|| a.line().cmp(&b.line()))
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.message.cmp(&b.message))
            .then_with(|| b.severity.cmp(&a.severity))
    });
}

/// Sort and drop exact duplicates (same code, severity, location,
/// message and notes) so overlapping passes can never double-report.
pub fn dedupe_diagnostics(diags: &mut Vec<Diagnostic>) {
    sort_diagnostics(diags);
    diags.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_and_sorted() {
        for w in RULES.windows(2) {
            assert!(w[0].code < w[1].code, "{} !< {}", w[0].code, w[1].code);
        }
        assert!(RULES.len() >= 12, "lint catalog shrank below 12 rules");
    }

    #[test]
    fn default_severity_comes_from_registry() {
        assert_eq!(Diagnostic::new("RA001", "m", "l").severity, Severity::Error);
        assert_eq!(Diagnostic::new("RA301", "m", "l").severity, Severity::Note);
    }

    #[test]
    fn config_overrides_apply() {
        let mut cfg = LintConfig::default();
        cfg.set("RA001", Level::Allow);
        cfg.set("RA301", Level::Deny);
        let out = cfg.apply(vec![
            Diagnostic::new("RA001", "gone", "x"),
            Diagnostic::new("RA301", "promoted", "y"),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Error);
    }

    #[test]
    fn deny_warnings_promotes() {
        let cfg = LintConfig {
            deny_warnings: true,
            ..LintConfig::default()
        };
        let out = cfg.apply(vec![
            Diagnostic::new("RA002", "w", "x"),
            Diagnostic::new("RA301", "n", "y"),
        ]);
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[1].severity, Severity::Note, "notes stay notes");
        assert!(has_errors(&out));
    }

    #[test]
    fn sort_is_file_line_code() {
        let mut diags = vec![
            Diagnostic::new("RA301", "n", "b.rs:10"),
            Diagnostic::new("RA303", "w", "a.rs:20"),
            Diagnostic::new("RA302", "w", "a.rs:3"),
            Diagnostic::new("RA301", "n", "a.rs:3"),
        ];
        sort_diagnostics(&mut diags);
        let keys: Vec<_> = diags
            .iter()
            .map(|d| (d.location.as_str(), d.code))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a.rs:3", "RA301"),
                ("a.rs:3", "RA302"),
                ("a.rs:20", "RA303"),
                ("b.rs:10", "RA301"),
            ]
        );
    }

    #[test]
    fn file_line_split_handles_plain_locations() {
        let d = Diagnostic::new("RA001", "m", "artifact: ingredient NER, emit[172]");
        assert_eq!(d.file(), "artifact: ingredient NER, emit[172]");
        assert_eq!(d.line(), 0);
        let d = Diagnostic::new("RA301", "m", "crates/ner/src/decode.rs:42");
        assert_eq!(d.file(), "crates/ner/src/decode.rs");
        assert_eq!(d.line(), 42);
    }

    #[test]
    fn dedupe_drops_exact_duplicates_only() {
        let mut diags = vec![
            Diagnostic::new("RA301", "m", "a.rs:1"),
            Diagnostic::new("RA301", "m", "a.rs:1"),
            Diagnostic::new("RA301", "other", "a.rs:1"),
        ];
        dedupe_diagnostics(&mut diags);
        assert_eq!(diags.len(), 2);
    }

    #[test]
    fn fingerprint_is_stable_and_line_independent() {
        let a = Diagnostic::new("RA406", "panicking `unwrap`", "crates/x/src/a.rs:10");
        let b = Diagnostic::new("RA406", "panicking `unwrap`", "crates/x/src/a.rs:99");
        let c = Diagnostic::new("RA406", "panicking `unwrap`", "crates/x/src/b.rs:10");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "line drift keeps the fingerprint"
        );
        assert_ne!(a.fingerprint(), c.fingerprint(), "file changes it");
        assert_eq!(a.fingerprint().len(), 16);
        assert!(a.fingerprint().bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
