//! The arc-standard transition system and its static oracle.
//!
//! A parser configuration is a stack, a buffer, and the arc set built so
//! far. The three transition families are:
//!
//! * **Shift** — move the buffer front onto the stack;
//! * **LeftArc(l)** — make the second-topmost stack item a dependent (with
//!   label *l*) of the topmost, and pop it;
//! * **RightArc(l)** — make the topmost a dependent of the second-topmost,
//!   and pop it.
//!
//! A virtual root node sits at the stack bottom; the final RightArc from it
//! assigns the sentence root. The static oracle reproduces any projective
//! gold tree exactly.

use crate::tree::{DepLabel, DepTree, TreeError};
use serde::{Deserialize, Serialize};

/// Virtual root node id inside a [`State`]. Token *i* of the sentence is
/// node *i + 1*.
pub const ROOT: usize = 0;

/// A transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transition {
    /// Push the buffer front.
    Shift,
    /// `s2 <-l- s1`, pop s2.
    LeftArc(DepLabel),
    /// `s2 -l-> s1`, pop s1.
    RightArc(DepLabel),
}

/// Dense transition inventory: `Shift` is 0, then LeftArc per label, then
/// RightArc per label. Root can only be assigned by RightArc, and LeftArc
/// never carries `Root`, but keeping the full product keeps ids simple.
pub fn all_transitions() -> Vec<Transition> {
    let mut v = Vec::with_capacity(1 + 2 * DepLabel::ALL.len());
    v.push(Transition::Shift);
    for l in DepLabel::ALL {
        v.push(Transition::LeftArc(l));
    }
    for l in DepLabel::ALL {
        v.push(Transition::RightArc(l));
    }
    v
}

/// Dense id of a transition (inverse of [`all_transitions`] order).
pub fn transition_id(t: Transition) -> usize {
    let nl = DepLabel::ALL.len();
    match t {
        Transition::Shift => 0,
        Transition::LeftArc(l) => 1 + l.index(),
        Transition::RightArc(l) => 1 + nl + l.index(),
    }
}

/// Parser configuration over a sentence of `n` tokens.
#[derive(Debug, Clone)]
pub struct State {
    /// Stack of node ids (bottom first); starts as `[ROOT]`.
    pub stack: Vec<usize>,
    /// Next buffer node id; the buffer is `next..=n`.
    pub next: usize,
    /// Sentence length in tokens.
    pub n: usize,
    /// `head[node]` for nodes `1..=n`, 0 meaning "unattached or root".
    pub heads: Vec<usize>,
    /// Arc labels parallel to `heads`.
    pub labels: Vec<DepLabel>,
}

impl State {
    /// Initial configuration for `n` tokens.
    pub fn new(n: usize) -> Self {
        State {
            stack: vec![ROOT],
            next: 1,
            n,
            heads: vec![usize::MAX; n + 1],
            labels: vec![DepLabel::Dep; n + 1],
        }
    }

    /// Is the buffer exhausted and only the root left on the stack?
    pub fn is_terminal(&self) -> bool {
        self.next > self.n && self.stack.len() == 1
    }

    /// Top of stack (`s1`).
    pub fn s1(&self) -> Option<usize> {
        self.stack.last().copied()
    }

    /// Second-topmost stack node (`s2`).
    pub fn s2(&self) -> Option<usize> {
        if self.stack.len() >= 2 {
            Some(self.stack[self.stack.len() - 2])
        } else {
            None
        }
    }

    /// Buffer front (`b1`).
    pub fn b1(&self) -> Option<usize> {
        if self.next <= self.n {
            Some(self.next)
        } else {
            None
        }
    }

    /// Is `t` applicable in this configuration?
    pub fn is_legal(&self, t: Transition) -> bool {
        match t {
            Transition::Shift => self.next <= self.n,
            Transition::LeftArc(l) => {
                // s2 must exist and not be the virtual root.
                l != DepLabel::Root
                    && self.stack.len() >= 2
                    && self.stack[self.stack.len() - 2] != ROOT
            }
            Transition::RightArc(l) => {
                if self.stack.len() < 2 {
                    return false;
                }
                let s2 = self.stack[self.stack.len() - 2];
                // Root label iff attaching to the virtual root, and the
                // root arc may only be drawn when the buffer is empty
                // (arc-standard leaves the sentence root for last).
                if s2 == ROOT {
                    l == DepLabel::Root && self.next > self.n
                } else {
                    l != DepLabel::Root
                }
            }
        }
    }

    /// Apply a transition. Panics if illegal (callers check first).
    pub fn apply(&mut self, t: Transition) {
        debug_assert!(self.is_legal(t), "illegal transition {t:?}");
        match t {
            Transition::Shift => {
                self.stack.push(self.next);
                self.next += 1;
            }
            Transition::LeftArc(l) => {
                let s1 = self.stack.pop().expect("stack");
                let s2 = self.stack.pop().expect("stack");
                self.heads[s2] = s1;
                self.labels[s2] = l;
                self.stack.push(s1);
            }
            Transition::RightArc(l) => {
                let s1 = self.stack.pop().expect("stack");
                let s2 = *self.stack.last().expect("stack");
                self.heads[s1] = s2;
                self.labels[s1] = l;
            }
        }
    }

    /// Convert the finished configuration into a [`DepTree`]. Unattached
    /// tokens (possible when decoding dead-ends) attach to the root token
    /// with label `dep`.
    pub fn into_tree(self) -> Result<DepTree, TreeError> {
        let root_tok = (1..=self.n).find(|&i| self.heads[i] == ROOT);
        let mut heads = Vec::with_capacity(self.n);
        let mut labels = Vec::with_capacity(self.n);
        for i in 1..=self.n {
            let h = self.heads[i];
            if h == ROOT && Some(i) == root_tok {
                heads.push(None);
                labels.push(DepLabel::Root);
            } else if h == usize::MAX || h == ROOT {
                // Fallback attachment for robustness.
                match root_tok {
                    Some(r) if r != i => {
                        heads.push(Some(r - 1));
                        labels.push(DepLabel::Dep);
                    }
                    _ => {
                        heads.push(None);
                        labels.push(DepLabel::Root);
                    }
                }
            } else {
                heads.push(Some(h - 1));
                labels.push(self.labels[i]);
            }
        }
        DepTree::new(heads, labels)
    }
}

/// Static oracle: the correct transition for `state` given a projective
/// gold tree. `gold_heads[i]` / `gold_labels[i]` use node ids (`1..=n`,
/// head `ROOT` for the sentence root).
pub fn oracle(state: &State, gold_heads: &[usize], gold_labels: &[DepLabel]) -> Transition {
    if let (Some(s1), Some(s2)) = (state.s1(), state.s2()) {
        // LeftArc: s2's head is s1 and s2's dependents are all attached.
        if s2 != ROOT && gold_heads[s2] == s1 && deps_done(state, s2, gold_heads) {
            return Transition::LeftArc(gold_labels[s2]);
        }
        // RightArc: s1's head is s2 and s1's dependents are all attached.
        if gold_heads[s1] == s2 && deps_done(state, s1, gold_heads) {
            let label = if s2 == ROOT {
                DepLabel::Root
            } else {
                gold_labels[s1]
            };
            // The root arc must wait for an empty buffer to stay legal.
            if s2 != ROOT || state.next > state.n {
                return Transition::RightArc(label);
            }
        }
    }
    Transition::Shift
}

/// Are all gold dependents of `node` already attached in `state`?
fn deps_done(state: &State, node: usize, gold_heads: &[usize]) -> bool {
    (1..=state.n).all(|i| gold_heads[i] != node || state.heads[i] != usize::MAX)
}

/// Gold `(heads, labels)` in node-id space from a [`DepTree`].
pub fn gold_arrays(tree: &DepTree) -> (Vec<usize>, Vec<DepLabel>) {
    let n = tree.len();
    let mut heads = vec![usize::MAX; n + 1];
    let mut labels = vec![DepLabel::Dep; n + 1];
    for i in 0..n {
        heads[i + 1] = match tree.head(i) {
            None => ROOT,
            Some(h) => h + 1,
        };
        labels[i + 1] = tree.label(i);
    }
    (heads, labels)
}

/// Run the oracle to completion and return the transition sequence.
/// Only valid for projective trees.
pub fn oracle_sequence(tree: &DepTree) -> Vec<Transition> {
    let (gh, gl) = gold_arrays(tree);
    let mut state = State::new(tree.len());
    let mut seq = Vec::new();
    let max_steps = 4 * tree.len() + 4;
    while !state.is_terminal() && seq.len() <= max_steps {
        let t = oracle(&state, &gh, &gl);
        if !state.is_legal(t) {
            break;
        }
        state.apply(t);
        seq.push(t);
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;

    /// "bring the water to a boil" style tree over 3 tokens:
    /// boil(root) -> water(dobj) -> the(det)
    fn tree3() -> DepTree {
        DepTree::new(
            vec![None, Some(2), Some(0)],
            vec![DepLabel::Root, DepLabel::Det, DepLabel::Dobj],
        )
        .unwrap()
    }

    /// Richer projective tree: "preheat the oven to 350 degrees"
    /// preheat(root); oven -> the(det); preheat -> oven(dobj);
    /// preheat -> to(prep); degrees -> 350(nummod); to -> degrees(pobj).
    fn tree6() -> DepTree {
        DepTree::new(
            vec![None, Some(2), Some(0), Some(0), Some(5), Some(3)],
            vec![
                DepLabel::Root,
                DepLabel::Det,
                DepLabel::Dobj,
                DepLabel::Prep,
                DepLabel::Nummod,
                DepLabel::Pobj,
            ],
        )
        .unwrap()
    }

    fn replay(tree: &DepTree) -> DepTree {
        let seq = oracle_sequence(tree);
        let mut state = State::new(tree.len());
        for t in seq {
            state.apply(t);
        }
        assert!(state.is_terminal(), "oracle did not reach terminal state");
        state.into_tree().unwrap()
    }

    #[test]
    fn oracle_reconstructs_small_tree() {
        let t = tree3();
        assert_eq!(replay(&t), t);
    }

    #[test]
    fn oracle_reconstructs_nested_tree() {
        let t = tree6();
        assert!(t.is_projective());
        assert_eq!(replay(&t), t);
    }

    #[test]
    fn oracle_sequence_length_is_2n() {
        // Arc-standard always uses exactly 2n transitions (n shifts, n arcs).
        assert_eq!(oracle_sequence(&tree3()).len(), 6);
        assert_eq!(oracle_sequence(&tree6()).len(), 12);
    }

    #[test]
    fn legality_rules() {
        let mut s = State::new(2);
        assert!(s.is_legal(Transition::Shift));
        assert!(!s.is_legal(Transition::LeftArc(DepLabel::Det)));
        assert!(!s.is_legal(Transition::RightArc(DepLabel::Dobj)));
        s.apply(Transition::Shift);
        // Stack = [ROOT, 1]: RightArc(Root) is illegal while the buffer is
        // non-empty; LeftArc on the virtual root is always illegal.
        assert!(!s.is_legal(Transition::RightArc(DepLabel::Root)));
        assert!(!s.is_legal(Transition::LeftArc(DepLabel::Det)));
        s.apply(Transition::Shift);
        // Stack = [ROOT, 1, 2]: both arcs between tokens 1 and 2 are legal.
        assert!(s.is_legal(Transition::LeftArc(DepLabel::Det)));
        assert!(s.is_legal(Transition::RightArc(DepLabel::Dobj)));
        // But a Root-labeled arc between ordinary tokens is not.
        assert!(!s.is_legal(Transition::RightArc(DepLabel::Root)));
        assert!(!s.is_legal(Transition::LeftArc(DepLabel::Root)));
    }

    #[test]
    fn transition_ids_round_trip() {
        for (i, t) in all_transitions().into_iter().enumerate() {
            assert_eq!(transition_id(t), i);
        }
    }

    #[test]
    fn single_token_sentence() {
        let t = DepTree::new(vec![None], vec![DepLabel::Root]).unwrap();
        assert_eq!(replay(&t), t);
    }

    #[test]
    fn into_tree_recovers_from_unattached_tokens() {
        // Simulate a decoding dead-end: shift everything, then terminate
        // without attaching token 2.
        let mut s = State::new(2);
        s.apply(Transition::Shift);
        s.apply(Transition::Shift);
        s.apply(Transition::RightArc(DepLabel::Dobj)); // 1 -> 2
        s.apply(Transition::RightArc(DepLabel::Root)); // ROOT -> 1
        let tree = s.into_tree().unwrap();
        assert_eq!(tree.root(), Some(0));
        assert_eq!(tree.head(1), Some(0));
    }
}
