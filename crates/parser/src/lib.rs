#![warn(missing_docs)]

//! Dependency-parsing substrate for instruction mining.
//!
//! §III.B of the paper dependency-parses every instruction sentence (the
//! authors used spaCy) and extracts, for every verb classified as a cooking
//! process, its subjects, objects and prepositional objects — the raw
//! material for the many-to-many event tuples of Fig. 5.
//!
//! This crate implements that substrate from scratch:
//!
//! * [`tree::DepTree`] / [`tree::DepLabel`] — labeled dependency trees with
//!   well-formedness and projectivity checks;
//! * [`transition`] — the arc-standard transition system with a static
//!   oracle;
//! * [`parser::DependencyParser`] — a greedy transition parser driven by an
//!   averaged perceptron, trained on gold trees;
//! * [`extract`] — the verb-argument collection rules (subjects, objects,
//!   prepositional objects, conjunction expansion).
//!
//! # Example
//!
//! ```
//! use recipe_parser::tree::{DepLabel, DepTree};
//! use recipe_parser::extract::verb_frames;
//! use recipe_tagger::PennTag;
//!
//! // "boil the potatoes" — gold tree: boil <- potatoes (dobj), potatoes <- the (det)
//! let tree = DepTree::new(
//!     vec![None, Some(2), Some(0)],
//!     vec![DepLabel::Root, DepLabel::Det, DepLabel::Dobj],
//! ).unwrap();
//! let tags = [PennTag::VB, PennTag::DT, PennTag::NNS];
//! let frames = verb_frames(&tree, &tags);
//! assert_eq!(frames.len(), 1);
//! assert_eq!(frames[0].verb, 0);
//! assert_eq!(frames[0].objects, vec![2]);
//! ```

pub mod extract;
pub mod parser;
pub mod transition;
pub mod tree;

pub use extract::{verb_frames, VerbFrame};
pub use parser::{DependencyParser, ParserConfig};
pub use tree::{DepLabel, DepTree};
