//! Greedy transition-based dependency parser.
//!
//! An averaged perceptron scores transitions from configuration features
//! (word and POS of the top stack items and buffer front, their pairs, and
//! structural context), exactly the recipe of Nivre-style greedy parsers.
//! Training imitates the static oracle on gold projective trees.

use crate::transition::{
    all_transitions, gold_arrays, oracle, transition_id, State, Transition, ROOT,
};
use crate::tree::DepTree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use recipe_tagger::perceptron::AveragedPerceptron;
use recipe_tagger::PennTag;
use serde::{Deserialize, Serialize};

/// Parser training configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ParserConfig {
    /// Passes over the training treebank.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for ParserConfig {
    fn default() -> Self {
        ParserConfig {
            epochs: 8,
            seed: 42,
        }
    }
}

/// A training instance: tokens, POS tags, gold tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParseExample {
    /// Surface tokens.
    pub words: Vec<String>,
    /// POS tags, parallel to `words`.
    pub tags: Vec<PennTag>,
    /// Gold dependency tree.
    pub tree: DepTree,
}

/// A trained greedy arc-standard parser.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DependencyParser {
    model: AveragedPerceptron,
    transitions: Vec<Transition>,
}

/// Word/tag lookup with virtual-root and out-of-range sentinels.
fn node_word(words: &[String], node: usize) -> &str {
    if node == ROOT {
        "-ROOT-"
    } else {
        words.get(node - 1).map(|s| s.as_str()).unwrap_or("-NONE-")
    }
}

fn node_tag(tags: &[PennTag], node: usize) -> &'static str {
    if node == ROOT {
        "-ROOT-"
    } else {
        tags.get(node - 1).map(|t| t.as_str()).unwrap_or("-NONE-")
    }
}

/// Configuration features: unigrams and pairs over s1, s2, b1, b2 plus
/// stack/buffer geometry.
fn state_features(state: &State, words: &[String], tags: &[PennTag]) -> Vec<String> {
    let s1 = state.s1();
    let s2 = state.s2();
    let b1 = state.b1();
    let b2 = if state.next < state.n {
        Some(state.next + 1)
    } else {
        None
    };

    let wd = |n: Option<usize>| n.map(|n| node_word(words, n)).unwrap_or("-NONE-");
    let tg = |n: Option<usize>| n.map(|n| node_tag(tags, n)).unwrap_or("-NONE-");

    let (s1w, s1t) = (wd(s1), tg(s1));
    let (s2w, s2t) = (wd(s2), tg(s2));
    let (b1w, b1t) = (wd(b1), tg(b1));
    let b2t = tg(b2);

    let mut f = Vec::with_capacity(20);
    f.push("bias".to_string());
    f.push(format!("s1w={s1w}"));
    f.push(format!("s1t={s1t}"));
    f.push(format!("s2w={s2w}"));
    f.push(format!("s2t={s2t}"));
    f.push(format!("b1w={b1w}"));
    f.push(format!("b1t={b1t}"));
    f.push(format!("b2t={b2t}"));
    f.push(format!("s1w+s1t={s1w}|{s1t}"));
    f.push(format!("s1t+s2t={s1t}|{s2t}"));
    f.push(format!("s1w+s2w={s1w}|{s2w}"));
    f.push(format!("s1t+b1t={s1t}|{b1t}"));
    f.push(format!("s2t+s1t+b1t={s2t}|{s1t}|{b1t}"));
    f.push(format!("s1t+b1t+b2t={s1t}|{b1t}|{b2t}"));
    f.push(format!("s1w+b1w={s1w}|{b1w}"));
    f.push(format!("s2w+s1t={s2w}|{s1t}"));
    // Geometry: distance between s2 and s1, stack depth, buffer size class.
    if let (Some(a), Some(b)) = (s2, s1) {
        let dist = b.saturating_sub(a).min(5);
        f.push(format!("dist={dist}"));
    }
    f.push(format!("depth={}", state.stack.len().min(5)));
    f.push(format!("bufempty={}", state.b1().is_none()));
    f
}

impl DependencyParser {
    /// Train on gold trees (must be projective; non-projective examples are
    /// skipped with no error since the oracle cannot reproduce them).
    pub fn train(examples: &[ParseExample], cfg: &ParserConfig) -> Self {
        let transitions = all_transitions();
        let mut model = AveragedPerceptron::new(transitions.len());
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &ei in &order {
                let ex = &examples[ei];
                if ex.tree.is_empty() || !ex.tree.is_projective() {
                    continue;
                }
                let (gh, gl) = gold_arrays(&ex.tree);
                let mut state = State::new(ex.tree.len());
                let max_steps = 2 * ex.tree.len();
                for _ in 0..max_steps {
                    if state.is_terminal() {
                        break;
                    }
                    let gold_t = oracle(&state, &gh, &gl);
                    let feats = state_features(&state, &ex.words, &ex.tags);
                    let legal: Vec<usize> = (0..transitions.len())
                        .filter(|&i| state.is_legal(transitions[i]))
                        .collect();
                    let guess = model.predict_constrained(&feats, &legal);
                    model.update(transition_id(gold_t), guess, &feats);
                    // Follow the oracle (no exploration) — standard static
                    // oracle training.
                    state.apply(gold_t);
                }
            }
        }
        model.finalize_averaging();
        DependencyParser { model, transitions }
    }

    /// Greedy-parse a tagged sentence into a dependency tree.
    pub fn parse(&self, words: &[String], tags: &[PennTag]) -> DepTree {
        assert_eq!(words.len(), tags.len(), "words/tags length mismatch");
        let n = words.len();
        if n == 0 {
            return DepTree::new(vec![], vec![]).expect("empty tree");
        }
        let mut state = State::new(n);
        // Arc-standard terminates after exactly 2n transitions; the bound
        // guards against pathological loops.
        for _ in 0..(2 * n + 4) {
            if state.is_terminal() {
                break;
            }
            let feats = state_features(&state, words, tags);
            let legal: Vec<usize> = (0..self.transitions.len())
                .filter(|&i| state.is_legal(self.transitions[i]))
                .collect();
            debug_assert!(!legal.is_empty(), "no legal transition");
            let choice = self.model.predict_constrained(&feats, &legal);
            state.apply(self.transitions[choice]);
        }
        state.into_tree().expect("arc-standard yields a valid tree")
    }

    /// Beam-search parse: keep the `beam` highest-scoring transition
    /// sequences instead of committing greedily. `beam == 1` reproduces
    /// [`DependencyParser::parse`]; larger beams recover from early
    /// attachment mistakes at linear extra cost.
    pub fn parse_beam(&self, words: &[String], tags: &[PennTag], beam: usize) -> DepTree {
        self.parse_beam_scored(words, tags, beam).1
    }

    /// Beam-search parse returning the winning hypothesis' cumulative
    /// model score alongside the tree (the score is what the beam
    /// optimizes; tests assert it is non-decreasing in the beam width).
    pub fn parse_beam_scored(
        &self,
        words: &[String],
        tags: &[PennTag],
        beam: usize,
    ) -> (f64, DepTree) {
        assert_eq!(words.len(), tags.len(), "words/tags length mismatch");
        assert!(beam >= 1, "beam width must be positive");
        let n = words.len();
        if n == 0 {
            return (0.0, DepTree::new(vec![], vec![]).expect("empty tree"));
        }
        // Hypotheses: (cumulative score, state).
        let mut hyps: Vec<(f64, State)> = vec![(0.0, State::new(n))];
        for _ in 0..(2 * n + 4) {
            if hyps.iter().all(|(_, s)| s.is_terminal()) {
                break;
            }
            let mut next: Vec<(f64, State)> = Vec::with_capacity(hyps.len() * 4);
            for (score, state) in &hyps {
                if state.is_terminal() {
                    next.push((*score, state.clone()));
                    continue;
                }
                let feats = state_features(state, words, tags);
                let scores = self.model.scores(&feats);
                for (tid, t) in self.transitions.iter().enumerate() {
                    if !state.is_legal(*t) {
                        continue;
                    }
                    let mut s2 = state.clone();
                    s2.apply(*t);
                    next.push((score + scores[tid], s2));
                }
            }
            next.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
            next.truncate(beam);
            hyps = next;
        }
        let (score, best) = hyps.into_iter().next().expect("at least one hypothesis");
        (
            score,
            best.into_tree().expect("arc-standard yields a valid tree"),
        )
    }

    /// Unlabeled/labeled attachment scores over a treebank.
    pub fn evaluate(&self, examples: &[ParseExample]) -> (f64, f64) {
        let mut uas_sum = 0.0;
        let mut las_sum = 0.0;
        let mut count = 0usize;
        for ex in examples {
            if ex.tree.is_empty() {
                continue;
            }
            let pred = self.parse(&ex.words, &ex.tags);
            uas_sum += pred.uas(&ex.tree);
            las_sum += pred.las(&ex.tree);
            count += 1;
        }
        if count == 0 {
            (0.0, 0.0)
        } else {
            (uas_sum / count as f64, las_sum / count as f64)
        }
    }

    /// The underlying transition classifier.
    pub fn model(&self) -> &AveragedPerceptron {
        &self.model
    }

    /// Mutable model access (lint-test fault injection).
    #[doc(hidden)]
    pub fn model_mut(&mut self) -> &mut AveragedPerceptron {
        &mut self.model
    }

    /// The transition inventory the classifier chooses from.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Number of features in the underlying classifier.
    pub fn num_features(&self) -> usize {
        self.model.num_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DepLabel;

    fn words(ws: &[&str]) -> Vec<String> {
        ws.iter().map(|s| s.to_string()).collect()
    }

    /// Tiny treebank of imperative recipe-style sentences.
    fn treebank() -> Vec<ParseExample> {
        use DepLabel::*;
        use PennTag::*;
        let mut bank = vec![ParseExample {
            words: words(&["boil", "the", "water"]),
            tags: vec![VB, DT, NN],
            tree: DepTree::new(vec![None, Some(2), Some(0)], vec![Root, Det, Dobj]).unwrap(),
        }];
        // "chop the onion"
        bank.push(ParseExample {
            words: words(&["chop", "the", "onion"]),
            tags: vec![VB, DT, NN],
            tree: DepTree::new(vec![None, Some(2), Some(0)], vec![Root, Det, Dobj]).unwrap(),
        });
        // "stir gently"
        bank.push(ParseExample {
            words: words(&["stir", "gently"]),
            tags: vec![VB, RB],
            tree: DepTree::new(vec![None, Some(0)], vec![Root, Advmod]).unwrap(),
        });
        // "fry the potatoes in a pan"
        bank.push(ParseExample {
            words: words(&["fry", "the", "potatoes", "in", "a", "pan"]),
            tags: vec![VB, DT, NNS, IN, DT, NN],
            tree: DepTree::new(
                vec![None, Some(2), Some(0), Some(0), Some(5), Some(3)],
                vec![Root, Det, Dobj, Prep, Det, Pobj],
            )
            .unwrap(),
        });
        bank
    }

    #[test]
    fn fits_training_treebank() {
        let bank = treebank();
        let parser = DependencyParser::train(
            &bank,
            &ParserConfig {
                epochs: 20,
                seed: 1,
            },
        );
        let (uas, las) = parser.evaluate(&bank);
        assert!(uas > 0.95, "UAS {uas}");
        assert!(las > 0.95, "LAS {las}");
    }

    #[test]
    fn generalizes_to_same_structure_new_words() {
        let bank = treebank();
        let parser = DependencyParser::train(
            &bank,
            &ParserConfig {
                epochs: 20,
                seed: 1,
            },
        );
        use PennTag::*;
        let tree = parser.parse(&words(&["mince", "the", "garlic"]), &[VB, DT, NN]);
        assert_eq!(tree.root(), Some(0));
        assert_eq!(tree.head(2), Some(0));
        assert_eq!(tree.label(2), DepLabel::Dobj);
    }

    #[test]
    fn parse_always_returns_valid_tree() {
        let bank = treebank();
        let parser = DependencyParser::train(&bank, &ParserConfig { epochs: 2, seed: 1 });
        use PennTag::*;
        // Nonsense input still yields a well-formed tree.
        let tree = parser.parse(
            &words(&["pan", "pan", "pan", "pan", "pan"]),
            &[NN, NN, NN, NN, NN],
        );
        assert_eq!(tree.len(), 5);
        assert!(tree.root().is_some());
    }

    #[test]
    fn empty_sentence() {
        let parser = DependencyParser::train(&treebank(), &ParserConfig { epochs: 1, seed: 1 });
        let tree = parser.parse(&[], &[]);
        assert!(tree.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let bank = treebank();
        let a = DependencyParser::train(&bank, &ParserConfig { epochs: 5, seed: 3 });
        let b = DependencyParser::train(&bank, &ParserConfig { epochs: 5, seed: 3 });
        use PennTag::*;
        let w = words(&["saute", "the", "shallots"]);
        let t = [VB, DT, NNS];
        assert_eq!(a.parse(&w, &t), b.parse(&w, &t));
    }

    #[test]
    fn beam_one_matches_greedy() {
        let bank = treebank();
        let parser = DependencyParser::train(
            &bank,
            &ParserConfig {
                epochs: 10,
                seed: 2,
            },
        );
        use PennTag::*;
        for (w, t) in [
            (words(&["boil", "the", "water"]), vec![VB, DT, NN]),
            (
                words(&["fry", "the", "potatoes", "in", "a", "pan"]),
                vec![VB, DT, NNS, IN, DT, NN],
            ),
        ] {
            assert_eq!(parser.parse_beam(&w, &t, 1), parser.parse(&w, &t));
        }
    }

    #[test]
    fn wider_beam_scores_monotonically() {
        // The beam optimizes cumulative model score: the winning score is
        // non-decreasing in the beam width. (Gold accuracy need not be —
        // the classifier was trained for greedy decoding.)
        let bank = treebank();
        let parser = DependencyParser::train(&bank, &ParserConfig { epochs: 3, seed: 5 });
        for ex in &bank {
            let mut last = f64::NEG_INFINITY;
            for beam in [1usize, 2, 4, 8] {
                let (score, tree) = parser.parse_beam_scored(&ex.words, &ex.tags, beam);
                assert!(score >= last - 1e-9, "beam {beam}: {score} < {last}");
                assert_eq!(tree.len(), ex.words.len());
                last = score;
            }
        }
    }

    #[test]
    fn beam_parse_is_well_formed_on_nonsense() {
        let bank = treebank();
        let parser = DependencyParser::train(&bank, &ParserConfig { epochs: 2, seed: 1 });
        use PennTag::*;
        let tree = parser.parse_beam(&words(&["a", "a", "a", "a"]), &[DT, DT, DT, DT], 3);
        assert_eq!(tree.len(), 4);
        assert!(tree.root().is_some());
        assert!(parser.parse_beam(&[], &[], 2).is_empty());
    }

    #[test]
    fn evaluate_empty_bank() {
        let parser = DependencyParser::train(&treebank(), &ParserConfig { epochs: 1, seed: 1 });
        assert_eq!(parser.evaluate(&[]), (0.0, 0.0));
    }
}
