//! Labeled dependency trees.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dependency relation labels (the subset of Universal/Stanford labels that
/// recipe instructions exercise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DepLabel {
    /// Sentence root (attached to the virtual root node).
    Root,
    /// Nominal subject: `water` in *the water boils*.
    Nsubj,
    /// Passive nominal subject.
    NsubjPass,
    /// Direct object: `potatoes` in *boil the potatoes*.
    Dobj,
    /// Object of a preposition: `pan` in *in a pan*.
    Pobj,
    /// Prepositional modifier: `in` in *fry in a pan*.
    Prep,
    /// Determiner: `the`, `a`.
    Det,
    /// Adjectival modifier: `large` in *a large pot*.
    Amod,
    /// Adverbial modifier: `gently` in *stir gently*.
    Advmod,
    /// Numeric modifier: `2` in *2 minutes*.
    Nummod,
    /// Noun compound: `olive` in *olive oil*.
    Compound,
    /// Conjunct: second member of a coordination.
    Conj,
    /// Coordinating conjunction word itself (`and`).
    Cc,
    /// Particle: `up` in *cut up*.
    Prt,
    /// Clausal complement marker (`until` clauses).
    Mark,
    /// Adverbial clause: `until tender` attached to the verb.
    Advcl,
    /// Open clausal complement.
    Xcomp,
    /// Punctuation.
    Punct,
    /// Unclassified dependency.
    Dep,
}

impl DepLabel {
    /// All labels in canonical (id) order.
    pub const ALL: [DepLabel; 19] = [
        DepLabel::Root,
        DepLabel::Nsubj,
        DepLabel::NsubjPass,
        DepLabel::Dobj,
        DepLabel::Pobj,
        DepLabel::Prep,
        DepLabel::Det,
        DepLabel::Amod,
        DepLabel::Advmod,
        DepLabel::Nummod,
        DepLabel::Compound,
        DepLabel::Conj,
        DepLabel::Cc,
        DepLabel::Prt,
        DepLabel::Mark,
        DepLabel::Advcl,
        DepLabel::Xcomp,
        DepLabel::Punct,
        DepLabel::Dep,
    ];

    /// Dense id.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&l| l == self)
            .expect("label in ALL")
    }

    /// Canonical lowercase string (spaCy style).
    pub fn as_str(self) -> &'static str {
        match self {
            DepLabel::Root => "ROOT",
            DepLabel::Nsubj => "nsubj",
            DepLabel::NsubjPass => "nsubjpass",
            DepLabel::Dobj => "dobj",
            DepLabel::Pobj => "pobj",
            DepLabel::Prep => "prep",
            DepLabel::Det => "det",
            DepLabel::Amod => "amod",
            DepLabel::Advmod => "advmod",
            DepLabel::Nummod => "nummod",
            DepLabel::Compound => "compound",
            DepLabel::Conj => "conj",
            DepLabel::Cc => "cc",
            DepLabel::Prt => "prt",
            DepLabel::Mark => "mark",
            DepLabel::Advcl => "advcl",
            DepLabel::Xcomp => "xcomp",
            DepLabel::Punct => "punct",
            DepLabel::Dep => "dep",
        }
    }
}

impl fmt::Display for DepLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors from [`DepTree::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// `heads` and `labels` lengths differ.
    LengthMismatch,
    /// A head index is out of range or a token heads itself.
    BadHead(usize),
    /// Not exactly one root.
    RootCount(usize),
    /// The head relation contains a cycle through the given token.
    Cycle(usize),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::LengthMismatch => write!(f, "heads/labels length mismatch"),
            TreeError::BadHead(i) => write!(f, "bad head for token {i}"),
            TreeError::RootCount(n) => write!(f, "expected exactly one root, found {n}"),
            TreeError::Cycle(i) => write!(f, "cycle through token {i}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A labeled dependency tree over `n` tokens.
///
/// `heads[i] == None` marks the root; otherwise `heads[i]` is the index of
/// token *i*'s head. Construction validates single-rootedness and
/// acyclicity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepTree {
    heads: Vec<Option<usize>>,
    labels: Vec<DepLabel>,
}

impl DepTree {
    /// Validate and build a tree.
    pub fn new(heads: Vec<Option<usize>>, labels: Vec<DepLabel>) -> Result<Self, TreeError> {
        if heads.len() != labels.len() {
            return Err(TreeError::LengthMismatch);
        }
        let n = heads.len();
        let mut roots = 0usize;
        for (i, h) in heads.iter().enumerate() {
            match h {
                None => roots += 1,
                Some(h) => {
                    if *h >= n || *h == i {
                        return Err(TreeError::BadHead(i));
                    }
                }
            }
        }
        if n > 0 && roots != 1 {
            return Err(TreeError::RootCount(roots));
        }
        // Acyclicity: walk up from every node; paths are <= n long.
        for start in 0..n {
            let mut cur = start;
            let mut steps = 0usize;
            while let Some(h) = heads[cur] {
                cur = h;
                steps += 1;
                if steps > n {
                    return Err(TreeError::Cycle(start));
                }
            }
        }
        Ok(DepTree { heads, labels })
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// True for the empty tree.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Head of token `i` (`None` for the root).
    pub fn head(&self, i: usize) -> Option<usize> {
        self.heads[i]
    }

    /// Dependency label of token `i` (relation to its head).
    pub fn label(&self, i: usize) -> DepLabel {
        self.labels[i]
    }

    /// Index of the root token; `None` only for the empty tree.
    pub fn root(&self) -> Option<usize> {
        self.heads.iter().position(|h| h.is_none())
    }

    /// Children of token `i` in surface order.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&j| self.heads[j] == Some(i))
            .collect()
    }

    /// Children of `i` whose relation is `label`.
    pub fn children_with_label(&self, i: usize, label: DepLabel) -> Vec<usize> {
        self.children(i)
            .into_iter()
            .filter(|&j| self.labels[j] == label)
            .collect()
    }

    /// Is the tree projective (no crossing arcs)? The synthetic grammar
    /// only emits projective trees, which the arc-standard oracle requires.
    pub fn is_projective(&self) -> bool {
        let arcs: Vec<(usize, usize)> = (0..self.len())
            .filter_map(|d| self.heads[d].map(|h| (h.min(d), h.max(d))))
            .collect();
        for &(a1, a2) in &arcs {
            for &(b1, b2) in &arcs {
                // Crossing: a1 < b1 < a2 < b2.
                if a1 < b1 && b1 < a2 && a2 < b2 {
                    return false;
                }
            }
        }
        true
    }

    /// Unlabeled attachment agreement with another tree (fraction of tokens
    /// with the same head).
    pub fn uas(&self, other: &DepTree) -> f64 {
        assert_eq!(self.len(), other.len());
        if self.is_empty() {
            return 0.0;
        }
        let same = (0..self.len())
            .filter(|&i| self.heads[i] == other.heads[i])
            .count();
        same as f64 / self.len() as f64
    }

    /// Labeled attachment agreement (same head *and* same label).
    pub fn las(&self, other: &DepTree) -> f64 {
        assert_eq!(self.len(), other.len());
        if self.is_empty() {
            return 0.0;
        }
        let same = (0..self.len())
            .filter(|&i| self.heads[i] == other.heads[i] && self.labels[i] == other.labels[i])
            .count();
        same as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// "bring the water" : bring(root) -> water(dobj) -> the(det)
    fn small_tree() -> DepTree {
        DepTree::new(
            vec![None, Some(2), Some(0)],
            vec![DepLabel::Root, DepLabel::Det, DepLabel::Dobj],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let t = small_tree();
        assert_eq!(t.len(), 3);
        assert_eq!(t.root(), Some(0));
        assert_eq!(t.head(2), Some(0));
        assert_eq!(t.label(2), DepLabel::Dobj);
        assert_eq!(t.children(0), vec![2]);
        assert_eq!(t.children_with_label(2, DepLabel::Det), vec![1]);
    }

    #[test]
    fn rejects_cycles() {
        let r = DepTree::new(
            vec![Some(1), Some(0), None],
            vec![DepLabel::Dep, DepLabel::Dep, DepLabel::Root],
        );
        assert!(matches!(r, Err(TreeError::Cycle(_))));
    }

    #[test]
    fn rejects_multi_root_and_self_head() {
        assert!(matches!(
            DepTree::new(vec![None, None], vec![DepLabel::Root, DepLabel::Root]),
            Err(TreeError::RootCount(2))
        ));
        assert!(matches!(
            DepTree::new(vec![None, Some(1)], vec![DepLabel::Root, DepLabel::Dep]),
            Err(TreeError::BadHead(1))
        ));
        assert!(matches!(
            DepTree::new(vec![None, Some(9)], vec![DepLabel::Root, DepLabel::Dep]),
            Err(TreeError::BadHead(1))
        ));
    }

    #[test]
    fn rejects_length_mismatch() {
        assert_eq!(
            DepTree::new(vec![None], vec![]),
            Err(TreeError::LengthMismatch)
        );
    }

    #[test]
    fn projectivity() {
        assert!(small_tree().is_projective());
        // Crossing arcs: 0->2 and 1->3.
        let crossing = DepTree::new(
            vec![None, Some(3), Some(0), Some(0)],
            vec![DepLabel::Root, DepLabel::Dep, DepLabel::Dep, DepLabel::Dep],
        )
        .unwrap();
        assert!(!crossing.is_projective());
    }

    #[test]
    fn attachment_scores() {
        let a = small_tree();
        let b = DepTree::new(
            vec![None, Some(0), Some(0)],
            vec![DepLabel::Root, DepLabel::Det, DepLabel::Dobj],
        )
        .unwrap();
        assert!((a.uas(&b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.las(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tree_is_fine() {
        let t = DepTree::new(vec![], vec![]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.root(), None);
        assert!(t.is_projective());
    }

    #[test]
    fn label_indices_are_dense_and_unique() {
        for (i, l) in DepLabel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }
}
