//! Verb-argument extraction rules (§III.B).
//!
//! For every verb in a parsed instruction we collect:
//!
//! * **subjects** — `nsubj` / `nsubjpass` children;
//! * **objects** — `dobj` children (plus their `conj` expansions: *chop the
//!   onions and carrots* yields both nouns);
//! * **prepositional objects** — `pobj` grandchildren through `prep`
//!   children (*fry … with olive oil in a pan* yields both `oil` and
//!   `pan`), likewise conj-expanded.
//!
//! The frames are later filtered against the NER-derived process and
//! utensil dictionaries in `recipe-core` to form the paper's many-to-many
//! event tuples.

use crate::tree::{DepLabel, DepTree};
use recipe_tagger::PennTag;
use serde::{Deserialize, Serialize};

/// Arguments collected around one verb occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerbFrame {
    /// Token index of the verb.
    pub verb: usize,
    /// Token indices of subjects.
    pub subjects: Vec<usize>,
    /// Token indices of direct objects (conj-expanded).
    pub objects: Vec<usize>,
    /// Token indices of prepositional objects (conj-expanded), with the
    /// preposition token that introduced each.
    pub prep_objects: Vec<(usize, usize)>,
}

impl VerbFrame {
    /// All argument token indices, without the introducing prepositions.
    pub fn all_arguments(&self) -> Vec<usize> {
        let mut v = self.subjects.clone();
        v.extend(&self.objects);
        v.extend(self.prep_objects.iter().map(|&(_, o)| o));
        v
    }
}

/// Expand a head noun with its `conj` chain (`onions and carrots` →
/// `[onions, carrots]`).
fn conj_expand(tree: &DepTree, head: usize) -> Vec<usize> {
    let mut out = vec![head];
    let mut frontier = vec![head];
    while let Some(h) = frontier.pop() {
        for c in tree.children_with_label(h, DepLabel::Conj) {
            out.push(c);
            frontier.push(c);
        }
    }
    out
}

/// Extract a [`VerbFrame`] for every verb-tagged token of the sentence.
///
/// Verbs coordinated with another verb (`cover and simmer`) each get their
/// own frame; a conjunct verb with no arguments of its own inherits the
/// arguments of the verb it is conjoined to (both processes apply to the
/// same entities).
pub fn verb_frames(tree: &DepTree, tags: &[PennTag]) -> Vec<VerbFrame> {
    assert_eq!(tree.len(), tags.len(), "tree/tags length mismatch");
    let mut frames = Vec::new();
    for (v, tag) in tags.iter().enumerate() {
        if !tag.is_verb() {
            continue;
        }
        frames.push(frame_for_verb(tree, v));
    }
    // Argument inheritance for bare conjunct verbs.
    let originals = frames.clone();
    for frame in &mut frames {
        if frame.subjects.is_empty() && frame.objects.is_empty() && frame.prep_objects.is_empty() {
            if let Some(head) = tree.head(frame.verb) {
                if tree.label(frame.verb) == DepLabel::Conj && tags[head].is_verb() {
                    if let Some(parent) = originals.iter().find(|f| f.verb == head) {
                        frame.subjects = parent.subjects.clone();
                        frame.objects = parent.objects.clone();
                        frame.prep_objects = parent.prep_objects.clone();
                    }
                }
            }
        }
    }
    frames
}

fn frame_for_verb(tree: &DepTree, v: usize) -> VerbFrame {
    let mut subjects = Vec::new();
    let mut objects = Vec::new();
    let mut prep_objects = Vec::new();
    for c in tree.children(v) {
        match tree.label(c) {
            DepLabel::Nsubj | DepLabel::NsubjPass => subjects.extend(conj_expand(tree, c)),
            DepLabel::Dobj => objects.extend(conj_expand(tree, c)),
            DepLabel::Prep => {
                for p in tree.children_with_label(c, DepLabel::Pobj) {
                    for o in conj_expand(tree, p) {
                        prep_objects.push((c, o));
                    }
                }
            }
            _ => {}
        }
    }
    VerbFrame {
        verb: v,
        subjects,
        objects,
        prep_objects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DepLabel::*;
    use PennTag::*;

    /// "fry the potatoes with olive oil in a pan"
    ///  0   1   2        3    4     5   6  7 8
    fn fry_tree() -> (DepTree, Vec<PennTag>) {
        let tree = DepTree::new(
            vec![
                None,    // fry (root)
                Some(2), // the -> potatoes
                Some(0), // potatoes -> fry (dobj)
                Some(0), // with -> fry (prep)
                Some(5), // olive -> oil (compound)
                Some(3), // oil -> with (pobj)
                Some(0), // in -> fry (prep)
                Some(8), // a -> pan
                Some(6), // pan -> in (pobj)
            ],
            vec![Root, Det, Dobj, Prep, Compound, Pobj, Prep, Det, Pobj],
        )
        .unwrap();
        let tags = vec![VB, DT, NNS, IN, JJ, NN, IN, DT, NN];
        (tree, tags)
    }

    #[test]
    fn collects_objects_and_prep_objects() {
        let (tree, tags) = fry_tree();
        let frames = verb_frames(&tree, &tags);
        assert_eq!(frames.len(), 1);
        let f = &frames[0];
        assert_eq!(f.verb, 0);
        assert_eq!(f.objects, vec![2]);
        assert_eq!(f.prep_objects, vec![(3, 5), (6, 8)]);
        assert_eq!(f.all_arguments(), vec![2, 5, 8]);
    }

    #[test]
    fn conj_expansion_of_objects() {
        // "chop the onions and carrots": onions(dobj) -> carrots(conj)
        let tree = DepTree::new(
            vec![None, Some(2), Some(0), Some(4), Some(2)],
            vec![Root, Det, Dobj, Cc, Conj],
        )
        .unwrap();
        // heads: and -> carrots? Standard: cc attaches to first conjunct;
        // carrots(conj) -> onions. Fix: and -> onions.
        let tree = DepTree::new(
            vec![None, Some(2), Some(0), Some(2), Some(2)],
            vec![Root, Det, Dobj, Cc, Conj],
        )
        .unwrap_or(tree);
        let tags = vec![VB, DT, NNS, CC, NNS];
        let frames = verb_frames(&tree, &tags);
        assert_eq!(frames[0].objects, vec![2, 4]);
    }

    #[test]
    fn subjects_are_collected() {
        // "the water boils": water(nsubj) <- boils
        let tree = DepTree::new(vec![Some(1), Some(2), None], vec![Det, Nsubj, Root]).unwrap();
        let tags = vec![DT, NN, VBZ];
        let frames = verb_frames(&tree, &tags);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].subjects, vec![1]);
    }

    #[test]
    fn conjoined_verb_inherits_arguments() {
        // "cover and simmer the stew": cover(root) -> simmer(conj);
        // the stew attaches to cover as dobj.
        let tree = DepTree::new(
            vec![None, Some(0), Some(0), Some(4), Some(0)],
            vec![Root, Cc, Conj, Det, Dobj],
        )
        .unwrap();
        let tags = vec![VB, CC, VB, DT, NN];
        let frames = verb_frames(&tree, &tags);
        assert_eq!(frames.len(), 2);
        let simmer = frames.iter().find(|f| f.verb == 2).unwrap();
        assert_eq!(simmer.objects, vec![4], "conjunct inherits the dobj");
    }

    #[test]
    fn non_verbs_get_no_frames() {
        let tree = DepTree::new(vec![None, Some(0)], vec![Root, Amod]).unwrap();
        let tags = vec![NN, JJ];
        assert!(verb_frames(&tree, &tags).is_empty());
    }

    #[test]
    fn multiple_independent_verbs() {
        // "boil water ; drain pasta" modeled as boil(root) with drain(conj)
        // having its own object.
        let tree = DepTree::new(
            vec![None, Some(0), Some(0), Some(2)],
            vec![Root, Dobj, Conj, Dobj],
        )
        .unwrap();
        let tags = vec![VB, NN, VB, NN];
        let frames = verb_frames(&tree, &tags);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].objects, vec![1]);
        assert_eq!(frames[1].objects, vec![3]);
    }
}
