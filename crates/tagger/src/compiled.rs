//! Compiled POS tagging: the averaged perceptron frozen into a sparse CSR
//! weight layout, decoding through a reusable [`TagScratch`] arena.
//!
//! [`PosTagger::tag`] already streams feature strings through a scratch
//! buffer, but it still allocates a fresh normalized-context `Vec<String>`
//! per sentence and scores every class of every feature row, zeros
//! included. [`CompiledPosTagger`] freezes the trained weights into CSR
//! runs of `(class, weight)` nonzeros and reuses the context buffer, the
//! feature-id buffer and the score row across an entire corpus.
//!
//! The greedy decode loop — tag-dictionary short-circuit, feature stream
//! order, score accumulation order, and `argmax` tie-breaking — replicates
//! the reference tagger exactly. Pruning an exact-zero weight can only
//! flip the sign of a zero intermediate sum, which no comparison in the
//! decoder can observe, so compiled tags are identical to
//! [`PosTagger::tag`] on every input (enforced by tests here and by lint
//! rule RA208).

use crate::perceptron::argmax;
use crate::tagger::{for_each_feature, normalize_into, PosTagger, END, START};
use crate::tagset::PennTag;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Telemetry handles for compiled tagging, resolved once from the global
/// registry. Recording is gated on [`recipe_obs::enabled`] and never
/// affects the tags produced.
pub(crate) struct TagMetrics {
    /// Sentences tagged through [`CompiledPosTagger::tag_into`].
    pub(crate) sentences: Arc<recipe_obs::Counter>,
    /// Tokens across those sentences.
    pub(crate) tokens: Arc<recipe_obs::Counter>,
    /// Tokens short-circuited by the unambiguous-word dictionary.
    pub(crate) tagdict_hits: Arc<recipe_obs::Counter>,
}

pub(crate) fn tag_metrics() -> &'static TagMetrics {
    static METRICS: OnceLock<TagMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = recipe_obs::global();
        TagMetrics {
            sentences: reg.counter("tagger.sentences"),
            tokens: reg.counter("tagger.tokens"),
            tagdict_hits: reg.counter("tagger.tagdict_hits"),
        }
    })
}

/// Per-worker scratch buffers for compiled tagging: allocated once, reused
/// across every sentence a worker processes.
#[derive(Debug, Default)]
pub struct TagScratch {
    /// Normalized context (two START sentinels, the words, two END
    /// sentinels); the inner `String`s are reused.
    pub(crate) context: Vec<String>,
    /// Active feature ids for the current position.
    pub(crate) ids: Vec<u32>,
    /// Per-class score row.
    pub(crate) scores: Vec<f64>,
    /// Format buffer for streaming feature extraction.
    pub(crate) scratch_str: String,
}

impl TagScratch {
    /// Fresh, empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A [`PosTagger`] frozen for serving: CSR weight runs plus the
/// unambiguous-word dictionary, tagging through a caller-owned
/// [`TagScratch`].
#[derive(Debug, Clone)]
pub struct CompiledPosTagger {
    /// Feature string → compiled row id. Ids are assigned in sorted
    /// feature-string order, so compilation is deterministic.
    pub(crate) ids: HashMap<String, u32>,
    /// CSR row offsets, length `num_features + 1`.
    pub(crate) offsets: Vec<u32>,
    /// Class ids of the nonzero weights, row-major by feature.
    pub(crate) classes: Vec<u32>,
    /// Weights parallel to `classes`.
    pub(crate) weights: Vec<f64>,
    pub(crate) num_classes: usize,
    /// Words that always carry the same tag in training data.
    pub(crate) tagdict: HashMap<String, PennTag>,
}

impl CompiledPosTagger {
    /// Compile a trained tagger. The compiled tagger snapshots the
    /// weights: later mutation of `tagger` is not reflected.
    pub fn compile(tagger: &PosTagger) -> Self {
        let model = tagger.model();
        let num_classes = model.num_classes();
        let mut rows: Vec<(&str, &[f64])> = model.weight_rows().collect();
        rows.sort_by_key(|&(f, _)| f);
        let mut ids = HashMap::with_capacity(rows.len());
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut classes = Vec::new();
        let mut weights = Vec::new();
        offsets.push(0u32);
        for (feature, row) in rows {
            ids.insert(feature.to_string(), (offsets.len() - 1) as u32);
            for (c, &w) in row.iter().enumerate() {
                if w != 0.0 {
                    classes.push(c as u32);
                    weights.push(w);
                }
            }
            offsets.push(weights.len() as u32);
        }
        CompiledPosTagger {
            ids,
            offsets,
            classes,
            weights,
            num_classes,
            tagdict: tagger.tagdict().map(|(w, t)| (w.to_string(), t)).collect(),
        }
    }

    /// Number of compiled feature rows.
    pub fn num_features(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (nonzero) weights.
    pub fn nnz(&self) -> usize {
        self.weights.len()
    }

    /// Class scores for the active feature ids, written into
    /// `scores` (length `num_classes`). Same per-feature accumulation
    /// order as [`crate::perceptron::AveragedPerceptron::scores_ids`],
    /// minus the exact-zero terms.
    #[inline]
    fn scores_into(&self, ids: &[u32], scores: &mut [f64]) {
        scores.fill(0.0);
        for &id in ids {
            let lo = self.offsets[id as usize] as usize;
            let hi = self.offsets[id as usize + 1] as usize;
            for k in lo..hi {
                scores[self.classes[k] as usize] += self.weights[k];
            }
        }
    }

    /// Tag a tokenized sentence into `out`, reusing `scratch` for every
    /// intermediate buffer. Output is identical to [`PosTagger::tag`] on
    /// the tagger this was compiled from.
    pub fn tag_into(&self, words: &[String], scratch: &mut TagScratch, out: &mut Vec<PennTag>) {
        let _span = recipe_obs::span!("tagger.tag");
        out.clear();
        let n = words.len();
        let ctx_len = n + 4;
        if scratch.context.len() < ctx_len {
            scratch.context.resize_with(ctx_len, String::new);
        }
        let TagScratch {
            context,
            ids,
            scores,
            scratch_str,
        } = scratch;
        scores.resize(self.num_classes, 0.0);
        context[0].clear();
        context[0].push_str(START[0]);
        context[1].clear();
        context[1].push_str(START[1]);
        for (k, w) in words.iter().enumerate() {
            normalize_into(w, &mut context[k + 2]);
        }
        context[n + 2].clear();
        context[n + 2].push_str(END[0]);
        context[n + 3].clear();
        context[n + 3].push_str(END[1]);
        let context = &context[..ctx_len];

        let mut prev: &str = START[0];
        let mut prev2: &str = START[1];
        let mut dict_hits = 0u64;
        // Provenance is purely observational: margins are read off the
        // score row the tagger already computed.
        let explain = recipe_obs::provenance::enabled();
        for i in 0..n {
            let norm = context[i + 2].as_str();
            let tag = if let Some(&t) = self.tagdict.get(norm) {
                dict_hits += 1;
                if explain {
                    recipe_obs::provenance::record(recipe_obs::provenance::Record {
                        kind: "tagger.margin",
                        site: "tagger.pos",
                        subject: words[i].clone(),
                        decision: t.as_str().to_string(),
                        detail: "tagdict".to_string(),
                        index: i,
                        margin: None,
                    });
                }
                t
            } else {
                ids.clear();
                for_each_feature(i, context, prev, prev2, scratch_str, |feat| {
                    if let Some(&id) = self.ids.get(feat) {
                        ids.push(id);
                    }
                });
                self.scores_into(ids, scores);
                let tag = PennTag::from_index(argmax(scores));
                if explain {
                    recipe_obs::provenance::record(recipe_obs::provenance::Record {
                        kind: "tagger.margin",
                        site: "tagger.pos",
                        subject: words[i].clone(),
                        decision: tag.as_str().to_string(),
                        detail: "model".to_string(),
                        index: i,
                        margin: Some(Self::margin_of(scores)),
                    });
                }
                tag
            };
            out.push(tag);
            prev2 = prev;
            prev = tag.as_str();
        }
        if recipe_obs::enabled() {
            let m = tag_metrics();
            m.sentences.inc();
            m.tokens.add(n as u64);
            m.tagdict_hits.add(dict_hits);
        }
    }

    /// Best minus second-best class score: how decisively the predicted
    /// tag won. Infinite for a single-class score row.
    pub(crate) fn margin_of(scores: &[f64]) -> f64 {
        let mut best = f64::NEG_INFINITY;
        let mut second = f64::NEG_INFINITY;
        for &s in scores {
            if s > best {
                second = best;
                best = s;
            } else if s > second {
                second = s;
            }
        }
        best - second
    }

    /// Allocating convenience wrapper around [`Self::tag_into`].
    pub fn tag(&self, words: &[String]) -> Vec<PennTag> {
        let mut scratch = TagScratch::new();
        let mut out = Vec::new();
        self.tag_into(words, &mut scratch, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagger::TaggedSentence;

    fn s(words: &[&str], tags: &[PennTag]) -> TaggedSentence {
        (words.iter().map(|w| w.to_string()).collect(), tags.to_vec())
    }

    fn toy_corpus() -> Vec<TaggedSentence> {
        use PennTag::*;
        let mut c = Vec::new();
        for _ in 0..12 {
            c.push(s(&["2", "cups", "flour"], &[CD, NNS, NN]));
            c.push(s(&["1", "cup", "sugar"], &[CD, NN, NN]));
            c.push(s(&["boil", "the", "water"], &[VB, DT, NN]));
            c.push(s(&["finely", "chopped", "onion"], &[RB, VBN, NN]));
            c.push(s(&["2-3", "large", "eggs"], &[CD, JJ, NNS]));
            // "mix" is ambiguous (verb and noun) so it stays out of the
            // tag dictionary and forces real perceptron training.
            c.push(s(&["mix", "the", "batter"], &[VB, DT, NN]));
            c.push(s(&["pour", "the", "mix"], &[VB, DT, NN]));
            c.push(s(&["mix", "well"], &[VB, RB]));
        }
        c
    }

    #[test]
    fn compiled_tags_match_reference_on_varied_inputs() {
        let tagger = PosTagger::train(&toy_corpus(), 6, 7);
        let compiled = CompiledPosTagger::compile(&tagger);
        let mut scratch = TagScratch::new();
        let mut out = Vec::new();
        let sentences: Vec<Vec<String>> = vec![
            vec![],
            vec!["flour".into()],
            vec!["7".into(), "cups".into(), "sugar".into()],
            vec!["Mix".into(), "the".into(), "chopped".into(), "onion".into()],
            vec!["1/2".into(), "jalapeño".into()],
            // Longer than anything before it: scratch buffers must grow.
            (0..20).map(|i| format!("word{i}")).collect(),
            // Then short again: stale buffer contents must not leak.
            vec!["boil".into()],
        ];
        for words in &sentences {
            compiled.tag_into(words, &mut scratch, &mut out);
            assert_eq!(out, tagger.tag(words), "{words:?}");
            assert_eq!(compiled.tag(words), tagger.tag(words));
        }
    }

    #[test]
    fn provenance_labels_tagdict_and_model_decisions_without_changing_tags() {
        let tagger = PosTagger::train(&toy_corpus(), 6, 7);
        let compiled = CompiledPosTagger::compile(&tagger);
        let mut scratch = TagScratch::new();
        let mut plain = Vec::new();
        let mut explained = Vec::new();
        // "the" is unambiguous (tagdict), "mix" is ambiguous (model).
        let words: Vec<String> = vec!["mix".into(), "the".into(), "batter".into()];

        compiled.tag_into(&words, &mut scratch, &mut plain);
        recipe_obs::provenance::reset();
        recipe_obs::provenance::set_enabled(true);
        compiled.tag_into(&words, &mut scratch, &mut explained);
        recipe_obs::provenance::set_enabled(false);
        let records = recipe_obs::provenance::drain();

        assert_eq!(explained, plain, "provenance perturbed tagging");
        let ours: Vec<_> = records
            .iter()
            .filter(|r| r.site == "tagger.pos" && words.iter().any(|w| *w == r.subject))
            .collect();
        assert_eq!(ours.len(), words.len(), "{records:?}");
        let mix = ours.iter().find(|r| r.subject == "mix").expect("mix");
        assert_eq!(mix.detail, "model");
        assert!(mix.margin.is_some(), "scored tokens carry a margin");
        let the = ours.iter().find(|r| r.subject == "the").expect("the");
        assert_eq!(the.detail, "tagdict");
        assert_eq!(the.margin, None, "dictionary hits have no margin");
        assert_eq!(the.decision, "DT");
    }

    #[test]
    fn compilation_prunes_zero_weights() {
        let tagger = PosTagger::train(&toy_corpus(), 4, 1);
        let compiled = CompiledPosTagger::compile(&tagger);
        assert_eq!(compiled.num_features(), tagger.model().num_features());
        let dense = compiled.num_features() * tagger.model().num_classes();
        assert!(compiled.nnz() < dense, "{} !< {dense}", compiled.nnz());
        assert!(compiled.nnz() > 0);
    }

    #[test]
    fn compilation_is_deterministic() {
        let tagger = PosTagger::train(&toy_corpus(), 4, 3);
        let a = CompiledPosTagger::compile(&tagger);
        let b = CompiledPosTagger::compile(&tagger);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.classes, b.classes);
        assert_eq!(
            a.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            b.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
        );
    }
}
