//! Averaged multiclass perceptron over sparse string features.
//!
//! The classifier behind both the POS tagger and the dependency parser's
//! transition classifier. Weights are kept per feature as a dense row over
//! the (small) class inventory; averaging uses the lazy totals/timestamps
//! trick so training stays O(active features) per update.
//!
//! Feature strings are interned to dense `u32` ids: the rows live in a
//! `Vec` indexed by id, and the hot paths ([`AveragedPerceptron::scores_ids`],
//! [`AveragedPerceptron::update_ids`]) never touch a string. Callers that
//! stream features through a scratch buffer (the POS tagger) pay one hash
//! lookup per feature and zero per-feature allocations; the string-slice
//! API remains for callers that already hold feature vectors.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-feature weight row with the bookkeeping needed for lazy averaging.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Row {
    /// Current weights, one per class.
    w: Vec<f64>,
    /// Accumulated `w * steps` totals, one per class.
    totals: Vec<f64>,
    /// Step at which each class weight last changed.
    stamps: Vec<u64>,
}

impl Row {
    fn new(classes: usize) -> Self {
        Row {
            w: vec![0.0; classes],
            totals: vec![0.0; classes],
            stamps: vec![0; classes],
        }
    }
}

/// Averaged multiclass perceptron.
///
/// Classes are dense `usize` ids in `0..num_classes`; features are interned
/// strings. Scoring sums the weight rows of the active features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AveragedPerceptron {
    /// Feature string → dense row id.
    ids: HashMap<String, u32>,
    /// Weight rows, indexed by feature id.
    rows: Vec<Row>,
    num_classes: usize,
    /// Global update counter (number of `update` calls so far).
    steps: u64,
    /// Whether `finalize_averaging` has run.
    averaged: bool,
}

impl AveragedPerceptron {
    /// Create an empty model for `num_classes` classes.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        AveragedPerceptron {
            ids: HashMap::new(),
            rows: Vec::new(),
            num_classes,
            steps: 0,
            averaged: false,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of distinct features seen.
    pub fn num_features(&self) -> usize {
        self.rows.len()
    }

    /// Dense id of a known feature (`None` for unseen features, which
    /// carry zero weight anyway).
    pub fn feature_id(&self, feature: &str) -> Option<u32> {
        self.ids.get(feature).copied()
    }

    /// Id for `feature`, allocating a fresh zero row on first sight.
    pub fn intern(&mut self, feature: &str) -> u32 {
        if let Some(&id) = self.ids.get(feature) {
            return id;
        }
        let id = self.rows.len() as u32;
        self.ids.insert(feature.to_string(), id);
        self.rows.push(Row::new(self.num_classes));
        id
    }

    /// Iterate `(feature, current weights)` rows, in arbitrary order.
    pub fn weight_rows(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.ids
            .iter()
            .map(|(f, &id)| (f.as_str(), self.rows[id as usize].w.as_slice()))
    }

    /// Overwrite one weight, creating the feature row if absent. Exists
    /// for fault injection in artifact-lint tests; not a training API.
    #[doc(hidden)]
    pub fn inject_weight(&mut self, feature: &str, class: usize, value: f64) {
        let id = self.intern(feature);
        self.rows[id as usize].w[class] = value;
    }

    /// Score every class for the given active feature ids.
    pub fn scores_ids(&self, ids: &[u32]) -> Vec<f64> {
        let mut s = vec![0.0; self.num_classes];
        for &id in ids {
            for (acc, w) in s.iter_mut().zip(&self.rows[id as usize].w) {
                *acc += *w;
            }
        }
        s
    }

    /// Highest-scoring class for the given active feature ids.
    pub fn predict_ids(&self, ids: &[u32]) -> usize {
        argmax(&self.scores_ids(ids))
    }

    /// Score every class for the given active features. Unknown features
    /// are skipped (zero weight).
    pub fn scores(&self, features: &[String]) -> Vec<f64> {
        let mut s = vec![0.0; self.num_classes];
        for f in features {
            if let Some(&id) = self.ids.get(f) {
                for (acc, w) in s.iter_mut().zip(&self.rows[id as usize].w) {
                    *acc += *w;
                }
            }
        }
        s
    }

    /// Highest-scoring class (ties break toward the lower class id, which
    /// keeps prediction deterministic).
    pub fn predict(&self, features: &[String]) -> usize {
        let s = self.scores(features);
        argmax(&s)
    }

    /// Highest-scoring class among `allowed` (used by constrained decoders).
    pub fn predict_constrained(&self, features: &[String], allowed: &[usize]) -> usize {
        debug_assert!(!allowed.is_empty());
        let s = self.scores(features);
        let mut best = allowed[0];
        for &c in &allowed[1..] {
            if s[c] > s[best] {
                best = c;
            }
        }
        best
    }

    /// Perceptron update on interned feature ids: promote `truth`, demote
    /// `guess` (no-op when they agree, except for the step counter).
    pub fn update_ids(&mut self, truth: usize, guess: usize, ids: &[u32]) {
        assert!(
            !self.averaged,
            "cannot keep training after finalize_averaging"
        );
        self.steps += 1;
        if truth == guess {
            return;
        }
        let steps = self.steps;
        for &id in ids {
            let row = &mut self.rows[id as usize];
            for (c, delta) in [(truth, 1.0), (guess, -1.0)] {
                let elapsed = steps - row.stamps[c];
                row.totals[c] += elapsed as f64 * row.w[c];
                row.w[c] += delta;
                row.stamps[c] = steps;
            }
        }
    }

    /// Perceptron update on feature strings, interning as needed.
    pub fn update(&mut self, truth: usize, guess: usize, features: &[String]) {
        assert!(
            !self.averaged,
            "cannot keep training after finalize_averaging"
        );
        if truth == guess {
            self.steps += 1;
            return;
        }
        let ids: Vec<u32> = features.iter().map(|f| self.intern(f)).collect();
        self.update_ids(truth, guess, &ids);
    }

    /// Replace each weight with its average over all training steps.
    /// Call exactly once, after the last `update`.
    pub fn finalize_averaging(&mut self) {
        if self.averaged || self.steps == 0 {
            self.averaged = true;
            return;
        }
        let steps = self.steps;
        for row in &mut self.rows {
            for c in 0..self.num_classes {
                let elapsed = steps - row.stamps[c];
                row.totals[c] += elapsed as f64 * row.w[c];
                row.w[c] = row.totals[c] / steps as f64;
                row.stamps[c] = steps;
            }
        }
        self.averaged = true;
        // Drop all-zero rows (they cost memory and change nothing),
        // compacting surviving ids densely in old-id order.
        let keep: Vec<bool> = self
            .rows
            .iter()
            .map(|row| row.w.iter().any(|&w| w != 0.0))
            .collect();
        let mut remap: Vec<Option<u32>> = Vec::with_capacity(keep.len());
        let mut next = 0u32;
        for &k in &keep {
            if k {
                remap.push(Some(next));
                next += 1;
            } else {
                remap.push(None);
            }
        }
        let mut i = 0;
        self.rows.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
        self.ids.retain(|_, id| match remap[*id as usize] {
            Some(new) => {
                *id = new;
                true
            }
            None => false,
        });
    }
}

/// Index of the maximum value (first on ties). Panics on empty input.
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(fs: &[&str]) -> Vec<String> {
        fs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn learns_a_separable_problem() {
        let mut p = AveragedPerceptron::new(2);
        let a = feats(&["bias", "w=red"]);
        let b = feats(&["bias", "w=blue"]);
        for _ in 0..10 {
            let g = p.predict(&a);
            p.update(0, g, &a);
            let g = p.predict(&b);
            p.update(1, g, &b);
        }
        p.finalize_averaging();
        assert_eq!(p.predict(&a), 0);
        assert_eq!(p.predict(&b), 1);
    }

    #[test]
    fn correct_prediction_changes_nothing_but_steps() {
        let mut p = AveragedPerceptron::new(3);
        let f = feats(&["x"]);
        p.update(1, 0, &f); // creates the row
        let before = p.scores(&f);
        p.update(1, 1, &f); // truth == guess
        assert_eq!(p.scores(&f), before);
    }

    #[test]
    fn averaging_matches_manual_computation() {
        // One feature, two classes, two updates at steps 1 and 2, finalize
        // after 4 steps total.
        let mut p = AveragedPerceptron::new(2);
        let f = feats(&["f"]);
        p.update(0, 1, &f); // step1: w0=+1,w1=-1
        p.update(0, 1, &f); // step2: w0=+2,w1=-2
        p.update(0, 0, &f); // step3: no weight change
        p.update(0, 0, &f); // step4
        p.finalize_averaging();
        // Lazy averaging integrates the weight value over the interval it
        // was in force: w0 = 1 for one step (between updates 1 and 2) and
        // 2 for two steps (update 2 → finalize) -> (1*1 + 2*2) / 4 = 5/4.
        let s = p.scores(&f);
        assert!((s[0] - 5.0 / 4.0).abs() < 1e-12, "{s:?}");
        assert!((s[1] + 5.0 / 4.0).abs() < 1e-12, "{s:?}");
    }

    #[test]
    fn unseen_features_score_zero() {
        let p = AveragedPerceptron::new(4);
        assert_eq!(p.scores(&feats(&["nope"])), vec![0.0; 4]);
        assert_eq!(p.predict(&feats(&["nope"])), 0);
    }

    #[test]
    fn constrained_prediction_respects_allowed_set() {
        let mut p = AveragedPerceptron::new(3);
        let f = feats(&["f"]);
        for _ in 0..5 {
            let g = p.predict(&f);
            p.update(2, g, &f);
        }
        p.finalize_averaging();
        assert_eq!(p.predict(&f), 2);
        assert_eq!(
            p.predict_constrained(&f, &[0, 1]),
            argmax(&p.scores(&f)[..2])
        );
    }

    #[test]
    #[should_panic(expected = "cannot keep training")]
    fn training_after_averaging_panics() {
        let mut p = AveragedPerceptron::new(2);
        p.finalize_averaging();
        p.update(0, 1, &feats(&["f"]));
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[0.0, 0.0, 0.0]), 0);
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
    }

    #[test]
    fn id_api_matches_string_api() {
        let mut p = AveragedPerceptron::new(3);
        let fs = feats(&["bias", "w=hot", "sh=x"]);
        // Train via the string API.
        for _ in 0..6 {
            let g = p.predict(&fs);
            p.update(2, g, &fs);
        }
        let ids: Vec<u32> = fs.iter().map(|f| p.feature_id(f).unwrap()).collect();
        assert_eq!(p.scores_ids(&ids), p.scores(&fs));
        assert_eq!(p.predict_ids(&ids), p.predict(&fs));
        // Training via ids matches training via strings.
        let mut q = p.clone();
        p.update(2, 0, &fs);
        q.update_ids(2, 0, &ids);
        assert_eq!(p.scores(&fs), q.scores(&fs));
    }

    #[test]
    fn finalize_compacts_zero_rows_and_keeps_lookups_valid() {
        let mut p = AveragedPerceptron::new(2);
        // "dead" is interned but never pushed away from zero.
        p.intern("dead");
        let live = feats(&["live"]);
        p.update(0, 1, &live);
        p.update(0, 1, &live);
        p.finalize_averaging();
        assert_eq!(p.feature_id("dead"), None);
        assert_eq!(p.num_features(), 1);
        let id = p.feature_id("live").expect("live survives");
        assert_eq!(p.scores_ids(&[id]), p.scores(&live));
        assert!(p.scores(&live)[0] > 0.0);
    }

    #[test]
    fn intern_is_stable_and_dense() {
        let mut p = AveragedPerceptron::new(2);
        assert_eq!(p.intern("a"), 0);
        assert_eq!(p.intern("b"), 1);
        assert_eq!(p.intern("a"), 0);
        assert_eq!(p.num_features(), 2);
    }
}
