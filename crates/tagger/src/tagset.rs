//! The 36-tag Penn Treebank part-of-speech tagset.
//!
//! The paper encodes every ingredient phrase as a 1×36 vector of tag
//! frequencies; the 36 dimensions are exactly the Penn Treebank word-level
//! tags below (punctuation tags are excluded, as in the paper).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Number of Penn Treebank word-level tags (and therefore the POS-vector
/// dimensionality used throughout the paper).
pub const NUM_TAGS: usize = 36;

/// Penn Treebank word-level POS tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names are the standard PTB mnemonics
pub enum PennTag {
    /// Coordinating conjunction (`and`, `or`).
    CC,
    /// Cardinal number (`2`, `1/2`, `2-3`).
    CD,
    /// Determiner (`the`, `a`).
    DT,
    /// Existential *there*.
    EX,
    /// Foreign word.
    FW,
    /// Preposition / subordinating conjunction (`in`, `of`, `until`).
    IN,
    /// Adjective (`fresh`, `large`).
    JJ,
    /// Adjective, comparative (`larger`).
    JJR,
    /// Adjective, superlative (`largest`).
    JJS,
    /// List item marker.
    LS,
    /// Modal (`can`, `should`).
    MD,
    /// Noun, singular or mass (`cup`, `flour`).
    NN,
    /// Noun, plural (`cups`, `tomatoes`).
    NNS,
    /// Proper noun, singular (`Dijon`).
    NNP,
    /// Proper noun, plural.
    NNPS,
    /// Predeterminer (`all`, `half`).
    PDT,
    /// Possessive ending (`'s`).
    POS,
    /// Personal pronoun (`it`).
    PRP,
    /// Possessive pronoun (`its`).
    PRPS,
    /// Adverb (`finely`, `freshly`).
    RB,
    /// Adverb, comparative.
    RBR,
    /// Adverb, superlative.
    RBS,
    /// Particle (`up` in `cut up`).
    RP,
    /// Symbol.
    SYM,
    /// *to*.
    TO,
    /// Interjection.
    UH,
    /// Verb, base form (`boil`).
    VB,
    /// Verb, past tense (`boiled`).
    VBD,
    /// Verb, gerund/present participle (`boiling`).
    VBG,
    /// Verb, past participle (`chopped`, `thawed`).
    VBN,
    /// Verb, non-3rd-person singular present (`boil`).
    VBP,
    /// Verb, 3rd-person singular present (`boils`).
    VBZ,
    /// Wh-determiner (`which`).
    WDT,
    /// Wh-pronoun (`what`).
    WP,
    /// Possessive wh-pronoun (`whose`).
    WPS,
    /// Wh-adverb (`when`).
    WRB,
}

/// All 36 tags in canonical (index) order.
pub const ALL_TAGS: [PennTag; NUM_TAGS] = [
    PennTag::CC,
    PennTag::CD,
    PennTag::DT,
    PennTag::EX,
    PennTag::FW,
    PennTag::IN,
    PennTag::JJ,
    PennTag::JJR,
    PennTag::JJS,
    PennTag::LS,
    PennTag::MD,
    PennTag::NN,
    PennTag::NNS,
    PennTag::NNP,
    PennTag::NNPS,
    PennTag::PDT,
    PennTag::POS,
    PennTag::PRP,
    PennTag::PRPS,
    PennTag::RB,
    PennTag::RBR,
    PennTag::RBS,
    PennTag::RP,
    PennTag::SYM,
    PennTag::TO,
    PennTag::UH,
    PennTag::VB,
    PennTag::VBD,
    PennTag::VBG,
    PennTag::VBN,
    PennTag::VBP,
    PennTag::VBZ,
    PennTag::WDT,
    PennTag::WP,
    PennTag::WPS,
    PennTag::WRB,
];

impl PennTag {
    /// Stable index in `0..NUM_TAGS` (the POS-vector dimension).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Tag at a given index; panics if `idx >= NUM_TAGS`.
    #[inline]
    pub fn from_index(idx: usize) -> PennTag {
        ALL_TAGS[idx]
    }

    /// Canonical PTB string (`PRP$` and `WP$` use the `$` spelling).
    pub fn as_str(self) -> &'static str {
        match self {
            PennTag::CC => "CC",
            PennTag::CD => "CD",
            PennTag::DT => "DT",
            PennTag::EX => "EX",
            PennTag::FW => "FW",
            PennTag::IN => "IN",
            PennTag::JJ => "JJ",
            PennTag::JJR => "JJR",
            PennTag::JJS => "JJS",
            PennTag::LS => "LS",
            PennTag::MD => "MD",
            PennTag::NN => "NN",
            PennTag::NNS => "NNS",
            PennTag::NNP => "NNP",
            PennTag::NNPS => "NNPS",
            PennTag::PDT => "PDT",
            PennTag::POS => "POS",
            PennTag::PRP => "PRP",
            PennTag::PRPS => "PRP$",
            PennTag::RB => "RB",
            PennTag::RBR => "RBR",
            PennTag::RBS => "RBS",
            PennTag::RP => "RP",
            PennTag::SYM => "SYM",
            PennTag::TO => "TO",
            PennTag::UH => "UH",
            PennTag::VB => "VB",
            PennTag::VBD => "VBD",
            PennTag::VBG => "VBG",
            PennTag::VBN => "VBN",
            PennTag::VBP => "VBP",
            PennTag::VBZ => "VBZ",
            PennTag::WDT => "WDT",
            PennTag::WP => "WP",
            PennTag::WPS => "WP$",
            PennTag::WRB => "WRB",
        }
    }

    /// Is this one of the noun tags?
    pub fn is_noun(self) -> bool {
        matches!(
            self,
            PennTag::NN | PennTag::NNS | PennTag::NNP | PennTag::NNPS
        )
    }

    /// Is this one of the verb tags?
    pub fn is_verb(self) -> bool {
        matches!(
            self,
            PennTag::VB | PennTag::VBD | PennTag::VBG | PennTag::VBN | PennTag::VBP | PennTag::VBZ
        )
    }

    /// Is this one of the adjective tags?
    pub fn is_adjective(self) -> bool {
        matches!(self, PennTag::JJ | PennTag::JJR | PennTag::JJS)
    }
}

impl fmt::Display for PennTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown tag string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTagError(pub String);

impl fmt::Display for ParseTagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown Penn Treebank tag: {:?}", self.0)
    }
}

impl std::error::Error for ParseTagError {}

impl FromStr for PennTag {
    type Err = ParseTagError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_TAGS
            .iter()
            .copied()
            .find(|t| t.as_str() == s)
            .ok_or_else(|| ParseTagError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_36_tags() {
        assert_eq!(ALL_TAGS.len(), NUM_TAGS);
        assert_eq!(NUM_TAGS, 36);
    }

    #[test]
    fn index_round_trips() {
        for (i, tag) in ALL_TAGS.iter().enumerate() {
            assert_eq!(tag.index(), i);
            assert_eq!(PennTag::from_index(i), *tag);
        }
    }

    #[test]
    fn string_round_trips() {
        for tag in ALL_TAGS {
            assert_eq!(tag.as_str().parse::<PennTag>().unwrap(), tag);
        }
    }

    #[test]
    fn dollar_spellings() {
        assert_eq!("PRP$".parse::<PennTag>().unwrap(), PennTag::PRPS);
        assert_eq!("WP$".parse::<PennTag>().unwrap(), PennTag::WPS);
    }

    #[test]
    fn unknown_tag_is_error() {
        assert!("XYZ".parse::<PennTag>().is_err());
        assert!("nn".parse::<PennTag>().is_err());
    }

    #[test]
    fn class_predicates() {
        assert!(PennTag::NNS.is_noun());
        assert!(PennTag::VBG.is_verb());
        assert!(PennTag::JJR.is_adjective());
        assert!(!PennTag::CD.is_noun());
        assert!(!PennTag::CD.is_verb());
    }
}
