//! Averaged-perceptron POS tagger (NLTK `PerceptronTagger` family) with
//! recipe-aware surface features.
//!
//! Decoding is greedy left-to-right: each position is classified from its
//! surface context plus the two previously *predicted* tags, exactly like
//! the reference implementation. A single-tag dictionary short-circuits
//! unambiguous frequent words, which both speeds tagging up and stabilizes
//! the context features.

use crate::perceptron::AveragedPerceptron;
use crate::tagset::{PennTag, NUM_TAGS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A training sentence: parallel word and tag sequences.
pub type TaggedSentence = (Vec<String>, Vec<PennTag>);

/// Frequency threshold above which an unambiguous word enters the tag
/// dictionary (NLTK uses 20 with a 0.97 purity bound; our corpus is cleaner
/// so a purity of 1.0 with a small count works well).
const TAGDICT_MIN_COUNT: usize = 10;

/// Sentinel context words for positions before/after the sentence.
pub(crate) const START: [&str; 2] = ["-START-", "-START2-"];
pub(crate) const END: [&str; 2] = ["-END-", "-END2-"];

/// Averaged-perceptron POS tagger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PosTagger {
    model: AveragedPerceptron,
    /// Words that always carry the same tag in training data.
    tagdict: HashMap<String, PennTag>,
}

/// Normalize a word for feature extraction: digits collapse so the model
/// generalizes over quantities.
pub(crate) fn normalize(word: &str) -> String {
    let mut out = String::new();
    normalize_into(word, &mut out);
    out
}

/// Write the normalized form of `word` into `out` (cleared first).
/// Produces exactly the same string as [`normalize`]; the ASCII fast path
/// avoids the `to_lowercase` allocation on the compiled tagging path.
pub(crate) fn normalize_into(word: &str, out: &mut String) {
    out.clear();
    if word.bytes().all(|b| b.is_ascii_digit()) {
        out.push_str("!DIGITS");
    } else if word.bytes().any(|b| b.is_ascii_digit()) {
        if word.contains('/') {
            out.push_str("!FRACTION");
        } else if word.contains('-') {
            out.push_str("!RANGE");
        } else {
            out.push_str("!NUM");
        }
    } else if word.is_ascii() {
        for b in word.bytes() {
            out.push(b.to_ascii_lowercase() as char);
        }
    } else {
        out.push_str(&word.to_lowercase());
    }
}

pub(crate) fn suffix(word: &str, n: usize) -> &str {
    let len = word.len();
    if len <= n {
        word
    } else {
        // Find a char boundary at or after len - n.
        let mut cut = len - n;
        while !word.is_char_boundary(cut) {
            cut += 1;
        }
        &word[cut..]
    }
}

pub(crate) fn prefix(word: &str, n: usize) -> &str {
    let mut cut = n.min(word.len());
    while cut < word.len() && !word.is_char_boundary(cut) {
        cut += 1;
    }
    &word[..cut]
}

/// Stream the feature set for position `i` through `f`, reusing `scratch`
/// as the format buffer so no per-feature `String` is ever allocated.
///
/// `context` is the normalized word sequence padded with two START and two
/// END sentinels, so `context[i + 2]` is the current (normalized) word.
pub(crate) fn for_each_feature<F: FnMut(&str)>(
    i: usize,
    context: &[String],
    prev: &str,
    prev2: &str,
    scratch: &mut String,
    mut f: F,
) {
    let ci = i + 2;
    let word = context[ci].as_str();
    let buf = scratch;
    let mut emit = |buf: &mut String, parts: &[&str]| {
        buf.clear();
        for p in parts {
            buf.push_str(p);
        }
        f(buf);
    };
    emit(buf, &["bias"]);
    emit(buf, &["i suffix=", suffix(word, 3)]);
    emit(buf, &["i pref1=", prefix(word, 1)]);
    emit(buf, &["i-1 tag=", prev]);
    emit(buf, &["i-2 tag=", prev2]);
    emit(buf, &["i tag+i-2 tag=", prev, " ", prev2]);
    emit(buf, &["i word=", word]);
    emit(buf, &["i-1 tag+i word=", prev, " ", word]);
    emit(buf, &["i-1 word=", &context[ci - 1]]);
    emit(buf, &["i-1 suffix=", suffix(&context[ci - 1], 3)]);
    emit(buf, &["i-2 word=", &context[ci - 2]]);
    emit(buf, &["i+1 word=", &context[ci + 1]]);
    emit(buf, &["i+1 suffix=", suffix(&context[ci + 1], 3)]);
    emit(buf, &["i+2 word=", &context[ci + 2]]);
    if word.contains('-') {
        emit(buf, &["i hyphen"]);
    }
    if word.ends_with("ly") {
        emit(buf, &["i ly"]);
    }
    if word.ends_with("ing") {
        emit(buf, &["i ing"]);
    }
    if word.ends_with("ed") {
        emit(buf, &["i ed"]);
    }
}

pub(crate) fn make_context(words: &[String]) -> Vec<String> {
    let mut context = Vec::with_capacity(words.len() + 4);
    context.push(START[0].to_string());
    context.push(START[1].to_string());
    context.extend(words.iter().map(|w| normalize(w)));
    context.push(END[0].to_string());
    context.push(END[1].to_string());
    context
}

impl PosTagger {
    /// Train a tagger on `(words, tags)` sentences for `epochs` passes.
    ///
    /// Training shuffles the sentence order each epoch with a deterministic
    /// RNG seeded by `seed`, then applies weight averaging.
    ///
    /// # Panics
    /// Panics if any sentence has mismatched word/tag lengths.
    pub fn train(sentences: &[TaggedSentence], epochs: usize, seed: u64) -> Self {
        for (words, tags) in sentences {
            assert_eq!(words.len(), tags.len(), "words/tags length mismatch");
        }
        let tagdict = build_tagdict(sentences);
        let mut model = AveragedPerceptron::new(NUM_TAGS);
        let mut order: Vec<usize> = (0..sentences.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);

        let mut scratch = String::new();
        let mut ids: Vec<u32> = Vec::with_capacity(20);
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            for &si in &order {
                let (words, tags) = &sentences[si];
                let context = make_context(words);
                let mut prev: &str = START[0];
                let mut prev2: &str = START[1];
                for i in 0..words.len() {
                    let gold = tags[i];
                    // context[i + 2] is the already-normalized word.
                    let norm = context[i + 2].as_str();
                    let guess = if let Some(&tag) = tagdict.get(norm) {
                        tag
                    } else {
                        ids.clear();
                        for_each_feature(i, &context, prev, prev2, &mut scratch, |feat| {
                            ids.push(model.intern(feat));
                        });
                        let g = model.predict_ids(&ids);
                        model.update_ids(gold.index(), g, &ids);
                        PennTag::from_index(g)
                    };
                    prev2 = prev;
                    // Condition context on the *guess* during training so
                    // decode-time and train-time distributions match.
                    prev = guess.as_str();
                }
            }
        }
        model.finalize_averaging();
        PosTagger { model, tagdict }
    }

    /// Tag a tokenized sentence. Feature strings are streamed through a
    /// reusable scratch buffer and looked up as interned ids, so tagging
    /// allocates nothing per feature.
    pub fn tag(&self, words: &[String]) -> Vec<PennTag> {
        let context = make_context(words);
        let mut tags = Vec::with_capacity(words.len());
        let mut prev: &str = START[0];
        let mut prev2: &str = START[1];
        let mut scratch = String::new();
        let mut ids: Vec<u32> = Vec::with_capacity(20);
        for i in 0..words.len() {
            let norm = context[i + 2].as_str();
            let tag = if let Some(&t) = self.tagdict.get(norm) {
                t
            } else {
                ids.clear();
                for_each_feature(i, &context, prev, prev2, &mut scratch, |feat| {
                    if let Some(id) = self.model.feature_id(feat) {
                        ids.push(id);
                    }
                });
                PennTag::from_index(self.model.predict_ids(&ids))
            };
            tags.push(tag);
            prev2 = prev;
            prev = tag.as_str();
        }
        tags
    }

    /// Tag `&str` slices (convenience for tests and examples).
    pub fn tag_strs(&self, words: &[&str]) -> Vec<PennTag> {
        let owned: Vec<String> = words.iter().map(|w| w.to_string()).collect();
        self.tag(&owned)
    }

    /// Token-level accuracy over a gold-tagged evaluation set.
    pub fn accuracy(&self, sentences: &[TaggedSentence]) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (words, gold) in sentences {
            let pred = self.tag(words);
            total += gold.len();
            correct += pred.iter().zip(gold).filter(|(p, g)| p == g).count();
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Number of features in the underlying perceptron.
    pub fn num_features(&self) -> usize {
        self.model.num_features()
    }

    /// The underlying averaged-perceptron classifier.
    pub fn model(&self) -> &AveragedPerceptron {
        &self.model
    }

    /// Mutable model access (lint-test fault injection).
    #[doc(hidden)]
    pub fn model_mut(&mut self) -> &mut AveragedPerceptron {
        &mut self.model
    }

    /// Iterate the unambiguous-word tag dictionary.
    pub fn tagdict(&self) -> impl Iterator<Item = (&str, PennTag)> {
        self.tagdict.iter().map(|(w, &t)| (w.as_str(), t))
    }

    /// Size of the unambiguous-word dictionary.
    pub fn tagdict_len(&self) -> usize {
        self.tagdict.len()
    }
}

/// Build the unambiguous-word dictionary from training counts.
fn build_tagdict(sentences: &[TaggedSentence]) -> HashMap<String, PennTag> {
    let mut counts: BTreeMap<String, [usize; NUM_TAGS]> = BTreeMap::new();
    for (words, tags) in sentences {
        for (w, t) in words.iter().zip(tags) {
            counts.entry(normalize(w)).or_insert([0; NUM_TAGS])[t.index()] += 1;
        }
    }
    let mut dict = HashMap::new();
    for (word, row) in counts {
        let total: usize = row.iter().sum();
        let (best_idx, &best) = row
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .expect("non-empty row");
        if total >= TAGDICT_MIN_COUNT && best == total {
            dict.insert(word, PennTag::from_index(best_idx));
        }
    }
    dict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(words: &[&str], tags: &[PennTag]) -> TaggedSentence {
        (words.iter().map(|w| w.to_string()).collect(), tags.to_vec())
    }

    fn toy_corpus() -> Vec<TaggedSentence> {
        use PennTag::*;
        let mut c = Vec::new();
        for _ in 0..12 {
            c.push(s(&["2", "cups", "flour"], &[CD, NNS, NN]));
            c.push(s(&["1", "cup", "sugar"], &[CD, NN, NN]));
            c.push(s(&["1/2", "teaspoon", "salt"], &[CD, NN, NN]));
            c.push(s(&["boil", "the", "water"], &[VB, DT, NN]));
            c.push(s(&["finely", "chopped", "onion"], &[RB, VBN, NN]));
            c.push(s(&["fresh", "thyme"], &[JJ, NN]));
            c.push(s(&["2-3", "large", "eggs"], &[CD, JJ, NNS]));
        }
        c
    }

    #[test]
    fn memorizes_training_corpus() {
        let corpus = toy_corpus();
        let tagger = PosTagger::train(&corpus, 8, 7);
        let acc = tagger.accuracy(&corpus);
        assert!(acc > 0.99, "training accuracy {acc}");
    }

    #[test]
    fn generalizes_over_digits() {
        let corpus = toy_corpus();
        let tagger = PosTagger::train(&corpus, 8, 7);
        // "7" never appears in training but normalizes to !DIGITS.
        let tags = tagger.tag_strs(&["7", "cups", "sugar"]);
        assert_eq!(tags[0], PennTag::CD);
    }

    #[test]
    fn fraction_and_range_normalization() {
        assert_eq!(normalize("1/2"), "!FRACTION");
        assert_eq!(normalize("2-3"), "!RANGE");
        assert_eq!(normalize("42"), "!DIGITS");
        assert_eq!(normalize("8oz"), "!NUM");
        assert_eq!(normalize("Flour"), "flour");
    }

    #[test]
    fn suffix_prefix_respect_char_boundaries() {
        // Suffix lengths are in bytes; multi-byte chars shorten the suffix
        // rather than splitting it ("ño" is 3 bytes).
        assert_eq!(suffix("jalapeño", 3), "ño");
        assert_eq!(prefix("jalapeño", 1), "j");
        assert_eq!(suffix("ab", 3), "ab");
        assert_eq!(prefix("ab", 5), "ab");
    }

    #[test]
    fn tagdict_only_keeps_unambiguous_frequent_words() {
        let corpus = toy_corpus();
        let dict = build_tagdict(&corpus);
        assert_eq!(dict.get("flour"), Some(&PennTag::NN));
        // "cup"/"cups" are distinct normalized words, both unambiguous.
        assert_eq!(dict.get("cups"), Some(&PennTag::NNS));
        // A rare word (seen < threshold) must not enter the dictionary.
        assert!(!dict.contains_key("thyme") || corpus.len() >= TAGDICT_MIN_COUNT);
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = toy_corpus();
        let t1 = PosTagger::train(&corpus, 5, 99);
        let t2 = PosTagger::train(&corpus, 5, 99);
        let sent = ["3".to_string(), "small".to_string(), "onions".to_string()];
        assert_eq!(t1.tag(&sent), t2.tag(&sent));
    }

    #[test]
    fn empty_sentence_is_fine() {
        let tagger = PosTagger::train(&toy_corpus(), 2, 1);
        assert!(tagger.tag(&[]).is_empty());
        assert_eq!(tagger.accuracy(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let bad = vec![(vec!["a".to_string()], vec![])];
        PosTagger::train(&bad, 1, 0);
    }
}
