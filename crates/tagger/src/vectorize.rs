//! Phrase → 1×36 POS-tag frequency vectors (§II.D of the paper).
//!
//! Each unique ingredient phrase is represented by the frequency of every
//! Penn Treebank tag among its tokens (a bag-of-tags). Phrases with
//! similar lexical structure — "3 teaspoons olive oil" and "2 tablespoons
//! all-purpose flour" — land close together in Euclidean distance, which
//! is exactly the property the K-Means clustering step relies on.

use crate::tagset::{PennTag, NUM_TAGS};

/// Dimensionality of the POS vector (36, the Penn Treebank tag count).
pub const POS_VECTOR_DIM: usize = NUM_TAGS;

/// Raw tag-count vector for one tagged phrase.
///
/// ```
/// use recipe_tagger::{pos_frequency_vector, PennTag};
/// let v = pos_frequency_vector(&[PennTag::CD, PennTag::NNS, PennTag::NN]);
/// assert_eq!(v[PennTag::CD.index()], 1.0);
/// assert_eq!(v[PennTag::NN.index()], 1.0);
/// assert_eq!(v.iter().sum::<f64>(), 3.0);
/// ```
pub fn pos_frequency_vector(tags: &[PennTag]) -> Vec<f64> {
    let mut v = vec![0.0; POS_VECTOR_DIM];
    for tag in tags {
        v[tag.index()] += 1.0;
    }
    v
}

/// Tag-count vector normalized to unit L1 norm (tag *proportions*). Useful
/// when phrases vary a lot in length; the paper's bag-of-words clustering
/// uses raw counts, so [`pos_frequency_vector`] is the default.
pub fn pos_proportion_vector(tags: &[PennTag]) -> Vec<f64> {
    let mut v = pos_frequency_vector(tags);
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for x in &mut v {
            *x /= total;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let v = pos_frequency_vector(&[PennTag::NN, PennTag::NN, PennTag::JJ]);
        assert_eq!(v[PennTag::NN.index()], 2.0);
        assert_eq!(v[PennTag::JJ.index()], 1.0);
        assert_eq!(v.len(), 36);
    }

    #[test]
    fn empty_phrase_is_zero_vector() {
        let v = pos_frequency_vector(&[]);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn proportions_sum_to_one() {
        let v = pos_proportion_vector(&[PennTag::CD, PennTag::NN, PennTag::NN, PennTag::NNS]);
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((v[PennTag::NN.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn proportions_of_empty_phrase_stay_zero() {
        let v = pos_proportion_vector(&[]);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn similar_structures_are_close() {
        use PennTag::*;
        // "3 teaspoons olive oil" vs "2 tablespoons all-purpose flour"
        let a = pos_frequency_vector(&[CD, NNS, NN, NN]);
        let b = pos_frequency_vector(&[CD, NNS, JJ, NN]);
        // "boil the water until tender"
        let c = pos_frequency_vector(&[VB, DT, NN, IN, JJ]);
        let d2 =
            |x: &[f64], y: &[f64]| -> f64 { x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum() };
        assert!(d2(&a, &b) < d2(&a, &c));
    }
}
