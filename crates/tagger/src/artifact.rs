//! Zero-copy artifact serialization for [`CompiledPosTagger`] plus the
//! [`PosView`] reader that tags straight out of the artifact bytes.
//!
//! The POS model occupies seven sections starting at a caller-chosen
//! `base`. Compilation assigns feature row ids in sorted
//! feature-string order ([`CompiledPosTagger::compile`] sorts before
//! numbering), so the sorted feature string table needs **no** parallel
//! id array: a string's binary-search index *is* its CSR row id. The
//! tag dictionary is a sorted word table plus a parallel tag-index
//! array.
//!
//! [`PosView::tag_into`] replicates the compiled greedy decode exactly
//! — tag-dictionary short-circuit, feature stream order, accumulation
//! order, argmax tie-breaking, provenance records, and telemetry — so
//! tags are identical to [`CompiledPosTagger::tag_into`] on every
//! input. The greedy perceptron row is O(active features), already
//! cache-friendly, so no quantized variant exists on this path.

use crate::compiled::{tag_metrics, CompiledPosTagger, TagScratch};
use crate::perceptron::argmax;
use crate::tagger::{for_each_feature, normalize_into, END, START};
use crate::tagset::{PennTag, NUM_TAGS};
use recipe_artifact::{
    put_f64, put_u32, read_f64, read_u32, write_str_table, Artifact, ArtifactError, ArtifactWriter,
    StrTable,
};
use std::ops::Range;
use std::sync::Arc;

/// Section kind offsets relative to the POS model's base kind.
pub mod section {
    /// Meta: `[num_classes u32][num_features u32][tagdict_len u32][reserved u32]`.
    pub const META: u32 = 0;
    /// CSR row offsets, `(num_features + 1) x u32`.
    pub const OFFSETS: u32 = 1;
    /// CSR class ids, `nnz x u32`.
    pub const CLASSES: u32 = 2;
    /// CSR weights, `nnz x f64`.
    pub const WEIGHTS: u32 = 3;
    /// Feature strings, sorted; a string's index is its CSR row id.
    pub const FEATURES: u32 = 4;
    /// Tag-dictionary words, string table sorted for binary search.
    pub const TAGDICT_WORDS: u32 = 5;
    /// Tag indices parallel to the dictionary words, `count x u32`.
    pub const TAGDICT_TAGS: u32 = 6;
}

/// Serialize `tagger` into `writer` as the section block at `base`.
pub fn append_tagger(writer: &mut ArtifactWriter, base: u32, tagger: &CompiledPosTagger) {
    let nf = tagger.num_features();

    let mut meta = Vec::with_capacity(16);
    put_u32(&mut meta, tagger.num_classes as u32);
    put_u32(&mut meta, nf as u32);
    put_u32(&mut meta, tagger.tagdict.len() as u32);
    put_u32(&mut meta, 0);
    writer.push_section(base + section::META, meta);

    let mut offsets = Vec::with_capacity(tagger.offsets.len() * 4);
    for &o in &tagger.offsets {
        put_u32(&mut offsets, o);
    }
    writer.push_section(base + section::OFFSETS, offsets);

    let mut classes = Vec::with_capacity(tagger.classes.len() * 4);
    for &c in &tagger.classes {
        put_u32(&mut classes, c);
    }
    writer.push_section(base + section::CLASSES, classes);

    let mut weights = Vec::with_capacity(tagger.weights.len() * 8);
    for &w in &tagger.weights {
        put_f64(&mut weights, w);
    }
    writer.push_section(base + section::WEIGHTS, weights);

    // Row ids were assigned in sorted-string order at compile time, so
    // sorting the strings again reproduces id order exactly: the table
    // index doubles as the row id.
    let mut features: Vec<&str> = tagger.ids.keys().map(String::as_str).collect();
    features.sort_unstable();
    debug_assert!(features
        .iter()
        .enumerate()
        .all(|(i, f)| tagger.ids[*f] as usize == i));
    let mut feat_table = Vec::new();
    write_str_table(&mut feat_table, &features);
    writer.push_section(base + section::FEATURES, feat_table);

    let mut dict: Vec<(&str, PennTag)> = tagger
        .tagdict
        .iter()
        .map(|(w, &t)| (w.as_str(), t))
        .collect();
    dict.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let words: Vec<&str> = dict.iter().map(|&(w, _)| w).collect();
    let mut word_table = Vec::new();
    write_str_table(&mut word_table, &words);
    writer.push_section(base + section::TAGDICT_WORDS, word_table);
    let mut tags = Vec::with_capacity(dict.len() * 4);
    for &(_, t) in &dict {
        put_u32(&mut tags, t.index() as u32);
    }
    writer.push_section(base + section::TAGDICT_TAGS, tags);
}

/// A POS tagger served directly from artifact bytes.
#[derive(Clone)]
pub struct PosView {
    buf: Arc<[u8]>,
    num_classes: usize,
    num_features: usize,
    nnz: usize,
    offsets: Range<usize>,
    classes: Range<usize>,
    weights: Range<usize>,
    features: Range<usize>,
    tagdict_words: Range<usize>,
    tagdict_tags: Range<usize>,
}

impl PosView {
    /// Open the POS block at `base` inside `art`, validating every
    /// section length against the meta counts (O(sections)).
    pub fn from_artifact(art: &Artifact, base: u32) -> Result<Self, ArtifactError> {
        let buf = art.buf().clone();
        let meta = art.require_section(base + section::META)?;
        if meta.len() != 16 {
            return Err(ArtifactError::Malformed("pos meta section size"));
        }
        let num_classes = read_u32(&buf, meta.start) as usize;
        let num_features = read_u32(&buf, meta.start + 4) as usize;
        let dict_len = read_u32(&buf, meta.start + 8) as usize;

        let offsets = art.require_section(base + section::OFFSETS)?;
        if offsets.len() != (num_features + 1) * 4 {
            return Err(ArtifactError::Malformed("pos CSR offsets size"));
        }
        let classes = art.require_section(base + section::CLASSES)?;
        let nnz = classes.len() / 4;
        if classes.len() != nnz * 4 {
            return Err(ArtifactError::Malformed("pos CSR classes size"));
        }
        if read_u32(&buf, offsets.start + num_features * 4) as usize != nnz {
            return Err(ArtifactError::Malformed("pos CSR offsets/classes mismatch"));
        }
        let weights = art.require_section(base + section::WEIGHTS)?;
        if weights.len() != nnz * 8 {
            return Err(ArtifactError::Malformed("pos CSR weights size"));
        }

        let features = art.require_section(base + section::FEATURES)?;
        let table = StrTable::new(&buf[features.clone()])
            .ok_or(ArtifactError::Malformed("pos feature table"))?;
        if table.len() != num_features {
            return Err(ArtifactError::Malformed("pos feature count"));
        }

        let tagdict_words = art.require_section(base + section::TAGDICT_WORDS)?;
        let words = StrTable::new(&buf[tagdict_words.clone()])
            .ok_or(ArtifactError::Malformed("pos tagdict word table"))?;
        if words.len() != dict_len {
            return Err(ArtifactError::Malformed("pos tagdict word count"));
        }
        let tagdict_tags = art.require_section(base + section::TAGDICT_TAGS)?;
        if tagdict_tags.len() != dict_len * 4 {
            return Err(ArtifactError::Malformed("pos tagdict tag array size"));
        }

        Ok(PosView {
            buf,
            num_classes,
            num_features,
            nnz,
            offsets,
            classes,
            weights,
            features,
            tagdict_words,
            tagdict_tags,
        })
    }

    /// Number of compiled feature rows.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Tag-dictionary lookup on the sorted word table; out-of-range tag
    /// indices (possible only under payload corruption) read as misses.
    #[inline]
    fn tagdict_at(&self, norm: &str) -> Option<PennTag> {
        let words = StrTable::new(&self.buf[self.tagdict_words.clone()])?;
        let i = words.find(norm)?;
        let idx = read_u32(&self.buf, self.tagdict_tags.start + i * 4) as usize;
        if idx < NUM_TAGS {
            Some(PennTag::from_index(idx))
        } else {
            None
        }
    }

    /// Feature lookup: the sorted-table index is the CSR row id.
    #[inline]
    fn feature_id(&self, feature: &str) -> Option<u32> {
        let table = StrTable::new(&self.buf[self.features.clone()])?;
        table.find(feature).map(|i| i as u32)
    }

    /// Class scores read straight from artifact bytes; mirrors the
    /// compiled `scores_into` accumulation order, with CSR ranges
    /// clamped so corrupt payloads degrade instead of panicking.
    #[inline]
    fn scores_into(&self, ids: &[u32], scores: &mut [f64]) {
        scores.fill(0.0);
        let nc = scores.len();
        for &id in ids {
            let id = id as usize;
            let lo = (read_u32(&self.buf, self.offsets.start + id * 4) as usize).min(self.nnz);
            let hi =
                (read_u32(&self.buf, self.offsets.start + (id + 1) * 4) as usize).min(self.nnz);
            for k in lo..hi {
                let c = read_u32(&self.buf, self.classes.start + k * 4) as usize;
                if c < nc {
                    scores[c] += read_f64(&self.buf, self.weights.start + k * 8);
                }
            }
        }
    }

    /// Tag a tokenized sentence into `out`, reusing `scratch`. Output,
    /// provenance and telemetry are identical to
    /// [`CompiledPosTagger::tag_into`] on the source tagger.
    pub fn tag_into(&self, words: &[String], scratch: &mut TagScratch, out: &mut Vec<PennTag>) {
        let _span = recipe_obs::span!("tagger.tag");
        out.clear();
        let n = words.len();
        let ctx_len = n + 4;
        if scratch.context.len() < ctx_len {
            scratch.context.resize_with(ctx_len, String::new);
        }
        let TagScratch {
            context,
            ids,
            scores,
            scratch_str,
        } = scratch;
        scores.resize(self.num_classes, 0.0);
        context[0].clear();
        context[0].push_str(START[0]);
        context[1].clear();
        context[1].push_str(START[1]);
        for (k, w) in words.iter().enumerate() {
            normalize_into(w, &mut context[k + 2]);
        }
        context[n + 2].clear();
        context[n + 2].push_str(END[0]);
        context[n + 3].clear();
        context[n + 3].push_str(END[1]);
        let context = &context[..ctx_len];

        let mut prev: &str = START[0];
        let mut prev2: &str = START[1];
        let mut dict_hits = 0u64;
        let explain = recipe_obs::provenance::enabled();
        for i in 0..n {
            let norm = context[i + 2].as_str();
            let tag = if let Some(t) = self.tagdict_at(norm) {
                dict_hits += 1;
                if explain {
                    recipe_obs::provenance::record(recipe_obs::provenance::Record {
                        kind: "tagger.margin",
                        site: "tagger.pos",
                        subject: words[i].clone(),
                        decision: t.as_str().to_string(),
                        detail: "tagdict".to_string(),
                        index: i,
                        margin: None,
                    });
                }
                t
            } else {
                ids.clear();
                for_each_feature(i, context, prev, prev2, scratch_str, |feat| {
                    if let Some(id) = self.feature_id(feat) {
                        ids.push(id);
                    }
                });
                self.scores_into(ids, scores);
                let tag = PennTag::from_index(argmax(scores));
                if explain {
                    recipe_obs::provenance::record(recipe_obs::provenance::Record {
                        kind: "tagger.margin",
                        site: "tagger.pos",
                        subject: words[i].clone(),
                        decision: tag.as_str().to_string(),
                        detail: "model".to_string(),
                        index: i,
                        margin: Some(CompiledPosTagger::margin_of(scores)),
                    });
                }
                tag
            };
            out.push(tag);
            prev2 = prev;
            prev = tag.as_str();
        }
        if recipe_obs::enabled() {
            let m = tag_metrics();
            m.sentences.inc();
            m.tokens.add(n as u64);
            m.tagdict_hits.add(dict_hits);
        }
    }

    /// Allocating convenience wrapper around [`Self::tag_into`].
    pub fn tag(&self, words: &[String]) -> Vec<PennTag> {
        let mut scratch = TagScratch::new();
        let mut out = Vec::new();
        self.tag_into(words, &mut scratch, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagger::{PosTagger, TaggedSentence};

    fn s(words: &[&str], tags: &[PennTag]) -> TaggedSentence {
        (words.iter().map(|w| w.to_string()).collect(), tags.to_vec())
    }

    fn toy_corpus() -> Vec<TaggedSentence> {
        use PennTag::*;
        let mut c = Vec::new();
        for _ in 0..12 {
            c.push(s(&["2", "cups", "flour"], &[CD, NNS, NN]));
            c.push(s(&["boil", "the", "water"], &[VB, DT, NN]));
            c.push(s(&["mix", "the", "batter"], &[VB, DT, NN]));
            c.push(s(&["pour", "the", "mix"], &[VB, DT, NN]));
            c.push(s(&["finely", "chopped", "onion"], &[RB, VBN, NN]));
        }
        c
    }

    fn to_artifact(tagger: &CompiledPosTagger) -> Artifact {
        let mut w = ArtifactWriter::new();
        append_tagger(&mut w, 300, tagger);
        Artifact::parse(w.finish().into()).expect("parse")
    }

    #[test]
    fn view_tags_are_identical_to_compiled() {
        let tagger = PosTagger::train(&toy_corpus(), 6, 7);
        let compiled = CompiledPosTagger::compile(&tagger);
        let art = to_artifact(&compiled);
        art.verify_crc().expect("checksums");
        let view = PosView::from_artifact(&art, 300).expect("view");
        assert_eq!(view.num_features(), compiled.num_features());

        let mut s1 = TagScratch::new();
        let mut s2 = TagScratch::new();
        let mut out1 = Vec::new();
        let mut out2 = Vec::new();
        let sentences: Vec<Vec<String>> = vec![
            vec![],
            vec!["flour".into()],
            vec!["Mix".into(), "the".into(), "chopped".into(), "onion".into()],
            (0..20).map(|i| format!("word{i}")).collect(),
            vec!["boil".into()],
        ];
        for words in &sentences {
            compiled.tag_into(words, &mut s1, &mut out1);
            view.tag_into(words, &mut s2, &mut out2);
            assert_eq!(out1, out2, "{words:?}");
        }
    }

    #[test]
    fn view_provenance_matches_compiled() {
        let tagger = PosTagger::train(&toy_corpus(), 6, 7);
        let compiled = CompiledPosTagger::compile(&tagger);
        let view = PosView::from_artifact(&to_artifact(&compiled), 300).expect("view");
        let words: Vec<String> = vec!["mix".into(), "the".into(), "batter".into()];
        let mut scratch = TagScratch::new();
        let mut out = Vec::new();

        recipe_obs::provenance::reset();
        recipe_obs::provenance::set_enabled(true);
        compiled.tag_into(&words, &mut scratch, &mut out);
        let from_compiled = recipe_obs::provenance::drain();
        recipe_obs::provenance::set_enabled(true);
        view.tag_into(&words, &mut scratch, &mut out);
        let from_view = recipe_obs::provenance::drain();
        recipe_obs::provenance::set_enabled(false);

        let key = |r: &recipe_obs::provenance::Record| {
            (
                r.subject.clone(),
                r.decision.clone(),
                r.detail.clone(),
                r.margin.map(f64::to_bits),
            )
        };
        let ours = |records: Vec<recipe_obs::provenance::Record>| {
            records
                .into_iter()
                .filter(|r| r.site == "tagger.pos")
                .map(|r| key(&r))
                .collect::<Vec<_>>()
        };
        assert_eq!(ours(from_compiled), ours(from_view));
    }

    #[test]
    fn missing_sections_are_rejected() {
        let tagger = PosTagger::train(&toy_corpus(), 4, 1);
        let compiled = CompiledPosTagger::compile(&tagger);
        let full = to_artifact(&compiled);
        for missing in 0..=6u32 {
            let mut w = ArtifactWriter::new();
            for kind in 0..=6u32 {
                if kind == missing {
                    continue;
                }
                let r = full.require_section(300 + kind).expect("section");
                w.push_section(300 + kind, full.buf()[r].to_vec());
            }
            let partial = Artifact::parse(w.finish().into()).expect("parse");
            assert!(
                PosView::from_artifact(&partial, 300).is_err(),
                "section {missing} missing but view loaded"
            );
        }
        assert!(PosView::from_artifact(&full, 999).is_err());
    }
}
