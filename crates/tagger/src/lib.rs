#![warn(missing_docs)]

//! Part-of-speech tagging substrate.
//!
//! The paper POS-tags every ingredient phrase with the Stanford *Twitter*
//! POS model — chosen because ingredient phrases are not grammatical
//! sentences and resemble tweets — and represents each phrase as a **1×36
//! vector of Penn Treebank tag frequencies** (§II.D). Those vectors feed
//! the K-Means clustering that drives training-set selection.
//!
//! This crate provides:
//!
//! * [`tagset::PennTag`] — the 36-tag Penn Treebank tagset;
//! * [`tagger::PosTagger`] — an averaged-perceptron sequence tagger
//!   (the same model family as NLTK's `PerceptronTagger`) with
//!   recipe-aware surface features;
//! * [`vectorize`] — the phrase → 1×36 frequency-vector encoding.
//!
//! # Example
//!
//! ```
//! use recipe_tagger::{PosTagger, PennTag};
//!
//! // Train on a toy corpus of (words, tags) pairs.
//! let corpus = vec![
//!     (vec!["2".into(), "cups".into(), "flour".into()],
//!      vec![PennTag::CD, PennTag::NNS, PennTag::NN]),
//!     (vec!["1".into(), "cup".into(), "sugar".into()],
//!      vec![PennTag::CD, PennTag::NN, PennTag::NN]),
//! ];
//! let tagger = PosTagger::train(&corpus, 5, 42);
//! let tags = tagger.tag(&["3".into(), "cups".into(), "sugar".into()]);
//! assert_eq!(tags[0], PennTag::CD);
//! ```

pub mod artifact;
pub mod compiled;
pub mod perceptron;
pub mod tagger;
pub mod tagset;
pub mod vectorize;

pub use artifact::PosView;
pub use compiled::{CompiledPosTagger, TagScratch};
pub use tagger::PosTagger;
pub use tagset::PennTag;
pub use vectorize::{pos_frequency_vector, POS_VECTOR_DIM};
