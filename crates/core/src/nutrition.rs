//! Nutritional profile estimation (application from §IV; paper reference 13).
//!
//! The paper used the USDA Standard Legacy database; we embed a compact
//! per-100 g nutrient table for the corpus's base ingredients plus a
//! unit→gram conversion table. Estimation multiplies each ingredient's
//! quantity (midpoint for ranges), converts to grams, and sums nutrient
//! contributions; unknown ingredients or units are reported, not guessed.

use crate::model::{IngredientEntry, RecipeModel};
use crate::quantity::Quantity;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Macro-nutrient profile. All quantities per the amounts in the recipe
/// (not per serving).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NutrientProfile {
    /// Kilocalories.
    pub kcal: f64,
    /// Protein, grams.
    pub protein_g: f64,
    /// Fat, grams.
    pub fat_g: f64,
    /// Carbohydrates, grams.
    pub carbs_g: f64,
}

impl NutrientProfile {
    /// Element-wise sum.
    pub fn add(&mut self, other: &NutrientProfile) {
        self.kcal += other.kcal;
        self.protein_g += other.protein_g;
        self.fat_g += other.fat_g;
        self.carbs_g += other.carbs_g;
    }

    /// Scale by a factor (e.g. grams/100).
    pub fn scaled(&self, factor: f64) -> NutrientProfile {
        NutrientProfile {
            kcal: self.kcal * factor,
            protein_g: self.protein_g * factor,
            fat_g: self.fat_g * factor,
            carbs_g: self.carbs_g * factor,
        }
    }
}

/// Per-100 g nutrient rows for base ingredients (USDA-order-of-magnitude
/// values; the *relative* structure is what the estimation exercise needs).
const NUTRIENTS_PER_100G: &[(&str, f64, f64, f64, f64)] = &[
    // (name, kcal, protein, fat, carbs)
    ("flour", 364.0, 10.3, 1.0, 76.3),
    ("sugar", 387.0, 0.0, 0.0, 100.0),
    ("salt", 0.0, 0.0, 0.0, 0.0),
    ("pepper", 251.0, 10.4, 3.3, 63.9),
    ("butter", 717.0, 0.9, 81.1, 0.1),
    ("milk", 61.0, 3.2, 3.3, 4.8),
    ("egg", 143.0, 12.6, 9.5, 0.7),
    ("water", 0.0, 0.0, 0.0, 0.0),
    ("oil", 884.0, 0.0, 100.0, 0.0),
    ("olive oil", 884.0, 0.0, 100.0, 0.0),
    ("onion", 40.0, 1.1, 0.1, 9.3),
    ("garlic", 149.0, 6.4, 0.5, 33.1),
    ("tomato", 18.0, 0.9, 0.2, 3.9),
    ("potato", 77.0, 2.0, 0.1, 17.5),
    ("carrot", 41.0, 0.9, 0.2, 9.6),
    ("celery", 16.0, 0.7, 0.2, 3.0),
    ("chicken", 239.0, 27.3, 13.6, 0.0),
    ("beef", 250.0, 26.0, 15.0, 0.0),
    ("pork", 242.0, 27.3, 14.0, 0.0),
    ("rice", 130.0, 2.7, 0.3, 28.2),
    ("pasta", 131.0, 5.0, 1.1, 25.0),
    ("cheese", 402.0, 25.0, 33.1, 1.3),
    ("cream", 340.0, 2.1, 36.1, 2.8),
    ("cream cheese", 342.0, 5.9, 34.2, 4.1),
    ("yogurt", 59.0, 10.0, 0.4, 3.6),
    ("honey", 304.0, 0.3, 0.0, 82.4),
    ("vinegar", 18.0, 0.0, 0.0, 0.9),
    ("lemon", 29.0, 1.1, 0.3, 9.3),
    ("mushroom", 22.0, 3.1, 0.3, 3.3),
    ("spinach", 23.0, 2.9, 0.4, 3.6),
    ("broccoli", 34.0, 2.8, 0.4, 6.6),
    ("corn", 86.0, 3.3, 1.4, 18.7),
    ("bean", 347.0, 21.4, 1.2, 62.4),
    ("lentil", 116.0, 9.0, 0.4, 20.1),
    ("almond", 579.0, 21.2, 49.9, 21.6),
    ("walnut", 654.0, 15.2, 65.2, 13.7),
    ("thyme", 101.0, 5.6, 1.7, 24.5),
    ("basil", 23.0, 3.2, 0.6, 2.7),
    ("cinnamon", 247.0, 4.0, 1.2, 80.6),
    ("ginger", 80.0, 1.8, 0.8, 17.8),
    ("vanilla", 288.0, 0.1, 0.1, 12.7),
    ("chocolate", 546.0, 4.9, 31.3, 61.2),
    ("shrimp", 99.0, 24.0, 0.3, 0.2),
    ("salmon", 208.0, 20.4, 13.4, 0.0),
    ("bacon", 541.0, 37.0, 42.0, 1.4),
    ("bread", 265.0, 9.0, 3.2, 49.0),
    ("blue cheese", 353.0, 21.4, 28.7, 2.3),
    ("puff pastry", 558.0, 7.4, 38.5, 45.7),
    ("tofu", 76.0, 8.0, 4.8, 1.9),
    ("avocado", 160.0, 2.0, 14.7, 8.5),
];

/// Gram weight of one unit of an ingredient (generic densities; the
/// volume→mass mapping is intentionally coarse, like the paper's).
const UNIT_GRAMS: &[(&str, f64)] = &[
    ("cup", 240.0),
    ("tablespoon", 15.0),
    ("teaspoon", 5.0),
    ("ounce", 28.35),
    ("pound", 453.6),
    ("gram", 1.0),
    ("kilogram", 1000.0),
    ("liter", 1000.0),
    ("milliliter", 1.0),
    ("pinch", 0.4),
    ("dash", 0.6),
    ("clove", 3.0),
    ("slice", 25.0),
    ("piece", 30.0),
    ("can", 400.0),
    ("package", 225.0),
    ("sheet", 250.0),
    ("stick", 113.0),
    ("bunch", 100.0),
    ("sprig", 2.0),
    ("stalk", 40.0),
    ("head", 500.0),
    ("quart", 946.0),
    ("pint", 473.0),
    ("gallon", 3785.0),
    ("jar", 350.0),
    ("bottle", 500.0),
    ("carton", 1000.0),
    ("envelope", 7.0),
    ("wedge", 30.0),
    ("strip", 15.0),
    ("fillet", 170.0),
    ("rib", 60.0),
];

/// Default gram weight of one countable item (`2 eggs`).
const DEFAULT_ITEM_GRAMS: f64 = 100.0;

/// Volume-unit density overrides per ingredient base: a cup of flour is
/// 120 g, not the generic 240 g of water. `(ingredient base, unit, grams)`.
const DENSITY_OVERRIDES: &[(&str, &str, f64)] = &[
    ("flour", "cup", 120.0),
    ("sugar", "cup", 200.0),
    ("butter", "cup", 227.0),
    ("rice", "cup", 185.0),
    ("oat", "cup", 90.0),
    ("cocoa", "cup", 85.0),
    ("honey", "cup", 340.0),
    ("oil", "cup", 218.0),
    ("cheese", "cup", 113.0),
    ("flour", "tablespoon", 8.0),
    ("sugar", "tablespoon", 12.5),
    ("butter", "tablespoon", 14.2),
    ("oil", "tablespoon", 13.6),
    ("honey", "tablespoon", 21.0),
];

/// One ingredient's contribution to the recipe profile, or why it could
/// not be estimated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Contribution {
    /// Estimated profile plus the gram mass used.
    Estimated {
        /// Nutrients contributed.
        profile: NutrientProfile,
        /// Grams the quantity/unit resolved to.
        grams: f64,
    },
    /// Ingredient name absent from the nutrient table.
    UnknownIngredient,
    /// Quantity string did not parse.
    UnknownQuantity,
}

/// The nutrition estimator: nutrient table + unit conversions.
#[derive(Debug, Clone)]
pub struct NutritionEstimator {
    table: HashMap<&'static str, NutrientProfile>,
    units: HashMap<&'static str, f64>,
}

impl Default for NutritionEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl NutritionEstimator {
    /// Estimator with the embedded tables.
    pub fn new() -> Self {
        let table = NUTRIENTS_PER_100G
            .iter()
            .map(|&(n, kcal, p, f, c)| {
                (
                    n,
                    NutrientProfile {
                        kcal,
                        protein_g: p,
                        fat_g: f,
                        carbs_g: c,
                    },
                )
            })
            .collect();
        let units = UNIT_GRAMS.iter().copied().collect();
        NutritionEstimator { table, units }
    }

    /// Look up an ingredient; falls back to the last name token so
    /// modifier-composed names (`red onion`) match their base row.
    pub fn lookup(&self, name: &str) -> Option<&NutrientProfile> {
        if let Some(p) = self.table.get(name) {
            return Some(p);
        }
        let last = name.rsplit(' ').next()?;
        self.table.get(last)
    }

    /// Gram weight of `quantity` × `unit` (unit `None` means countable
    /// items). When the ingredient is known, volume units use its density
    /// override (a cup of flour is 120 g; of water, 240 g).
    pub fn to_grams(&self, quantity: f64, unit: Option<&str>) -> f64 {
        self.to_grams_of(quantity, unit, "")
    }

    /// [`NutritionEstimator::to_grams`] with ingredient-aware density.
    pub fn to_grams_of(&self, quantity: f64, unit: Option<&str>, ingredient: &str) -> f64 {
        let Some(u) = unit else {
            return quantity * DEFAULT_ITEM_GRAMS;
        };
        let base = ingredient.rsplit(' ').next().unwrap_or(ingredient);
        if let Some(&(_, _, grams)) = DENSITY_OVERRIDES
            .iter()
            .find(|&&(ing, un, _)| ing == base && un == u)
        {
            return quantity * grams;
        }
        quantity * self.units.get(u).copied().unwrap_or(DEFAULT_ITEM_GRAMS)
    }

    /// Contribution of one structured entry.
    pub fn contribution(&self, entry: &IngredientEntry) -> Contribution {
        let Some(per100) = self.lookup(&entry.name) else {
            return Contribution::UnknownIngredient;
        };
        let qty = match &entry.quantity {
            Some(q) => match Quantity::parse(q) {
                Some(q) => q.midpoint(),
                None => return Contribution::UnknownQuantity,
            },
            // Unquantified entries ("salt to taste") count one pinch-scale
            // unit so they do not silently vanish.
            None => 1.0,
        };
        let grams = self.to_grams_of(qty, entry.unit.as_deref(), &entry.name);
        Contribution::Estimated {
            profile: per100.scaled(grams / 100.0),
            grams,
        }
    }

    /// Aggregate profile of a mined recipe plus per-ingredient outcomes.
    pub fn estimate(&self, model: &RecipeModel) -> (NutrientProfile, Vec<Contribution>) {
        let mut total = NutrientProfile::default();
        let mut contribs = Vec::with_capacity(model.ingredients.len());
        for entry in &model.ingredients {
            let c = self.contribution(entry);
            if let Contribution::Estimated { profile, .. } = &c {
                total.add(profile);
            }
            contribs.push(c);
        }
        (total, contribs)
    }

    /// Fraction of entries that estimated successfully (coverage metric).
    pub fn coverage(&self, contribs: &[Contribution]) -> f64 {
        if contribs.is_empty() {
            return 0.0;
        }
        let ok = contribs
            .iter()
            .filter(|c| matches!(c, Contribution::Estimated { .. }))
            .count();
        ok as f64 / contribs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, qty: Option<&str>, unit: Option<&str>) -> IngredientEntry {
        IngredientEntry {
            name: name.into(),
            quantity: qty.map(Into::into),
            unit: unit.map(Into::into),
            ..Default::default()
        }
    }

    #[test]
    fn one_cup_of_flour_uses_flour_density() {
        let est = NutritionEstimator::new();
        let c = est.contribution(&entry("flour", Some("1"), Some("cup")));
        match c {
            Contribution::Estimated { profile, grams } => {
                assert_eq!(grams, 120.0, "flour density override");
                assert!((profile.kcal - 364.0 * 1.2).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Water has no override: the generic 240 g cup applies.
        let c = est.contribution(&entry("water", Some("1"), Some("cup")));
        match c {
            Contribution::Estimated { grams, .. } => assert_eq!(grams, 240.0),
            other => panic!("unexpected {other:?}"),
        }
        // Modifier-composed names back off to the base density.
        let c = est.contribution(&entry("all-purpose flour", Some("2"), Some("cup")));
        match c {
            Contribution::Estimated { grams, .. } => assert_eq!(grams, 240.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn modifier_names_fall_back_to_base() {
        let est = NutritionEstimator::new();
        assert!(est.lookup("red onion").is_some());
        assert!(est.lookup("sweet potato").is_some());
        assert!(est.lookup("unobtainium").is_none());
        // Exact multiword rows win over the fallback.
        assert_eq!(est.lookup("olive oil").unwrap().fat_g, 100.0);
    }

    #[test]
    fn ranges_use_midpoint() {
        let est = NutritionEstimator::new();
        let c = est.contribution(&entry("tomato", Some("2-4"), None));
        match c {
            Contribution::Estimated { grams, .. } => assert_eq!(grams, 300.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknowns_are_reported_not_guessed() {
        let est = NutritionEstimator::new();
        assert_eq!(
            est.contribution(&entry("unobtainium", Some("1"), None)),
            Contribution::UnknownIngredient
        );
        assert_eq!(
            est.contribution(&entry("flour", Some("some"), None)),
            Contribution::UnknownQuantity
        );
    }

    #[test]
    fn recipe_aggregation_and_coverage() {
        let est = NutritionEstimator::new();
        let model = RecipeModel {
            ingredients: vec![
                entry("flour", Some("2"), Some("cup")),
                entry("butter", Some("1"), Some("stick")),
                entry("unobtainium", Some("1"), None),
            ],
            ..Default::default()
        };
        let (total, contribs) = est.estimate(&model);
        assert!(total.kcal > 1000.0);
        assert!((est.coverage(&contribs) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_calorie_ingredients() {
        let est = NutritionEstimator::new();
        let c = est.contribution(&entry("water", Some("4"), Some("cup")));
        match c {
            Contribution::Estimated { profile, .. } => assert_eq!(profile.kcal, 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
