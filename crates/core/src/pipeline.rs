//! The end-to-end training pipeline (§II of the paper) and the trained
//! artifact bundle.
//!
//! Training follows the paper's computational protocol:
//!
//! 1. train the POS tagger substrate (stand-in for the pretrained Stanford
//!    Twitter model, which does not exist for Rust);
//! 2. represent every unique ingredient phrase as a 1×36 POS-frequency
//!    vector and K-Means-cluster them (k = 23 by default);
//! 3. draw the annotation budget: a fixed percentage of unique phrases per
//!    cluster for training and (disjointly) for testing — 1 % / 0.33 % for
//!    AllRecipes, 0.5 % / 0.165 % for Food.com in the paper;
//! 4. train the ingredient NER model (linear-chain CRF) on the sampled
//!    phrases;
//! 5. train the instruction NER model and the dependency parser on the
//!    instruction annotations;
//! 6. run the instruction NER over the corpus and build the process and
//!    utensil dictionaries by frequency thresholding (47 / 10 in the
//!    paper).

use crate::infer::{CacheStats, Inference};
use crate::instructions::{build_dictionaries, Dictionaries};
use crate::model::{IngredientEntry, RecipeModel};
use recipe_cluster::{stratified_split, KMeans, KMeansConfig};
use recipe_corpus::{AnnotatedPhrase, Recipe, RecipeCorpus, Site};
use recipe_ner::model::LabeledSequence;
use recipe_ner::{IngredientTag, InstructionTag, SequenceModel, TrainConfig};
use recipe_parser::parser::{DependencyParser, ParseExample, ParserConfig};
use recipe_runtime::Runtime;
use recipe_tagger::{pos_frequency_vector, PosTagger};
use recipe_text::Preprocessor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Pipeline hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// POS tagger training epochs.
    pub pos_epochs: usize,
    /// Ingredient/instruction NER training configuration.
    pub ner: TrainConfig,
    /// K-Means configuration (k = 23 per the paper's elbow analysis).
    pub kmeans: KMeansConfig,
    /// Per-cluster training fraction for AllRecipes (paper: 0.01).
    pub train_frac_allrecipes: f64,
    /// Per-cluster test fraction for AllRecipes (paper: 0.0033).
    pub test_frac_allrecipes: f64,
    /// Per-cluster training fraction for Food.com (paper: 0.005).
    pub train_frac_foodcom: f64,
    /// Per-cluster test fraction for Food.com (paper: 0.00165).
    pub test_frac_foodcom: f64,
    /// Fraction of instruction sentences used to train the instruction NER
    /// and the parser (the paper hand-annotated the longest recipes of 40
    /// cuisines — a small fixed budget).
    pub instruction_train_frac: f64,
    /// Dependency parser training configuration.
    pub parser: ParserConfig,
    /// Absolute frequency threshold for the process dictionary (paper: 47).
    pub process_threshold: usize,
    /// Absolute frequency threshold for the utensil dictionary (paper: 10).
    pub utensil_threshold: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the parallel training and batch-extraction paths
    /// (0 = process-wide default: CLI `--threads` → `RECIPE_THREADS` →
    /// detected cores). Every trained artifact is bit-identical at every
    /// value.
    pub threads: usize,
}

impl PipelineConfig {
    /// The paper's settings, for full-scale corpora.
    pub fn paper() -> Self {
        PipelineConfig {
            pos_epochs: 5,
            ner: TrainConfig::default(),
            kmeans: KMeansConfig::default(),
            train_frac_allrecipes: 0.01,
            test_frac_allrecipes: 0.0033,
            train_frac_foodcom: 0.005,
            test_frac_foodcom: 0.00165,
            instruction_train_frac: 0.02,
            parser: ParserConfig::default(),
            process_threshold: 47,
            utensil_threshold: 10,
            seed: 42,
            threads: 0,
        }
    }

    /// Settings for small corpora and tests: larger sampling fractions
    /// (small corpora would otherwise yield single-digit training sets),
    /// fewer epochs, low dictionary thresholds.
    pub fn fast() -> Self {
        PipelineConfig {
            pos_epochs: 3,
            ner: TrainConfig {
                epochs: 8,
                ..TrainConfig::default()
            },
            kmeans: KMeansConfig {
                k: 23,
                max_iters: 30,
                ..KMeansConfig::default()
            },
            train_frac_allrecipes: 0.30,
            test_frac_allrecipes: 0.10,
            train_frac_foodcom: 0.15,
            test_frac_foodcom: 0.05,
            instruction_train_frac: 0.15,
            parser: ParserConfig {
                epochs: 4,
                ..ParserConfig::default()
            },
            process_threshold: 2,
            utensil_threshold: 2,
            seed: 42,
            threads: 0,
        }
    }
}

/// A stratified ingredient dataset for one site: labeled train/test splits
/// plus bookkeeping from the clustering stage.
#[derive(Debug, Clone)]
pub struct SiteDataset {
    /// Which site the phrases came from.
    pub site: Site,
    /// NER training sequences (preprocessed tokens, tag names).
    pub train: Vec<LabeledSequence>,
    /// NER test sequences, disjoint from `train`.
    pub test: Vec<LabeledSequence>,
    /// Number of unique phrases that entered clustering.
    pub unique_phrases: usize,
    /// K-Means inertia of the clustering used for sampling.
    pub inertia: f64,
}

/// Convert a gold phrase into a labeled NER sequence.
fn phrase_to_sequence(pre: &Preprocessor, phrase: &AnnotatedPhrase) -> LabeledSequence {
    let (words, tags) = phrase.preprocessed(pre);
    (
        words,
        tags.into_iter().map(|t| t.as_str().to_string()).collect(),
    )
}

/// Deduplicate phrases by surface text (the paper samples *unique*
/// ingredient phrases), preserving first-seen order.
fn unique_phrases<'a>(phrases: &[&'a AnnotatedPhrase]) -> Vec<&'a AnnotatedPhrase> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for &p in phrases {
        if seen.insert(p.text()) {
            out.push(p);
        }
    }
    out
}

/// Build the cluster-stratified train/test NER dataset for one site
/// (pipeline steps 2–3).
pub fn build_site_dataset(
    corpus: &RecipeCorpus,
    site: Site,
    pos: &PosTagger,
    pre: &Preprocessor,
    cfg: &PipelineConfig,
) -> SiteDataset {
    let all = corpus.phrases(site);
    let uniq = unique_phrases(&all);
    assert!(!uniq.is_empty(), "no phrases for {site}");

    // 1×36 POS-frequency vectors over the tagger's predictions (the
    // pipeline never uses gold POS at this stage). Each phrase is tagged
    // independently, so the ordered parallel map is exact.
    let rt = Runtime::new(cfg.threads);
    let vectors: Vec<Vec<f64>> =
        rt.par_map(&uniq, |_, p| pos_frequency_vector(&pos.tag(&p.words())));
    let km = KMeans::fit_rt(&vectors, &cfg.kmeans, &rt);

    let (train_frac, test_frac) = match site {
        Site::AllRecipes => (cfg.train_frac_allrecipes, cfg.test_frac_allrecipes),
        Site::FoodCom => (cfg.train_frac_foodcom, cfg.test_frac_foodcom),
    };
    let split = stratified_split(&km.cluster_members(), train_frac, test_frac, cfg.seed);

    let train = split
        .train
        .iter()
        .map(|&i| phrase_to_sequence(pre, uniq[i]))
        .collect();
    let test = split
        .test
        .iter()
        .map(|&i| phrase_to_sequence(pre, uniq[i]))
        .collect();
    SiteDataset {
        site,
        train,
        test,
        unique_phrases: uniq.len(),
        inertia: km.inertia,
    }
}

/// Build instruction NER training data and parser treebank from the
/// corpus's gold annotations (the stand-in for the paper's manual
/// annotation of the longest recipes across 40 cuisines).
pub fn build_instruction_datasets(
    corpus: &RecipeCorpus,
    cfg: &PipelineConfig,
) -> (
    Vec<LabeledSequence>,
    Vec<LabeledSequence>,
    Vec<ParseExample>,
) {
    let mut ner_train = Vec::new();
    let mut ner_test = Vec::new();
    let mut treebank = Vec::new();
    let mut count = 0usize;
    let budget_every = (1.0 / cfg.instruction_train_frac).round().max(1.0) as usize;
    for recipe in &corpus.recipes {
        for sent in &recipe.instructions {
            let words = sent.words();
            let tags: Vec<String> = sent
                .tokens
                .iter()
                .map(|t| t.tag.as_str().to_string())
                .collect();
            let slot = count % budget_every;
            if slot == 0 {
                ner_train.push((words.clone(), tags));
                treebank.push(ParseExample {
                    words,
                    tags: sent.pos_tags(),
                    tree: sent.tree.clone(),
                });
            } else if (1..=3).contains(&slot) {
                // Three held-out sentences per training sentence: the test
                // set is larger than the annotation budget, matching the
                // paper's corpus-wide application of the model.
                ner_test.push((words, tags));
            }
            count += 1;
        }
    }
    (ner_train, ner_test, treebank)
}

/// Extract an [`IngredientEntry`] from NER-tagged tokens. Multi-token runs
/// of the same tag merge (`puff pastry`, `room temperature`, `1 1/2`); for
/// single-valued attributes the first run wins.
pub fn entry_from_tagged(words: &[String], tags: &[IngredientTag]) -> IngredientEntry {
    debug_assert_eq!(words.len(), tags.len());
    let mut entry = IngredientEntry::default();
    let mut name_parts: Vec<String> = Vec::new();
    let mut qty_parts: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < words.len() {
        let tag = tags[i];
        let start = i;
        while i < words.len() && tags[i] == tag {
            i += 1;
        }
        let run = words[start..i].join(" ");
        match tag {
            IngredientTag::O => {}
            IngredientTag::Name => name_parts.push(run),
            IngredientTag::Quantity => qty_parts.push(run),
            IngredientTag::State => {
                entry.state.get_or_insert(run);
            }
            IngredientTag::Unit => {
                entry.unit.get_or_insert(run);
            }
            IngredientTag::Temp => {
                entry.temperature.get_or_insert(run);
            }
            IngredientTag::DryFresh => {
                entry.dry_fresh.get_or_insert(run);
            }
            IngredientTag::Size => {
                entry.size.get_or_insert(run);
            }
        }
    }
    if !name_parts.is_empty() {
        entry.name = name_parts.join(" ");
    }
    if !qty_parts.is_empty() {
        entry.quantity = Some(qty_parts.join(" "));
    }
    entry
}

/// Extracts ingredient attributes from raw phrases using a trained NER
/// model (the user-facing half of §II).
pub struct IngredientExtractor {
    pre: Preprocessor,
    ner: SequenceModel,
}

impl IngredientExtractor {
    /// Wrap a trained NER model.
    pub fn new(ner: SequenceModel) -> Self {
        IngredientExtractor {
            pre: Preprocessor::default(),
            ner,
        }
    }

    /// Extract the structured entry for one raw ingredient phrase.
    pub fn extract(&self, phrase: &str) -> IngredientEntry {
        let _span = recipe_obs::span!("pipeline.ingredient_extractor.extract");
        let words = self.pre.preprocess(phrase);
        let tags: Vec<IngredientTag> = self
            .ner
            .predict(&words)
            .iter()
            .map(|t| IngredientTag::parse(t).unwrap_or(IngredientTag::O))
            .collect();
        entry_from_tagged(&words, &tags)
    }

    /// Access the underlying NER model.
    pub fn ner(&self) -> &SequenceModel {
        &self.ner
    }

    /// Access the preprocessor.
    pub fn preprocessor(&self) -> &Preprocessor {
        &self.pre
    }
}

/// The full trained pipeline: every model of Fig. 1's mining stack.
pub struct TrainedPipeline {
    /// Preprocessor shared across stages.
    pub pre: Preprocessor,
    /// POS tagger (Stanford-Twitter-model stand-in).
    pub pos: PosTagger,
    /// Ingredient NER (trained on the composite BOTH dataset).
    pub ingredient_ner: SequenceModel,
    /// Instruction NER.
    pub instruction_ner: SequenceModel,
    /// Dependency parser.
    pub parser: DependencyParser,
    /// Frequency-thresholded process/utensil dictionaries.
    pub dicts: Dictionaries,
    /// Per-site ingredient datasets (kept for evaluation and Table III).
    pub site_datasets: Vec<SiteDataset>,
    /// Compiled serving layer: frozen CSR models + phrase caches. Built
    /// from the models above at train/load time; call
    /// [`TrainedPipeline::recompile`] after mutating them.
    pub inference: Inference,
}

/// Train the POS-tagger substrate on the corpus's gold POS annotations
/// (pipeline stage 1 — the stand-in for the pretrained Stanford Twitter
/// model).
pub fn train_pos_tagger(corpus: &RecipeCorpus, epochs: usize, seed: u64) -> PosTagger {
    let pos_data: Vec<(Vec<String>, Vec<recipe_tagger::PennTag>)> = corpus
        .recipes
        .iter()
        .flat_map(|r| {
            r.ingredients
                .iter()
                .map(|p| (p.words(), p.pos_tags()))
                .chain(r.instructions.iter().map(|s| (s.words(), s.pos_tags())))
        })
        .collect();
    PosTagger::train(&pos_data, epochs, seed)
}

impl TrainedPipeline {
    /// Train every stage on a corpus.
    pub fn train(corpus: &RecipeCorpus, cfg: &PipelineConfig) -> Self {
        let pre = Preprocessor::default();
        let rt = Runtime::new(cfg.threads);
        let pos = train_pos_tagger(corpus, cfg.pos_epochs, cfg.seed);

        // Stages 2–4: per-site stratified datasets and the composite NER.
        // The pipeline-level thread count flows into NER training unless
        // the NER config pins its own.
        let mut ner_cfg = cfg.ner;
        if ner_cfg.threads == 0 {
            ner_cfg.threads = cfg.threads;
        }
        let ds_ar = build_site_dataset(corpus, Site::AllRecipes, &pos, &pre, cfg);
        let ds_fc = build_site_dataset(corpus, Site::FoodCom, &pos, &pre, cfg);
        let mut both_train = ds_ar.train.clone();
        both_train.extend(ds_fc.train.iter().cloned());
        let labels = IngredientTag::label_set();
        let ingredient_ner = SequenceModel::train(&labels, &both_train, &ner_cfg);

        // Stage 5: instruction NER + parser.
        let (instr_train, _instr_test, treebank) = build_instruction_datasets(corpus, cfg);
        let instruction_ner =
            SequenceModel::train(&InstructionTag::label_set(), &instr_train, &ner_cfg);
        let parser = DependencyParser::train(&treebank, &cfg.parser);

        // Stage 6: dictionaries from NER predictions over the corpus.
        let dicts = build_dictionaries(
            corpus,
            &instruction_ner,
            &pre,
            cfg.process_threshold,
            cfg.utensil_threshold,
            &rt,
        );

        let inference = Inference::compile(&pos, &ingredient_ner, &instruction_ner);
        TrainedPipeline {
            pre,
            pos,
            ingredient_ner,
            instruction_ner,
            parser,
            dicts,
            site_datasets: vec![ds_ar, ds_fc],
            inference,
        }
    }

    /// Rebuild the compiled inference layer from the current models and
    /// drop the phrase caches. Required after mutating a model in place
    /// (e.g. through `params_mut`): the compiled layer snapshots weights
    /// at build time and does not track later edits.
    pub fn recompile(&mut self) {
        self.inference = Inference::compile(&self.pos, &self.ingredient_ner, &self.instruction_ner);
    }

    /// Enable or disable the phrase caches (results are identical either
    /// way — see the `--no-cache` CLI flag and the inference benches).
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.inference.set_cache_enabled(enabled);
    }

    /// Combined hit/miss/entry counters over both phrase caches.
    pub fn cache_stats(&self) -> CacheStats {
        self.inference.cache_stats()
    }

    /// Extract the structured entry for one raw ingredient phrase, through
    /// the compiled NER model and the phrase cache. Byte-identical to
    /// [`Self::extract_ingredient_reference`] on every input.
    pub fn extract_ingredient(&self, phrase: &str) -> IngredientEntry {
        let _span = recipe_obs::span!("pipeline.extract_ingredient");
        let words = self.pre.preprocess(phrase);
        self.inference.ingredient_entry(&words)
    }

    /// Reference extraction path: the uncompiled, uncached decode the
    /// compiled path is verified against (tests, lint rule RA208, and the
    /// speedup baseline in the inference benches).
    pub fn extract_ingredient_reference(&self, phrase: &str) -> IngredientEntry {
        let _span = recipe_obs::span!("pipeline.extract_ingredient.reference");
        let words = self.pre.preprocess(phrase);
        let tags: Vec<IngredientTag> = self
            .ingredient_ner
            .predict(&words)
            .iter()
            .map(|t| IngredientTag::parse(t).unwrap_or(IngredientTag::O))
            .collect();
        entry_from_tagged(&words, &tags)
    }

    /// Mine the full [`RecipeModel`] from a recipe's raw text.
    pub fn model_recipe(&self, recipe: &Recipe) -> RecipeModel {
        let _span = recipe_obs::span!("pipeline.model_recipe");
        let ingredients: Vec<IngredientEntry> = recipe
            .ingredient_lines()
            .iter()
            .map(|line| self.extract_ingredient(line))
            .collect();
        let events = crate::events::extract_recipe_events(self, recipe);
        RecipeModel {
            id: recipe.id,
            title: recipe.title.clone(),
            cuisine: recipe.cuisine.clone(),
            ingredients,
            events,
            num_steps: recipe.num_steps(),
        }
    }

    /// Reference (uncompiled, uncached) counterpart of
    /// [`Self::model_recipe`]; byte-identical output.
    pub fn model_recipe_reference(&self, recipe: &Recipe) -> RecipeModel {
        let _span = recipe_obs::span!("pipeline.model_recipe.reference");
        let ingredients: Vec<IngredientEntry> = recipe
            .ingredient_lines()
            .iter()
            .map(|line| self.extract_ingredient_reference(line))
            .collect();
        let events = crate::events::extract_recipe_events_reference(self, recipe);
        RecipeModel {
            id: recipe.id,
            title: recipe.title.clone(),
            cuisine: recipe.cuisine.clone(),
            ingredients,
            events,
            num_steps: recipe.num_steps(),
        }
    }

    /// Mine [`RecipeModel`]s for a batch of recipes on `rt`. Every recipe
    /// is mined independently, so the ordered parallel map returns exactly
    /// the same models as a serial [`Self::model_recipe`] loop, in input
    /// order, at any thread count.
    pub fn model_recipes(&self, recipes: &[Recipe], rt: &Runtime) -> Vec<RecipeModel> {
        let _span = recipe_obs::span!("pipeline.model_recipes");
        rt.par_map(recipes, |_, r| self.model_recipe(r))
    }

    /// Reference (uncompiled, uncached) counterpart of
    /// [`Self::model_recipes`]; byte-identical output at any thread count.
    pub fn model_recipes_reference(&self, recipes: &[Recipe], rt: &Runtime) -> Vec<RecipeModel> {
        let _span = recipe_obs::span!("pipeline.model_recipes.reference");
        rt.par_map(recipes, |_, r| self.model_recipe_reference(r))
    }

    /// Mine a recipe from **raw text**: ingredient lines plus instruction
    /// step paragraphs (each paragraph may contain several sentences,
    /// split on `.`). This is the entry point for text that did not come
    /// from the synthetic corpus.
    pub fn model_text(
        &self,
        title: &str,
        cuisine: &str,
        ingredient_lines: &[String],
        instruction_steps: &[String],
    ) -> RecipeModel {
        let _span = recipe_obs::span!("pipeline.model_text");
        let ingredients: Vec<IngredientEntry> = ingredient_lines
            .iter()
            .map(|l| self.extract_ingredient(l))
            .collect();
        let mut events = Vec::new();
        for (step, paragraph) in instruction_steps.iter().enumerate() {
            for sentence in split_sentences(paragraph) {
                events.extend(crate::events::extract_sentence_events(
                    self, &sentence, step,
                ));
            }
        }
        RecipeModel {
            id: 0,
            title: title.to_string(),
            cuisine: cuisine.to_string(),
            ingredients,
            events,
            num_steps: instruction_steps.len(),
        }
    }

    /// All unique extracted ingredient names over a corpus (the paper's
    /// "20 280 unique ingredient names" statistic, at our scale), on the
    /// process-wide default runtime. See [`Self::unique_ingredient_names_rt`].
    pub fn unique_ingredient_names(&self, corpus: &RecipeCorpus) -> usize {
        self.unique_ingredient_names_rt(corpus, &Runtime::global())
    }

    /// Count unique extracted ingredient names on `rt`: per-chunk name
    /// sets are merged on the calling thread, so the count is
    /// thread-count-independent (set union is order-insensitive).
    pub fn unique_ingredient_names_rt(&self, corpus: &RecipeCorpus, rt: &Runtime) -> usize {
        let _span = recipe_obs::span!("pipeline.unique_ingredient_names");
        let chunk = corpus.recipes.len().div_ceil(64).max(1);
        let partials = rt.par_chunks_map(&corpus.recipes, chunk, |_, recipes| {
            let mut names = std::collections::HashSet::new();
            for r in recipes {
                for line in r.ingredient_lines() {
                    let e = self.extract_ingredient(&line);
                    if !e.name.is_empty() {
                        names.insert(e.name);
                    }
                }
            }
            names
        });
        let mut names = std::collections::HashSet::new();
        for p in partials {
            names.extend(p);
        }
        names.len()
    }
}

/// Split a raw instruction paragraph into tokenized sentences. Sentence
/// boundaries are `.`, `!` and `?` tokens (kept as the final token of each
/// sentence, matching the grammar's sentence shape).
pub fn split_sentences(paragraph: &str) -> Vec<Vec<String>> {
    let mut sentences = Vec::new();
    let mut current: Vec<String> = Vec::new();
    for tok in recipe_text::tokenize(paragraph) {
        let boundary = matches!(tok.text.as_str(), "." | "!" | "?");
        current.push(tok.text);
        if boundary {
            sentences.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        sentences.push(current);
    }
    sentences
}

/// Count of unique surface forms per site — diagnostic used by benches.
pub fn unique_phrase_counts(corpus: &RecipeCorpus) -> HashMap<Site, usize> {
    let mut out = HashMap::new();
    for site in [Site::AllRecipes, Site::FoodCom] {
        let phrases = corpus.phrases(site);
        out.insert(site, unique_phrases(&phrases).len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recipe_corpus::CorpusSpec;

    fn tiny_pipeline() -> (RecipeCorpus, TrainedPipeline) {
        let corpus = RecipeCorpus::generate(&CorpusSpec::tiny(11));
        let cfg = PipelineConfig::fast();
        let pipeline = TrainedPipeline::train(&corpus, &cfg);
        (corpus, pipeline)
    }

    #[test]
    fn entry_from_tagged_groups_runs() {
        use IngredientTag as I;
        let words: Vec<String> = ["1", "1/2", "cup", "olive", "oil", "chopped"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let tags = [
            I::Quantity,
            I::Quantity,
            I::Unit,
            I::Name,
            I::Name,
            I::State,
        ];
        let e = entry_from_tagged(&words, &tags);
        assert_eq!(e.name, "olive oil");
        assert_eq!(e.quantity.as_deref(), Some("1 1/2"));
        assert_eq!(e.unit.as_deref(), Some("cup"));
        assert_eq!(e.state.as_deref(), Some("chopped"));
    }

    #[test]
    fn pipeline_trains_and_extracts() {
        let (corpus, pipeline) = tiny_pipeline();
        // Extraction on a simple held-out-style phrase.
        let e = pipeline.extract_ingredient("2 cups flour");
        assert_eq!(e.quantity.as_deref(), Some("2"));
        assert_eq!(e.unit.as_deref(), Some("cup"));
        assert_eq!(e.name, "flour");
        // Full recipe modelling runs end to end.
        let model = pipeline.model_recipe(&corpus.recipes[0]);
        assert_eq!(model.ingredients.len(), corpus.recipes[0].ingredients.len());
        assert_eq!(model.num_steps, corpus.recipes[0].num_steps());
    }

    #[test]
    fn split_sentences_on_periods() {
        let s = split_sentences("Boil the water. Add salt and stir.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], ["Boil", "the", "water", "."]);
        assert_eq!(s[1].last().map(|t| t.as_str()), Some("."));
        // Trailing text without punctuation still forms a sentence.
        let s = split_sentences("serve warm");
        assert_eq!(s.len(), 1);
        assert!(split_sentences("").is_empty());
    }

    #[test]
    fn model_text_mines_raw_recipes() {
        let (_, pipeline) = tiny_pipeline();
        let model = pipeline.model_text(
            "stovetop pasta",
            "italian",
            &["2 cups pasta".to_string(), "1 pinch salt".to_string()],
            &[
                "Boil the pasta in a large pot. Add the salt.".to_string(),
                "Drain the pasta in a colander.".to_string(),
            ],
        );
        assert_eq!(model.ingredients.len(), 2);
        assert_eq!(model.ingredients[0].name, "pasta");
        assert_eq!(model.num_steps, 2);
        assert!(!model.events.is_empty(), "no events mined from raw text");
        assert!(model.events.iter().all(|e| e.step < 2));
    }

    #[test]
    fn site_datasets_are_disjoint_and_sized() {
        let (_, pipeline) = tiny_pipeline();
        for ds in &pipeline.site_datasets {
            assert!(!ds.train.is_empty(), "{:?} train empty", ds.site);
            assert!(!ds.test.is_empty(), "{:?} test empty", ds.site);
            let train_texts: std::collections::HashSet<String> =
                ds.train.iter().map(|(w, _)| w.join(" ")).collect();
            for (w, _) in &ds.test {
                assert!(!train_texts.contains(&w.join(" ")), "leaked test phrase");
            }
        }
    }

    #[test]
    fn dictionaries_contain_core_processes() {
        let (_, pipeline) = tiny_pipeline();
        assert!(!pipeline.dicts.processes.is_empty());
        assert!(!pipeline.dicts.utensils.is_empty());
    }

    #[test]
    fn unique_names_are_plausible() {
        let (corpus, pipeline) = tiny_pipeline();
        let n = pipeline.unique_ingredient_names(&corpus);
        assert!(n > 20, "unique names {n}");
    }

    #[test]
    fn batch_model_recipes_matches_serial_loop() {
        let (corpus, pipeline) = tiny_pipeline();
        let serial: Vec<_> = corpus
            .recipes
            .iter()
            .map(|r| pipeline.model_recipe(r))
            .collect();
        for t in [1, 2, 4, 8] {
            let batch = pipeline.model_recipes(&corpus.recipes, &Runtime::new(t));
            assert_eq!(batch.len(), serial.len(), "threads {t}");
            for (b, s) in batch.iter().zip(&serial) {
                assert_eq!(b.id, s.id, "threads {t}");
                assert_eq!(b.ingredients, s.ingredients, "threads {t}");
                assert_eq!(b.events, s.events, "threads {t}");
            }
        }
    }

    #[test]
    fn compiled_extraction_matches_reference_with_cache_on_and_off() {
        let (corpus, pipeline) = tiny_pipeline();
        let phrases = [
            "2 cups flour",
            "1 sheet frozen puff pastry ( thawed )",
            "2-3 medium tomatoes , finely chopped",
            "salt",
        ];
        for cached in [true, false] {
            pipeline.set_cache_enabled(cached);
            for p in &phrases {
                assert_eq!(
                    pipeline.extract_ingredient(p),
                    pipeline.extract_ingredient_reference(p),
                    "cached={cached} phrase={p:?}"
                );
                // Second call exercises the hit path when caching is on.
                assert_eq!(
                    pipeline.extract_ingredient(p),
                    pipeline.extract_ingredient_reference(p),
                    "cached={cached} phrase={p:?} (repeat)"
                );
            }
            for r in corpus.recipes.iter().take(4) {
                let compiled = pipeline.model_recipe(r);
                let reference = pipeline.model_recipe_reference(r);
                assert_eq!(
                    serde_json::to_string(&compiled).unwrap(),
                    serde_json::to_string(&reference).unwrap(),
                    "cached={cached} recipe={}",
                    r.id
                );
            }
        }
        pipeline.set_cache_enabled(true);
        let stats = pipeline.cache_stats();
        assert!(stats.hits > 0, "cache never hit: {stats:?}");
        assert!(stats.entries > 0);
    }

    #[test]
    fn event_cache_patches_step_on_hits() {
        let (_, pipeline) = tiny_pipeline();
        let words: Vec<String> = ["Boil", "the", "water", "."]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let at_step_0 = crate::events::extract_sentence_events(&pipeline, &words, 0);
        // Same sentence at a different step: served from cache, step patched.
        let at_step_5 = crate::events::extract_sentence_events(&pipeline, &words, 5);
        assert_eq!(at_step_0.len(), at_step_5.len());
        for (a, b) in at_step_0.iter().zip(&at_step_5) {
            assert_eq!(a.process, b.process);
            assert_eq!(a.ingredients, b.ingredients);
            assert_eq!(a.utensils, b.utensils);
            assert_eq!(b.step, 5);
        }
        let reference = crate::events::extract_sentence_events_reference(&pipeline, &words, 5);
        assert_eq!(at_step_5, reference);
    }

    #[test]
    fn recompile_tracks_model_mutation() {
        let (_, mut pipeline) = tiny_pipeline();
        let before = pipeline.extract_ingredient("2 cups flour");
        // Zero out the ingredient NER: the stale compiled layer keeps the
        // old behavior until recompile.
        let params = pipeline.ingredient_ner.params_mut();
        params.emit.iter_mut().for_each(|w| *w = 0.0);
        params.trans.iter_mut().for_each(|w| *w = 0.0);
        params.start.iter_mut().for_each(|w| *w = 0.0);
        params.end.iter_mut().for_each(|w| *w = 0.0);
        pipeline.set_cache_enabled(false);
        assert_eq!(pipeline.extract_ingredient("2 cups flour"), before);
        pipeline.recompile();
        pipeline.set_cache_enabled(false);
        assert_eq!(
            pipeline.extract_ingredient("2 cups flour"),
            pipeline.extract_ingredient_reference("2 cups flour")
        );
    }

    #[test]
    fn dictionaries_are_thread_count_independent() {
        let (corpus, pipeline) = tiny_pipeline();
        let reference = build_dictionaries(
            &corpus,
            &pipeline.instruction_ner,
            &pipeline.pre,
            2,
            2,
            &Runtime::serial(),
        );
        for t in [2, 3, 8] {
            let d = build_dictionaries(
                &corpus,
                &pipeline.instruction_ner,
                &pipeline.pre,
                2,
                2,
                &Runtime::new(t),
            );
            assert_eq!(d.process_counts, reference.process_counts, "threads {t}");
            assert_eq!(d.utensil_counts, reference.utensil_counts, "threads {t}");
        }
    }

    #[test]
    fn instruction_dataset_split() {
        let corpus = RecipeCorpus::generate(&CorpusSpec::tiny(3));
        let cfg = PipelineConfig::fast();
        let (train, test, treebank) = build_instruction_datasets(&corpus, &cfg);
        assert!(!train.is_empty());
        assert!(!test.is_empty());
        assert_eq!(train.len(), treebank.len());
        assert!(train.len() < corpus.num_instructions() / 3);
    }
}
