//! Binary `.rma` model artifacts: serialize a trained pipeline's
//! compiled models into the zero-copy container defined by
//! `recipe-artifact`, and serve extraction straight from the loaded
//! bytes.
//!
//! The JSON path ([`crate::persist`]) ships *trainable* parameters and
//! recompiles on load — seconds of cold start. This module ships the
//! *compiled* forms (CSR weights, interned feature tables, quantized
//! variants), so loading is a structural O(sections) validation plus a
//! handful of tiny materializations (label names), independent of model
//! size. An [`ArtifactPipeline`] serves `extract` workloads; training,
//! dependency parsing and event mining still require the JSON pipeline
//! (the parser and dictionaries are not part of the `.rma` format).
//!
//! Section kind assignment inside the container:
//!
//! | kind base | contents |
//! |-----------|----------|
//! | 1         | manifest (creator strings) |
//! | 100..=113 | ingredient NER (`recipe_ner::artifact::section`) |
//! | 200..=213 | instruction NER |
//! | 300..=306 | POS tagger (`recipe_tagger::artifact::section`) |
//! | 400       | drift reference (frozen margin/label/cache distribution) |

use crate::infer::Inference;
use crate::model::IngredientEntry;
use crate::pipeline::TrainedPipeline;
use recipe_artifact::{write_str_table, Artifact, ArtifactError, ArtifactWriter};
use recipe_ner::NerView;
use recipe_tagger::PosView;
use recipe_text::Preprocessor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Section kind of the manifest string table.
pub const KIND_MANIFEST: u32 = 1;
/// Base section kind of the ingredient NER model block.
pub const KIND_INGREDIENT_NER: u32 = 100;
/// Base section kind of the instruction NER model block.
pub const KIND_INSTRUCTION_NER: u32 = 200;
/// Base section kind of the POS tagger block.
pub const KIND_POS: u32 = 300;
/// Section kind of the prediction-drift reference distribution.
pub const KIND_DRIFT: u32 = 400;

/// Version of the drift-reference section payload.
pub const DRIFT_SCHEMA_VERSION: u64 = 1;

/// Bucket upper bounds over per-token Viterbi margins (best minus
/// runner-up accumulated score), one overflow bucket implied. Both the
/// compile-time reference capture and the server's live sampler bucket
/// through [`drift_margin_bucket`], so PSI compares like with like.
pub const DRIFT_MARGIN_BOUNDS: [f64; 10] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Index of the margin bucket for `margin` (overflow bucket last).
pub fn drift_margin_bucket(margin: f64) -> usize {
    DRIFT_MARGIN_BOUNDS.partition_point(|&b| b < margin.max(0.0))
}

/// A frozen reference distribution of prediction behaviour, captured at
/// `compile` time by running extraction with provenance recording over
/// a corpus sample. The server compares its live windowed distribution
/// against this section with a population-stability index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReference {
    /// Payload layout version ([`DRIFT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Number of phrases the reference run extracted.
    pub phrases: u64,
    /// Margin bucket upper bounds ([`DRIFT_MARGIN_BOUNDS`]).
    pub margin_bounds: Vec<f64>,
    /// Per-bucket Viterbi margin counts, overflow bucket last.
    pub margin_counts: Vec<u64>,
    /// Predicted-label counts from the ingredient NER decode.
    pub label_counts: BTreeMap<String, u64>,
    /// Phrase-cache hits observed during the reference run.
    pub cache_hits: u64,
    /// Phrase-cache misses observed during the reference run.
    pub cache_misses: u64,
}

impl DriftReference {
    /// Serialize for the artifact section (JSON payload; the container
    /// supplies framing and CRC).
    pub fn encode(&self) -> Vec<u8> {
        // Serializing a plain in-memory struct cannot fail; an empty
        // payload would simply decode to `None` and disable drift
        // scoring, matching the forward-compatibility contract below.
        serde_json::to_string(self)
            .map(String::into_bytes)
            .unwrap_or_default()
    }

    /// Decode a drift section payload; `None` when the payload is not
    /// a current-version reference (forward compatibility: an unknown
    /// drift section disables drift scoring, never the model).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let _span = recipe_obs::span!("artifact.drift_decode");
        let text = std::str::from_utf8(bytes).ok()?;
        let reference: DriftReference = serde_json::from_str(text).ok()?;
        (reference.schema_version == DRIFT_SCHEMA_VERSION).then_some(reference)
    }
}

/// Capture a [`DriftReference`] by extracting `phrases` with provenance
/// recording on and aggregating the margin/label/cache records.
///
/// Uses the process-global provenance store — callers that share it
/// (the server's `/explain` path) hold their own exclusion lock;
/// `compile` runs single-threaded so plain reset/drain is safe.
pub fn capture_drift_reference(pipeline: &TrainedPipeline, phrases: &[String]) -> DriftReference {
    recipe_obs::provenance::reset();
    recipe_obs::provenance::set_enabled(true);
    for phrase in phrases {
        pipeline.extract_ingredient(phrase);
    }
    recipe_obs::provenance::set_enabled(false);
    let records = recipe_obs::provenance::drain();

    let mut margin_counts = vec![0u64; DRIFT_MARGIN_BOUNDS.len() + 1];
    let mut label_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for r in &records {
        match r.kind {
            "viterbi.margin" => {
                if let Some(m) = r.margin {
                    margin_counts[drift_margin_bucket(m)] += 1;
                }
                *label_counts.entry(r.decision.clone()).or_insert(0) += 1;
            }
            "cache.lookup" => match r.decision.as_str() {
                "hit" => cache_hits += 1,
                "miss" => cache_misses += 1,
                _ => {}
            },
            _ => {}
        }
    }
    DriftReference {
        schema_version: DRIFT_SCHEMA_VERSION,
        phrases: phrases.len() as u64,
        margin_bounds: DRIFT_MARGIN_BOUNDS.to_vec(),
        margin_counts,
        label_counts,
        cache_hits,
        cache_misses,
    }
}

/// Errors from writing or loading `.rma` pipeline artifacts.
#[derive(Debug)]
pub enum ArtifactPipelineError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The container or a model section failed validation.
    Format(ArtifactError),
    /// The pipeline's inference bundle is artifact-backed, so the
    /// compiled models needed for serialization are not present.
    NotCompiled,
}

impl fmt::Display for ArtifactPipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactPipelineError::Io(e) => write!(f, "io error: {e}"),
            ArtifactPipelineError::Format(e) => write!(f, "artifact error: {e}"),
            ArtifactPipelineError::NotCompiled => {
                write!(
                    f,
                    "pipeline is artifact-backed; re-serialization needs compiled models"
                )
            }
        }
    }
}

impl std::error::Error for ArtifactPipelineError {}

impl From<std::io::Error> for ArtifactPipelineError {
    fn from(e: std::io::Error) -> Self {
        ArtifactPipelineError::Io(e)
    }
}

impl From<ArtifactError> for ArtifactPipelineError {
    fn from(e: ArtifactError) -> Self {
        ArtifactPipelineError::Format(e)
    }
}

/// Serialize the pipeline's compiled models into `.rma` container bytes.
/// Byte-identical to pre-drift artifacts: the drift section is only
/// appended by [`artifact_bytes_with_reference`].
pub fn artifact_bytes(pipeline: &TrainedPipeline) -> Result<Vec<u8>, ArtifactPipelineError> {
    artifact_bytes_with_reference(pipeline, None)
}

/// Serialize the pipeline's compiled models, optionally appending a
/// frozen [`DriftReference`] section ([`KIND_DRIFT`]).
pub fn artifact_bytes_with_reference(
    pipeline: &TrainedPipeline,
    reference: Option<&DriftReference>,
) -> Result<Vec<u8>, ArtifactPipelineError> {
    let inference = &pipeline.inference;
    let ingredient = inference
        .ingredient_model()
        .ok_or(ArtifactPipelineError::NotCompiled)?;
    let instruction = inference
        .instruction_model()
        .ok_or(ArtifactPipelineError::NotCompiled)?;
    let pos = inference
        .pos_model()
        .ok_or(ArtifactPipelineError::NotCompiled)?;

    let mut writer = ArtifactWriter::new();
    let mut manifest = Vec::new();
    write_str_table(
        &mut manifest,
        &[
            "recipe-knowledge-mining",
            "ingredient-ner instruction-ner pos",
        ],
    );
    writer.push_section(KIND_MANIFEST, manifest);
    recipe_ner::artifact::append_model(&mut writer, KIND_INGREDIENT_NER, ingredient);
    recipe_ner::artifact::append_model(&mut writer, KIND_INSTRUCTION_NER, instruction);
    recipe_tagger::artifact::append_tagger(&mut writer, KIND_POS, pos);
    if let Some(reference) = reference {
        writer.push_section(KIND_DRIFT, reference.encode());
    }
    Ok(writer.finish())
}

/// Write the pipeline's compiled models to a `.rma` file at `path`.
pub fn save_artifact(
    pipeline: &TrainedPipeline,
    path: impl AsRef<Path>,
) -> Result<(), ArtifactPipelineError> {
    let bytes = artifact_bytes(pipeline)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Whether the file at `path` starts with the `.rma` magic (used by the
/// CLI to dispatch between JSON and binary model files). Unreadable
/// files report `false`; the subsequent open surfaces the real error.
pub fn sniffs_as_artifact(path: impl AsRef<Path>) -> bool {
    use std::io::Read;
    let mut head = [0u8; 8];
    match std::fs::File::open(path) {
        Ok(mut f) => f.read_exact(&mut head).is_ok() && head == recipe_artifact::MAGIC,
        Err(_) => false,
    }
}

/// An extraction pipeline served from `.rma` artifact bytes: the
/// stateless preprocessor plus an artifact-backed [`Inference`] bundle.
///
/// Serves [`ArtifactPipeline::extract_ingredient`] (and the underlying
/// [`Inference`] surface: instruction tagging, POS tagging, caches,
/// metrics) byte-identically to the [`TrainedPipeline`] the artifact
/// was written from when `quantized` is off.
#[derive(Debug)]
pub struct ArtifactPipeline {
    /// Tokenization/normalization, rebuilt from embedded tables — the
    /// preprocessor is stateless, exactly as on the JSON load path.
    pub pre: Preprocessor,
    /// Artifact-backed inference bundle.
    pub inference: Inference,
    /// The validated container (kept for [`ArtifactPipeline::verify_crc`]).
    artifact: Artifact,
}

impl ArtifactPipeline {
    /// Open pipeline views over already-loaded container bytes.
    ///
    /// Structural validation is O(sections); `quantized` selects the
    /// i16 decode kernels for both NER models.
    pub fn from_bytes(bytes: Arc<[u8]>, quantized: bool) -> Result<Self, ArtifactPipelineError> {
        let _span = recipe_obs::span!("artifact.load");
        let total_len = bytes.len();
        let artifact = Artifact::parse(bytes)?;
        let ingredient = NerView::from_artifact(&artifact, KIND_INGREDIENT_NER, quantized)?;
        let instruction = NerView::from_artifact(&artifact, KIND_INSTRUCTION_NER, quantized)?;
        let pos = PosView::from_artifact(&artifact, KIND_POS)?;
        let inference = Inference::from_views(pos, ingredient, instruction);
        // Load telemetry on the instance registry, so `--metrics-out`
        // documents from artifact-served extraction record what was
        // opened (counters never affect decoded output).
        let registry = inference.metrics_registry();
        registry.counter("artifact.loads").inc();
        if quantized {
            registry.counter("artifact.loads_quantized").inc();
        }
        registry.gauge("artifact.bytes").set(total_len as f64);
        Ok(ArtifactPipeline {
            pre: Preprocessor::default(),
            inference,
            artifact,
        })
    }

    /// Read and open a `.rma` file, including the O(bytes) CRC pass —
    /// file bytes are untrusted on cold open. Use
    /// [`ArtifactPipeline::from_bytes`] to skip the integrity pass for
    /// bytes that were already verified.
    pub fn load(path: impl AsRef<Path>, quantized: bool) -> Result<Self, ArtifactPipelineError> {
        let bytes = std::fs::read(path)?;
        let loaded = Self::from_bytes(bytes.into(), quantized)?;
        loaded.verify_crc()?;
        Ok(loaded)
    }

    /// Run the O(bytes) CRC-32 pass over every section payload.
    pub fn verify_crc(&self) -> Result<(), ArtifactError> {
        let _span = recipe_obs::span!("artifact.crc_verify");
        let registry = self.inference.metrics_registry();
        match self.artifact.verify_crc() {
            Ok(()) => {
                registry.counter("artifact.crc_verifies").inc();
                Ok(())
            }
            Err(e) => {
                registry.counter("artifact.crc_failures").inc();
                Err(e)
            }
        }
    }

    /// The frozen drift reference embedded at compile time, when the
    /// artifact carries one ([`KIND_DRIFT`]).
    pub fn drift_reference(&self) -> Option<DriftReference> {
        let range = self.artifact.section(KIND_DRIFT)?;
        DriftReference::decode(&self.artifact.buf()[range])
    }

    /// Extract the structured entry for one raw ingredient phrase —
    /// same preprocessing and decode contract as
    /// [`TrainedPipeline::extract_ingredient`].
    pub fn extract_ingredient(&self, phrase: &str) -> IngredientEntry {
        let _span = recipe_obs::span!("pipeline.extract_ingredient");
        let words = self.pre.preprocess(phrase);
        self.inference.ingredient_entry(&words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use recipe_corpus::{CorpusSpec, RecipeCorpus};

    fn trained() -> (RecipeCorpus, TrainedPipeline) {
        let corpus = RecipeCorpus::generate(&CorpusSpec::tiny(101));
        let pipeline = TrainedPipeline::train(&corpus, &PipelineConfig::fast());
        (corpus, pipeline)
    }

    #[test]
    fn artifact_round_trip_preserves_extraction() {
        let (_corpus, pipeline) = trained();
        let bytes = artifact_bytes(&pipeline).expect("serialize");
        let loaded = ArtifactPipeline::from_bytes(bytes.into(), false).expect("load");
        loaded.verify_crc().expect("checksums");

        let phrases = [
            "2 cups flour",
            "1 sheet frozen puff pastry ( thawed )",
            "2-3 medium tomatoes , finely chopped",
            "salt",
        ];
        for phrase in phrases {
            assert_eq!(
                pipeline.extract_ingredient(phrase),
                loaded.extract_ingredient(phrase),
                "{phrase}"
            );
        }
        // Instruction tagging and POS tagging go through the same views.
        let words: Vec<String> = ["boil", "the", "water"].map(String::from).to_vec();
        assert_eq!(
            pipeline.inference.tag_instruction(&words),
            loaded.inference.tag_instruction(&words)
        );
        assert_eq!(
            pipeline.inference.pos_tag(&words),
            loaded.inference.pos_tag(&words)
        );
    }

    #[test]
    fn save_load_file_round_trip_and_magic_sniffing() {
        let (_corpus, pipeline) = trained();
        let dir = std::env::temp_dir().join("recipe_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.rma");
        save_artifact(&pipeline, &path).expect("save");
        assert!(sniffs_as_artifact(&path));
        assert!(!sniffs_as_artifact(dir.join("missing.rma")));

        let loaded = ArtifactPipeline::load(&path, false).expect("load");
        assert_eq!(
            pipeline.extract_ingredient("2 cups flour"),
            loaded.extract_ingredient("2 cups flour")
        );

        // JSON model files must not sniff as binary artifacts.
        let json_path = dir.join("model.json");
        pipeline.save(&json_path).expect("save json");
        assert!(!sniffs_as_artifact(&json_path));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&json_path).ok();
    }

    #[test]
    fn quantized_pipeline_loads_and_extracts() {
        let (_corpus, pipeline) = trained();
        let bytes = artifact_bytes(&pipeline).expect("serialize");
        let loaded = ArtifactPipeline::from_bytes(bytes.into(), true).expect("load");
        // Drift is gated corpus-wide in tests/artifact.rs; here we only
        // require the quantized path to produce well-formed entries.
        let entry = loaded.extract_ingredient("2 cups flour");
        assert!(!entry.name.is_empty() || entry.quantity.is_some() || entry.unit.is_some());
    }

    #[test]
    fn drift_reference_round_trips_through_artifact() {
        let (corpus, pipeline) = trained();
        let phrases: Vec<String> = corpus
            .recipes
            .iter()
            .flat_map(|r| r.ingredient_lines())
            .take(32)
            .collect();
        let reference = capture_drift_reference(&pipeline, &phrases);
        assert_eq!(reference.phrases, phrases.len() as u64);
        assert!(
            reference.margin_counts.iter().sum::<u64>() > 0,
            "reference saw margins: {reference:?}"
        );
        assert!(!reference.label_counts.is_empty());

        let bytes = artifact_bytes_with_reference(&pipeline, Some(&reference)).expect("serialize");
        let loaded = ArtifactPipeline::from_bytes(bytes.into(), false).expect("load");
        loaded.verify_crc().expect("checksums");
        assert_eq!(loaded.drift_reference(), Some(reference));

        // Capture is observational: extraction output is unchanged.
        assert_eq!(
            pipeline.extract_ingredient("2 cups flour"),
            loaded.extract_ingredient("2 cups flour")
        );

        // Plain artifact_bytes stays byte-identical (no drift section)
        // and reports no reference.
        let plain = artifact_bytes(&pipeline).expect("serialize");
        let plain_loaded = ArtifactPipeline::from_bytes(plain.into(), false).expect("load");
        assert_eq!(plain_loaded.drift_reference(), None);
    }

    #[test]
    fn drift_margin_buckets_are_total() {
        assert_eq!(drift_margin_bucket(-1.0), 0);
        assert_eq!(drift_margin_bucket(0.0), 0);
        assert_eq!(drift_margin_bucket(0.25), 0);
        assert_eq!(drift_margin_bucket(0.26), 1);
        assert_eq!(drift_margin_bucket(1e9), DRIFT_MARGIN_BOUNDS.len());
        assert!(DriftReference::decode(b"not json").is_none());
    }

    #[test]
    fn corrupted_bytes_are_rejected() {
        let (_corpus, pipeline) = trained();
        let bytes = artifact_bytes(&pipeline).expect("serialize");

        let mut truncated = bytes.clone();
        truncated.truncate(truncated.len() / 2);
        assert!(ArtifactPipeline::from_bytes(truncated.into(), false).is_err());

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(ArtifactPipeline::from_bytes(bad_magic.into(), false).is_err());

        // Payload corruption passes structural parse but fails the CRC pass.
        let art = Artifact::parse(bytes.clone().into()).expect("parse");
        let weights = art
            .section(KIND_INGREDIENT_NER + recipe_ner::artifact::section::WEIGHTS)
            .expect("weights section");
        let mut bad_payload = bytes;
        bad_payload[weights.start] ^= 0xff;
        let loaded =
            ArtifactPipeline::from_bytes(bad_payload.into(), false).expect("structural ok");
        assert!(loaded.verify_crc().is_err());
    }
}
