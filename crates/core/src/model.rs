//! The uniform recipe data structure (Fig. 1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One ingredient with its extracted attributes (Table II). Every field
/// except `name` is optional — most phrases fill only a subset, exactly as
/// in Table I of the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngredientEntry {
    /// Ingredient name (normalized, possibly multi-word): `puff pastry`.
    pub name: String,
    /// Processing state: `thawed`, `minced`.
    pub state: Option<String>,
    /// Quantity string as written: `1`, `1 1/2`, `2-3`.
    pub quantity: Option<String>,
    /// Measuring unit: `sheet`, `ounce`.
    pub unit: Option<String>,
    /// Temperature attribute: `frozen`, `room temperature`.
    pub temperature: Option<String>,
    /// Dry/fresh attribute: `fresh`, `dried`.
    pub dry_fresh: Option<String>,
    /// Portion size: `medium`, `large`.
    pub size: Option<String>,
}

impl IngredientEntry {
    /// A bare entry with only a name.
    pub fn named(name: impl Into<String>) -> Self {
        IngredientEntry {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Number of filled attribute slots (excluding the name).
    pub fn attribute_count(&self) -> usize {
        [
            &self.state,
            &self.quantity,
            &self.unit,
            &self.temperature,
            &self.dry_fresh,
            &self.size,
        ]
        .iter()
        .filter(|o| o.is_some())
        .count()
    }
}

impl fmt::Display for IngredientEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(q) = &self.quantity {
            write!(f, " [qty {q}")?;
            if let Some(u) = &self.unit {
                write!(f, " {u}")?;
            }
            write!(f, "]")?;
        } else if let Some(u) = &self.unit {
            write!(f, " [unit {u}]")?;
        }
        if let Some(s) = &self.state {
            write!(f, " [state {s}]")?;
        }
        if let Some(t) = &self.temperature {
            write!(f, " [temp {t}]")?;
        }
        if let Some(d) = &self.dry_fresh {
            write!(f, " [{d}]")?;
        }
        if let Some(s) = &self.size {
            write!(f, " [size {s}]")?;
        }
        Ok(())
    }
}

/// A many-to-many cooking event (§III.B): one cooking technique applied to
/// any number of ingredients and utensils at one instruction position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CookingEvent {
    /// The cooking technique / process (normalized verb): `fry`.
    pub process: String,
    /// Ingredient participants: `["potato", "olive oil"]`.
    pub ingredients: Vec<String>,
    /// Utensil participants: `["pan"]`.
    pub utensils: Vec<String>,
    /// Temporal position: index of the instruction step this event came
    /// from (events are ordered within a recipe).
    pub step: usize,
}

impl CookingEvent {
    /// Number of one-to-one relations this compound event models (the unit
    /// the paper's 6.164 ± 5.70 statistic counts).
    pub fn relation_count(&self) -> usize {
        self.ingredients.len() + self.utensils.len()
    }
}

impl fmt::Display for CookingEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} + [{}] + [{}]",
            self.process,
            self.ingredients.join(", "),
            self.utensils.join(", ")
        )
    }
}

/// The complete mined model of one recipe: Fig. 1's uniform structure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecipeModel {
    /// Source recipe id.
    pub id: u64,
    /// Source recipe title.
    pub title: String,
    /// Cuisine label (metadata carried through).
    pub cuisine: String,
    /// Structured ingredient section.
    pub ingredients: Vec<IngredientEntry>,
    /// Temporal sequence of cooking events mined from the instructions.
    pub events: Vec<CookingEvent>,
    /// Number of instruction steps the events were mined from.
    pub num_steps: usize,
}

impl RecipeModel {
    /// All distinct processes, in first-use order (the temporal sequence of
    /// techniques).
    pub fn process_sequence(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for e in &self.events {
            if !seen.contains(&e.process.as_str()) {
                seen.push(e.process.as_str());
            }
        }
        seen
    }

    /// All distinct utensils used.
    pub fn utensils(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for e in &self.events {
            for u in &e.utensils {
                if !seen.contains(&u.as_str()) {
                    seen.push(u.as_str());
                }
            }
        }
        seen
    }

    /// Total one-to-one relation count across events.
    pub fn total_relations(&self) -> usize {
        self.events.iter().map(|e| e.relation_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(process: &str, ings: &[&str], uts: &[&str], step: usize) -> CookingEvent {
        CookingEvent {
            process: process.to_string(),
            ingredients: ings.iter().map(|s| s.to_string()).collect(),
            utensils: uts.iter().map(|s| s.to_string()).collect(),
            step,
        }
    }

    #[test]
    fn entry_attribute_count() {
        let mut e = IngredientEntry::named("pepper");
        assert_eq!(e.attribute_count(), 0);
        e.quantity = Some("1/2".into());
        e.unit = Some("teaspoon".into());
        e.state = Some("ground".into());
        assert_eq!(e.attribute_count(), 3);
    }

    #[test]
    fn entry_display_is_compact() {
        let e = IngredientEntry {
            name: "puff pastry".into(),
            state: Some("thawed".into()),
            quantity: Some("1".into()),
            unit: Some("sheet".into()),
            temperature: Some("frozen".into()),
            dry_fresh: None,
            size: None,
        };
        let s = e.to_string();
        assert!(s.contains("puff pastry"));
        assert!(s.contains("qty 1 sheet"));
        assert!(s.contains("state thawed"));
        assert!(s.contains("temp frozen"));
    }

    #[test]
    fn event_relation_count_is_many_to_many() {
        let e = event("fry", &["potato", "olive oil"], &["pan"], 0);
        assert_eq!(e.relation_count(), 3);
        assert_eq!(e.to_string(), "fry + [potato, olive oil] + [pan]");
    }

    #[test]
    fn model_aggregations() {
        let m = RecipeModel {
            events: vec![
                event("boil", &["water"], &["pot"], 0),
                event("add", &["pasta"], &["pot"], 1),
                event("boil", &["pasta"], &[], 2),
            ],
            ..Default::default()
        };
        assert_eq!(m.process_sequence(), ["boil", "add"]);
        assert_eq!(m.utensils(), ["pot"]);
        assert_eq!(m.total_relations(), 5);
    }
}
