//! Relation extraction: from parsed instructions to many-to-many
//! [`CookingEvent`] tuples (§III.B, Figs. 3–5).
//!
//! For every instruction sentence:
//!
//! 1. POS-tag the raw tokens and dependency-parse them;
//! 2. NER-tag the tokens with the instruction model;
//! 3. for every verb the dictionaries confirm as a cooking process, collect
//!    its subjects / objects / prepositional objects ([`verb_frames`]);
//! 4. keep arguments the NER model confirmed as ingredients or (dictionary-
//!    confirmed) utensils;
//! 5. merge all of one verb instance's relations into a single compound
//!    many-to-many event — the paper's Fig. 5 step.

use crate::instructions::tag_instruction;
use crate::model::CookingEvent;
use crate::pipeline::TrainedPipeline;
use recipe_corpus::Recipe;
use recipe_ner::InstructionTag;
use recipe_parser::verb_frames;
use recipe_text::WordClass;
use serde::{Deserialize, Serialize};

/// Summary statistics over relations-per-instruction (the paper's
/// conclusion reports mean 6.164, σ 5.70 over 174 932 steps).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RelationStats {
    /// Number of instruction steps measured.
    pub instructions: usize,
    /// Total one-to-one relations before merging.
    pub relations: usize,
    /// Mean relations per instruction.
    pub mean: f64,
    /// Standard deviation of relations per instruction.
    pub std_dev: f64,
}

impl RelationStats {
    /// Compute from a per-instruction relation-count series.
    pub fn from_counts(counts: &[usize]) -> Self {
        let n = counts.len();
        if n == 0 {
            return RelationStats::default();
        }
        let total: usize = counts.iter().sum();
        let mean = total as f64 / n as f64;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        RelationStats {
            instructions: n,
            relations: total,
            mean,
            std_dev: var.sqrt(),
        }
    }
}

/// Extract the event tuples for one instruction sentence given its raw
/// tokens, through the compiled POS/NER models and the sentence-level
/// event cache. `step` is the temporal index recorded on each event.
/// Byte-identical to [`extract_sentence_events_reference`].
pub fn extract_sentence_events(
    pipeline: &TrainedPipeline,
    words: &[String],
    step: usize,
) -> Vec<CookingEvent> {
    let _span = recipe_obs::span!("events.sentence");
    if words.is_empty() {
        return Vec::new();
    }
    pipeline.inference.events_for_sentence(words, step, || {
        let pos = pipeline.inference.pos_tag(words);
        let ner = pipeline.inference.tag_instruction(words);
        events_from_analysis(pipeline, words, &pos, &ner, step)
    })
}

/// Reference extraction path: uncompiled models, no cache. The compiled
/// path is verified byte-identical against this (tests, lint rule RA208,
/// and the inference benches' speedup baseline).
pub fn extract_sentence_events_reference(
    pipeline: &TrainedPipeline,
    words: &[String],
    step: usize,
) -> Vec<CookingEvent> {
    let _span = recipe_obs::span!("events.sentence.reference");
    if words.is_empty() {
        return Vec::new();
    }
    let pos = pipeline.pos.tag(words);
    let ner = tag_instruction(&pipeline.instruction_ner, words);
    events_from_analysis(pipeline, words, &pos, &ner, step)
}

/// Shared second half of sentence-event extraction: parse, collect verb
/// frames, apply the dictionary/NER process filter, and merge each verb
/// instance's relations into one compound event (Fig. 5).
fn events_from_analysis(
    pipeline: &TrainedPipeline,
    words: &[String],
    pos: &[recipe_tagger::PennTag],
    ner: &[InstructionTag],
    step: usize,
) -> Vec<CookingEvent> {
    let tree = pipeline.parser.parse(words, pos);
    let frames = verb_frames(&tree, pos);

    let lemma_verb = |w: &str| {
        pipeline
            .pre
            .lemmatizer()
            .lemmatize(&w.to_lowercase(), WordClass::Verb)
    };
    let lemma_noun = |w: &str| pipeline.pre.normalize_word(w);

    let mut events = Vec::new();
    for frame in frames {
        let verb = lemma_verb(&words[frame.verb]);
        // The dictionary filter from §III.B: only verbs confirmed as
        // cooking processes yield events. The NER tag is accepted as a
        // second signal so dictionary gaps degrade gracefully.
        let in_dict = pipeline.dicts.is_process(&verb);
        let is_process = in_dict || ner[frame.verb] == InstructionTag::Process;
        if recipe_obs::provenance::enabled() {
            recipe_obs::provenance::record(recipe_obs::provenance::Record {
                kind: "dict.decision",
                site: "dicts.process",
                subject: verb.clone(),
                decision: if is_process { "accept" } else { "reject" }.to_string(),
                detail: if in_dict {
                    "dictionary"
                } else if is_process {
                    "ner"
                } else {
                    "none"
                }
                .to_string(),
                index: frame.verb,
                margin: None,
            });
        }
        if !is_process {
            continue;
        }
        let mut ingredients = Vec::new();
        let mut utensils = Vec::new();
        for arg in frame.all_arguments() {
            match ner[arg] {
                InstructionTag::Ingredient => {
                    let name = expand_name(words, ner, arg, &lemma_noun);
                    if !ingredients.contains(&name) {
                        ingredients.push(name);
                    }
                }
                InstructionTag::Utensil => {
                    let name = lemma_noun(&words[arg]);
                    let accepted = pipeline.dicts.is_utensil(&name);
                    if recipe_obs::provenance::enabled() {
                        recipe_obs::provenance::record(recipe_obs::provenance::Record {
                            kind: "dict.decision",
                            site: "dicts.utensil",
                            subject: name.clone(),
                            decision: if accepted { "accept" } else { "reject" }.to_string(),
                            detail: "dictionary".to_string(),
                            index: arg,
                            margin: None,
                        });
                    }
                    if accepted && !utensils.contains(&name) {
                        utensils.push(name);
                    }
                }
                _ => {}
            }
        }
        if ingredients.is_empty() && utensils.is_empty() {
            continue;
        }
        events.push(CookingEvent {
            process: verb,
            ingredients,
            utensils,
            step,
        });
    }
    events
}

/// Expand a head argument token leftward over contiguous INGREDIENT tokens
/// so multi-word names (`olive oil`) surface whole.
fn expand_name(
    words: &[String],
    ner: &[InstructionTag],
    head: usize,
    lemma: &impl Fn(&str) -> String,
) -> String {
    let mut start = head;
    while start > 0 && ner[start - 1] == InstructionTag::Ingredient {
        start -= 1;
    }
    let parts: Vec<String> = (start..=head).map(|i| lemma(&words[i])).collect();
    parts.join(" ")
}

/// Extract the full temporal event sequence of one recipe. Events carry
/// the index of the instruction *step* (paragraph) they came from.
pub fn extract_recipe_events(pipeline: &TrainedPipeline, recipe: &Recipe) -> Vec<CookingEvent> {
    let _span = recipe_obs::span!("events.recipe");
    let mut events = Vec::new();
    for (step, sentences) in recipe.steps().iter().enumerate() {
        for sent in sentences {
            events.extend(extract_sentence_events(pipeline, &sent.words(), step));
        }
    }
    events
}

/// Reference (uncompiled, uncached) counterpart of
/// [`extract_recipe_events`]; byte-identical output.
pub fn extract_recipe_events_reference(
    pipeline: &TrainedPipeline,
    recipe: &Recipe,
) -> Vec<CookingEvent> {
    let _span = recipe_obs::span!("events.recipe.reference");
    let mut events = Vec::new();
    for (step, sentences) in recipe.steps().iter().enumerate() {
        for sent in sentences {
            events.extend(extract_sentence_events_reference(
                pipeline,
                &sent.words(),
                step,
            ));
        }
    }
    events
}

/// Relation statistics over a set of recipes (conclusion-section metric).
/// The counting unit is the instruction *step*, as in the paper's 174 932
/// steps over 40 000 recipes.
pub fn relation_stats<'a>(
    pipeline: &TrainedPipeline,
    recipes: impl Iterator<Item = &'a Recipe>,
) -> RelationStats {
    let mut counts = Vec::new();
    for recipe in recipes {
        for (step, sentences) in recipe.steps().iter().enumerate() {
            let step_relations: usize = sentences
                .iter()
                .map(|sent| {
                    extract_sentence_events(pipeline, &sent.words(), step)
                        .iter()
                        .map(|e| e.relation_count())
                        .sum::<usize>()
                })
                .sum();
            counts.push(step_relations);
        }
    }
    RelationStats::from_counts(&counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{PipelineConfig, TrainedPipeline};
    use recipe_corpus::{CorpusSpec, RecipeCorpus};

    fn pipeline() -> (RecipeCorpus, TrainedPipeline) {
        let corpus = RecipeCorpus::generate(&CorpusSpec::tiny(21));
        (
            corpus.clone(),
            TrainedPipeline::train(&corpus, &PipelineConfig::fast()),
        )
    }

    #[test]
    fn stats_from_counts() {
        let s = RelationStats::from_counts(&[2, 4, 6]);
        assert_eq!(s.instructions, 3);
        assert_eq!(s.relations, 12);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std_dev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(RelationStats::from_counts(&[]).instructions, 0);
    }

    #[test]
    fn events_extracted_from_corpus_sentences() {
        let (corpus, p) = pipeline();
        let mut total_events = 0usize;
        for r in corpus.recipes.iter().take(20) {
            let events = extract_recipe_events(&p, r);
            total_events += events.len();
            for e in &events {
                assert!(!e.process.is_empty());
                assert!(e.relation_count() >= 1);
                assert!(e.step < r.instructions.len());
            }
        }
        assert!(total_events > 10, "only {total_events} events");
    }

    #[test]
    fn events_are_many_to_many() {
        let (corpus, p) = pipeline();
        let mut max_arity = 0usize;
        for r in corpus.recipes.iter().take(60) {
            for e in extract_recipe_events(&p, r) {
                max_arity = max_arity.max(e.relation_count());
            }
        }
        assert!(
            max_arity >= 3,
            "expected compound events, max arity {max_arity}"
        );
    }

    #[test]
    fn relation_stats_have_spread() {
        let (corpus, p) = pipeline();
        let stats = relation_stats(&p, corpus.recipes.iter().take(60));
        assert!(stats.instructions > 50);
        assert!(stats.mean > 0.5, "mean {}", stats.mean);
        assert!(stats.std_dev > 0.5, "std {}", stats.std_dev);
    }

    #[test]
    fn empty_sentence_yields_no_events() {
        let (_, p) = pipeline();
        assert!(extract_sentence_events(&p, &[], 0).is_empty());
    }
}
