//! Persistence: save and load trained pipelines as JSON.
//!
//! Training the full pipeline takes seconds to minutes depending on corpus
//! scale; downstream applications (nutrition services, similarity search)
//! want to train once and ship the artifact. The preprocessor is rebuilt
//! from its embedded tables on load, so the artifact contains only learned
//! parameters.

use crate::instructions::Dictionaries;
use crate::pipeline::TrainedPipeline;
use recipe_ner::SequenceModel;
use recipe_parser::DependencyParser;
use recipe_tagger::PosTagger;
use recipe_text::Preprocessor;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Serializable snapshot of every learned component.
#[derive(Serialize, Deserialize)]
pub struct PipelineArtifact {
    /// Artifact format version; bumped on breaking changes.
    pub version: u32,
    pos: PosTagger,
    ingredient_ner: SequenceModel,
    instruction_ner: SequenceModel,
    parser: DependencyParser,
    dicts: Dictionaries,
}

/// Current artifact format version.
pub const ARTIFACT_VERSION: u32 = 1;

/// Errors from saving/loading pipelines.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
    /// The artifact was written by an incompatible version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "serialization error: {e}"),
            PersistError::VersionMismatch { found, expected } => {
                write!(f, "artifact version {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

impl TrainedPipeline {
    /// Snapshot the learned components (drops training-time bookkeeping
    /// such as the per-site datasets).
    pub fn to_artifact(self) -> PipelineArtifact {
        PipelineArtifact {
            version: ARTIFACT_VERSION,
            pos: self.pos,
            ingredient_ner: self.ingredient_ner,
            instruction_ner: self.instruction_ner,
            parser: self.parser,
            dicts: self.dicts,
        }
    }

    /// Rebuild a pipeline from a snapshot.
    pub fn from_artifact(artifact: PipelineArtifact) -> Result<Self, PersistError> {
        if artifact.version != ARTIFACT_VERSION {
            return Err(PersistError::VersionMismatch {
                found: artifact.version,
                expected: ARTIFACT_VERSION,
            });
        }
        let inference = crate::infer::Inference::compile(
            &artifact.pos,
            &artifact.ingredient_ner,
            &artifact.instruction_ner,
        );
        Ok(TrainedPipeline {
            pre: Preprocessor::default(),
            pos: artifact.pos,
            ingredient_ner: artifact.ingredient_ner,
            instruction_ner: artifact.instruction_ner,
            parser: artifact.parser,
            dicts: artifact.dicts,
            site_datasets: Vec::new(),
            inference,
        })
    }

    /// Serialize the pipeline's artifact snapshot to a JSON string
    /// (consumes `self` like [`TrainedPipeline::save`]). The rendering is
    /// deterministic — map keys are sorted — so equal models produce
    /// byte-equal strings; this is the hook for the determinism audits.
    pub fn to_json_string(self) -> Result<String, PersistError> {
        Ok(serde_json::to_string(&self.to_artifact())?)
    }

    /// Save the pipeline to a JSON file.
    pub fn save(self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let file = File::create(path)?;
        serde_json::to_writer(BufWriter::new(file), &self.to_artifact())?;
        Ok(())
    }

    /// Load a pipeline from a JSON file written by [`TrainedPipeline::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let file = File::open(path)?;
        let artifact: PipelineArtifact = serde_json::from_reader(BufReader::new(file))?;
        Self::from_artifact(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use recipe_corpus::{CorpusSpec, RecipeCorpus};

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let corpus = RecipeCorpus::generate(&CorpusSpec::tiny(77));
        let pipeline = TrainedPipeline::train(&corpus, &PipelineConfig::fast());

        let phrases = [
            "2 cups flour",
            "1 sheet frozen puff pastry ( thawed )",
            "2-3 medium tomatoes , finely chopped",
        ];
        let before: Vec<_> = phrases
            .iter()
            .map(|p| pipeline.extract_ingredient(p))
            .collect();
        let model_before = pipeline.model_recipe(&corpus.recipes[0]);

        let dir = std::env::temp_dir().join("recipe_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.json");
        pipeline.save(&path).unwrap();

        let loaded = TrainedPipeline::load(&path).unwrap();
        let after: Vec<_> = phrases
            .iter()
            .map(|p| loaded.extract_ingredient(p))
            .collect();
        assert_eq!(before, after);
        let model_after = loaded.model_recipe(&corpus.recipes[0]);
        assert_eq!(model_before.ingredients, model_after.ingredients);
        assert_eq!(model_before.events, model_after.events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let corpus = RecipeCorpus::generate(&CorpusSpec::tiny(78));
        let pipeline = TrainedPipeline::train(&corpus, &PipelineConfig::fast());
        let mut artifact = pipeline.to_artifact();
        artifact.version = 999;
        match TrainedPipeline::from_artifact(artifact) {
            Err(PersistError::VersionMismatch {
                found: 999,
                expected,
            }) => {
                assert_eq!(expected, ARTIFACT_VERSION);
            }
            other => panic!("expected version mismatch, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn load_missing_file_is_io_error() {
        match TrainedPipeline::load("/nonexistent/path/pipeline.json") {
            Err(PersistError::Io(_)) => {}
            _ => panic!("expected io error"),
        }
    }
}
