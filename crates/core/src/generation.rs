//! Novel-recipe generation over mined structures (§IV lists "generation of
//! novel recipes" among the model's applications).
//!
//! A [`GenerationModel`] is fitted on a collection of mined
//! [`RecipeModel`]s and captures:
//!
//! * a first-order Markov chain over cooking-technique sequences (with
//!   virtual START/END states) — the temporal grammar of cooking;
//! * ingredient co-occurrence counts — which ingredients belong together;
//! * per-process utensil preferences — `bake` pairs with `oven`, `fry`
//!   with `skillet`.
//!
//! Generation samples a process chain from the Markov model, grows an
//! ingredient set by co-occurrence affinity, and assigns participants to
//! each step — producing a structurally valid, novel [`RecipeModel`].

use crate::model::{CookingEvent, IngredientEntry, RecipeModel};
use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Virtual chain states.
const START: &str = "<START>";
const END: &str = "<END>";

/// Co-occurrence and sequence statistics mined from recipes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GenerationModel {
    /// `transitions[prev][next]` counts over process sequences.
    transitions: HashMap<String, HashMap<String, usize>>,
    /// Pairwise ingredient co-occurrence counts (keys sorted).
    cooccurrence: HashMap<(String, String), usize>,
    /// Ingredient frequency.
    ingredient_counts: HashMap<String, usize>,
    /// `utensil_for[process][utensil]` counts.
    utensil_for: HashMap<String, HashMap<String, usize>>,
    /// Recipes fitted.
    pub recipes_seen: usize,
}

/// Configuration for sampling one recipe.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GenerationConfig {
    /// Target number of ingredients.
    pub ingredients: usize,
    /// Maximum process-chain length (safety bound).
    pub max_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        GenerationConfig {
            ingredients: 6,
            max_steps: 12,
            seed: 42,
        }
    }
}

fn pair_key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

/// Weighted sample from a count map; `None` on empty. Items are sorted by
/// key first — `HashMap` iteration order varies per instance, and sampling
/// must be deterministic in the seed.
fn weighted_sample<'a>(
    rng: &mut StdRng,
    counts: impl Iterator<Item = (&'a String, &'a usize)>,
) -> Option<String> {
    let mut items: Vec<(&String, usize)> = counts.map(|(k, &v)| (k, v)).collect();
    items.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let total: usize = items.iter().map(|(_, v)| v).sum();
    if total == 0 {
        return None;
    }
    let mut target = rng.random_range(0..total);
    for (k, v) in items {
        if target < v {
            return Some(k.clone());
        }
        target -= v;
    }
    None
}

impl GenerationModel {
    /// Fit the statistics on mined recipe models.
    pub fn fit(models: &[RecipeModel]) -> Self {
        let mut gm = GenerationModel::default();
        for model in models {
            gm.recipes_seen += 1;
            // Process chain (first occurrence order).
            let chain = model.process_sequence();
            let mut prev = START.to_string();
            for p in &chain {
                *gm.transitions
                    .entry(prev.clone())
                    .or_default()
                    .entry(p.to_string())
                    .or_insert(0) += 1;
                prev = p.to_string();
            }
            if !chain.is_empty() {
                *gm.transitions
                    .entry(prev)
                    .or_default()
                    .entry(END.to_string())
                    .or_insert(0) += 1;
            }
            // Ingredient pool and co-occurrence.
            let names: Vec<&str> = model
                .ingredients
                .iter()
                .map(|e| e.name.as_str())
                .filter(|n| !n.is_empty())
                .collect();
            for (i, a) in names.iter().enumerate() {
                *gm.ingredient_counts.entry(a.to_string()).or_insert(0) += 1;
                for b in &names[i + 1..] {
                    *gm.cooccurrence.entry(pair_key(a, b)).or_insert(0) += 1;
                }
            }
            // Utensil preferences.
            for e in &model.events {
                for u in &e.utensils {
                    *gm.utensil_for
                        .entry(e.process.clone())
                        .or_default()
                        .entry(u.clone())
                        .or_insert(0) += 1;
                }
            }
        }
        gm
    }

    /// Number of distinct processes observed.
    pub fn num_processes(&self) -> usize {
        self.transitions
            .keys()
            .filter(|k| k.as_str() != START)
            .count()
    }

    /// Number of distinct ingredients observed.
    pub fn num_ingredients(&self) -> usize {
        self.ingredient_counts.len()
    }

    /// Was `next` ever observed following `prev`? (Test hook: generated
    /// chains must only use observed transitions.)
    pub fn observed_transition(&self, prev: &str, next: &str) -> bool {
        self.transitions
            .get(prev)
            .is_some_and(|m| m.contains_key(next))
    }

    /// Sample a novel recipe. Returns `None` when the model is empty.
    pub fn generate(&self, cfg: &GenerationConfig) -> Option<RecipeModel> {
        if self.recipes_seen == 0 || self.ingredient_counts.is_empty() {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // 1. Ingredient set: seed with a frequent ingredient, then grow by
        //    co-occurrence affinity.
        let mut chosen: Vec<String> = Vec::new();
        let first = weighted_sample(&mut rng, self.ingredient_counts.iter())?;
        chosen.push(first);
        while chosen.len() < cfg.ingredients.min(self.ingredient_counts.len()) {
            // Score candidates by total co-occurrence with chosen set.
            let mut scores: BTreeMap<String, usize> = BTreeMap::new();
            for (pair, &c) in &self.cooccurrence {
                let (a, b) = pair;
                if chosen.contains(a) && !chosen.contains(b) {
                    *scores.entry(b.clone()).or_insert(0) += c;
                }
                if chosen.contains(b) && !chosen.contains(a) {
                    *scores.entry(a.clone()).or_insert(0) += c;
                }
            }
            let next = if scores.is_empty() {
                // Fall back to global frequency among unchosen.
                let remaining: BTreeMap<String, usize> = self
                    .ingredient_counts
                    .iter()
                    .filter(|(k, _)| !chosen.contains(k))
                    .map(|(k, &v)| (k.clone(), v))
                    .collect();
                weighted_sample(&mut rng, remaining.iter())
            } else {
                weighted_sample(&mut rng, scores.iter())
            };
            match next {
                Some(n) => chosen.push(n),
                None => break,
            }
        }

        // 2. Process chain from the Markov model.
        let mut chain: Vec<String> = Vec::new();
        let mut state = START.to_string();
        for _ in 0..cfg.max_steps {
            let Some(next_map) = self.transitions.get(&state) else {
                break;
            };
            let Some(next) = weighted_sample(&mut rng, next_map.iter()) else {
                break;
            };
            if next == END {
                break;
            }
            state = next.clone();
            chain.push(next);
        }
        if chain.is_empty() {
            return None;
        }

        // 3. Assign participants: each step takes 1-3 ingredients (cycling
        //    so all get used) plus the process's preferred utensil.
        let mut events = Vec::with_capacity(chain.len());
        let mut cursor = 0usize;
        for (step, process) in chain.iter().enumerate() {
            let take = 1 + rng
                .random_range(0..3usize)
                .min(chosen.len().saturating_sub(1));
            let mut ingredients = Vec::with_capacity(take);
            for _ in 0..take {
                ingredients.push(chosen[cursor % chosen.len()].clone());
                cursor += 1;
            }
            ingredients.dedup();
            let utensils = self
                .utensil_for
                .get(process)
                .and_then(|m| weighted_sample(&mut rng, m.iter()))
                .into_iter()
                .collect();
            events.push(CookingEvent {
                process: process.clone(),
                ingredients,
                utensils,
                step,
            });
        }

        Some(RecipeModel {
            id: u64::MAX, // synthetic marker id
            title: format!("novel {} recipe", chosen[0]),
            cuisine: "fusion".to_string(),
            ingredients: chosen.into_iter().map(IngredientEntry::named).collect(),
            events,
            num_steps: chain.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mined_models() -> Vec<RecipeModel> {
        let mk = |id: u64, names: &[&str], procs: &[(&str, &str)]| RecipeModel {
            id,
            ingredients: names.iter().map(|n| IngredientEntry::named(*n)).collect(),
            events: procs
                .iter()
                .enumerate()
                .map(|(i, (p, u))| CookingEvent {
                    process: p.to_string(),
                    ingredients: vec![names[i % names.len()].to_string()],
                    utensils: vec![u.to_string()],
                    step: i,
                })
                .collect(),
            num_steps: procs.len(),
            ..Default::default()
        };
        vec![
            mk(
                1,
                &["flour", "egg", "milk"],
                &[("mix", "bowl"), ("bake", "oven")],
            ),
            mk(
                2,
                &["flour", "sugar", "butter"],
                &[("mix", "bowl"), ("bake", "oven")],
            ),
            mk(3, &["egg", "milk"], &[("whisk", "bowl"), ("fry", "pan")]),
            mk(4, &["potato", "oil"], &[("chop", "board"), ("fry", "pan")]),
        ]
    }

    #[test]
    fn fit_collects_statistics() {
        let gm = GenerationModel::fit(&mined_models());
        assert_eq!(gm.recipes_seen, 4);
        assert!(gm.num_processes() >= 5);
        assert_eq!(gm.num_ingredients(), 7);
        assert!(gm.observed_transition("mix", "bake"));
        assert!(gm.observed_transition(START, "mix"));
        assert!(!gm.observed_transition("bake", "mix"));
    }

    #[test]
    fn generated_recipes_are_structurally_valid() {
        let gm = GenerationModel::fit(&mined_models());
        let cfg = GenerationConfig {
            ingredients: 4,
            max_steps: 8,
            seed: 3,
        };
        let recipe = gm.generate(&cfg).expect("generation succeeds");
        assert!(!recipe.ingredients.is_empty());
        assert!(recipe.ingredients.len() <= 4);
        assert!(!recipe.events.is_empty());
        for (i, e) in recipe.events.iter().enumerate() {
            assert_eq!(e.step, i);
            assert!(!e.ingredients.is_empty() || !e.utensils.is_empty());
        }
    }

    #[test]
    fn chains_only_use_observed_transitions() {
        let gm = GenerationModel::fit(&mined_models());
        for seed in 0..20 {
            let cfg = GenerationConfig {
                seed,
                ..Default::default()
            };
            if let Some(recipe) = gm.generate(&cfg) {
                let chain = recipe.process_sequence();
                if let Some(first) = chain.first() {
                    assert!(gm.observed_transition(START, first), "bad start {first}");
                }
                for w in chain.windows(2) {
                    assert!(gm.observed_transition(w[0], w[1]), "bad edge {w:?}");
                }
            }
        }
    }

    #[test]
    fn ingredient_sets_respect_cooccurrence() {
        // "flour" co-occurs with egg/milk/sugar/butter but never potato/oil.
        let gm = GenerationModel::fit(&mined_models());
        let mut saw_flour_set = false;
        for seed in 0..30 {
            let cfg = GenerationConfig {
                ingredients: 3,
                max_steps: 6,
                seed,
            };
            if let Some(r) = gm.generate(&cfg) {
                let names: Vec<&str> = r.ingredients.iter().map(|e| e.name.as_str()).collect();
                // Condition on flour being the *seed* ingredient (first
                // chosen): growth then proceeds purely by co-occurrence,
                // and potato/oil never co-occur with the flour clique.
                if names.first() == Some(&"flour") && names.len() == 3 {
                    saw_flour_set = true;
                    assert!(
                        !names.contains(&"potato") && !names.contains(&"oil"),
                        "{names:?}"
                    );
                }
            }
        }
        assert!(saw_flour_set, "never sampled a flour-based recipe");
    }

    #[test]
    fn empty_model_generates_nothing() {
        let gm = GenerationModel::fit(&[]);
        assert!(gm.generate(&GenerationConfig::default()).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let gm = GenerationModel::fit(&mined_models());
        let cfg = GenerationConfig {
            seed: 9,
            ..Default::default()
        };
        let a = gm.generate(&cfg).unwrap();
        let b = gm.generate(&cfg).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.ingredients, b.ingredients);
    }
}
