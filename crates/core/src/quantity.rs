//! Parsing quantity strings into numeric ranges.
//!
//! The `QUANTITY` entity keeps the surface form (`1 1/2`, `2-3`); numeric
//! applications (nutrition estimation) need a value. A quantity parses to
//! a closed interval — a point value when exact.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed quantity: a closed numeric interval `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantity {
    /// Lower bound.
    pub min: f64,
    /// Upper bound (equal to `min` for exact quantities).
    pub max: f64,
}

impl Quantity {
    /// An exact quantity.
    pub fn exact(v: f64) -> Self {
        Quantity { min: v, max: v }
    }

    /// Interval midpoint — the value numeric applications use.
    pub fn midpoint(&self) -> f64 {
        (self.min + self.max) / 2.0
    }

    /// Is this a range rather than a point?
    pub fn is_range(&self) -> bool {
        self.min != self.max
    }

    /// Parse a quantity surface string. Accepts integers (`2`), decimals
    /// (`1.5`), fractions (`3/4`), mixed numbers (`1 1/2`) and ranges
    /// (`2-3`). Returns `None` for anything else.
    ///
    /// ```
    /// use recipe_core::Quantity;
    /// assert_eq!(Quantity::parse("1 1/2").unwrap().midpoint(), 1.5);
    /// assert_eq!(Quantity::parse("2-4").unwrap().midpoint(), 3.0);
    /// assert!(Quantity::parse("some").is_none());
    /// ```
    pub fn parse(s: &str) -> Option<Quantity> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        // Range: a-b where both halves parse as simple numbers.
        if let Some((a, b)) = s.split_once('-') {
            if let (Some(x), Some(y)) = (parse_simple(a), parse_simple(b)) {
                if x <= y {
                    return Some(Quantity { min: x, max: y });
                }
                return None;
            }
        }
        // Mixed number: "1 1/2".
        if let Some((whole, frac)) = s.split_once(' ') {
            if let (Some(w), Some(f)) = (parse_simple(whole), parse_fraction(frac)) {
                return Some(Quantity::exact(w + f));
            }
        }
        parse_simple(s).map(Quantity::exact)
    }
}

/// Integer, decimal or fraction.
fn parse_simple(s: &str) -> Option<f64> {
    let s = s.trim();
    if let Some(f) = parse_fraction(s) {
        return Some(f);
    }
    let v: f64 = s.parse().ok()?;
    if v.is_finite() && v >= 0.0 {
        Some(v)
    } else {
        None
    }
}

fn parse_fraction(s: &str) -> Option<f64> {
    let (num, den) = s.split_once('/')?;
    let n: f64 = num.trim().parse().ok()?;
    let d: f64 = den.trim().parse().ok()?;
    if d > 0.0 && n >= 0.0 {
        Some(n / d)
    } else {
        None
    }
}

impl fmt::Display for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_range() {
            write!(f, "{}-{}", self.min, self.max)
        } else {
            write!(f, "{}", self.min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_and_decimals() {
        assert_eq!(Quantity::parse("2"), Some(Quantity::exact(2.0)));
        assert_eq!(Quantity::parse("1.5"), Some(Quantity::exact(1.5)));
        assert_eq!(Quantity::parse(" 12 "), Some(Quantity::exact(12.0)));
    }

    #[test]
    fn fractions() {
        assert_eq!(Quantity::parse("1/2"), Some(Quantity::exact(0.5)));
        assert_eq!(Quantity::parse("3/4"), Some(Quantity::exact(0.75)));
    }

    #[test]
    fn mixed_numbers() {
        assert_eq!(Quantity::parse("1 1/2"), Some(Quantity::exact(1.5)));
        assert_eq!(Quantity::parse("2 3/4"), Some(Quantity::exact(2.75)));
    }

    #[test]
    fn ranges() {
        let q = Quantity::parse("2-3").unwrap();
        assert!(q.is_range());
        assert_eq!(q.midpoint(), 2.5);
        // Fraction ranges.
        assert_eq!(Quantity::parse("1/2-1").unwrap().midpoint(), 0.75);
    }

    #[test]
    fn rejects_garbage() {
        for s in ["", "some", "a-b", "3-2", "1/0", "-4", "1//2"] {
            assert!(Quantity::parse(s).is_none(), "{s:?} should not parse");
        }
    }

    #[test]
    fn display_round_trips_shape() {
        assert_eq!(Quantity::parse("2-3").unwrap().to_string(), "2-3");
        assert_eq!(Quantity::exact(2.0).to_string(), "2");
    }
}
