//! Knowledge-graph export of mined recipes (§I cites Knowledge Graphs /
//! Thought Graphs as the downstream consumers of the event tuples).
//!
//! A [`RecipeModel`] becomes a directed graph:
//!
//! * one node per event (the cooking technique at a temporal position);
//! * one node per distinct ingredient / utensil;
//! * participation edges event → participant;
//! * temporal edges event → next event (the narrative chain).
//!
//! [`to_dot`] renders Graphviz DOT; [`RecipeGraph`] is the programmatic
//! form for downstream traversal.

use crate::model::RecipeModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Node kinds in the recipe graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeKind {
    /// A cooking event (technique instance).
    Event,
    /// An ingredient entity.
    Ingredient,
    /// A utensil entity.
    Utensil,
}

/// A node: kind plus display label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Node kind.
    pub kind: NodeKind,
    /// Display label (`fry@2`, `olive oil`, `pan`).
    pub label: String,
}

/// Edge kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Event uses an ingredient.
    UsesIngredient,
    /// Event uses a utensil.
    UsesUtensil,
    /// Temporal successor (event chain).
    Next,
}

/// The programmatic recipe graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecipeGraph {
    /// Nodes, indexed by the ids used in `edges`.
    pub nodes: Vec<Node>,
    /// `(from, to, kind)` edges over node indices.
    pub edges: Vec<(usize, usize, EdgeKind)>,
}

impl RecipeGraph {
    /// Build the graph of a mined recipe.
    pub fn from_model(model: &RecipeModel) -> Self {
        let mut g = RecipeGraph::default();
        let mut entity_ids: BTreeMap<(NodeKind, String), usize> = BTreeMap::new();
        let mut entity = |g: &mut RecipeGraph, kind: NodeKind, label: &str| -> usize {
            *entity_ids
                .entry((kind, label.to_string()))
                .or_insert_with(|| {
                    g.nodes.push(Node {
                        kind,
                        label: label.to_string(),
                    });
                    g.nodes.len() - 1
                })
        };
        let mut prev_event: Option<usize> = None;
        for (i, e) in model.events.iter().enumerate() {
            g.nodes.push(Node {
                kind: NodeKind::Event,
                label: format!("{}@{}", e.process, i + 1),
            });
            let ev = g.nodes.len() - 1;
            if let Some(p) = prev_event {
                g.edges.push((p, ev, EdgeKind::Next));
            }
            prev_event = Some(ev);
            for ing in &e.ingredients {
                let n = entity(&mut g, NodeKind::Ingredient, ing);
                g.edges.push((ev, n, EdgeKind::UsesIngredient));
            }
            for ut in &e.utensils {
                let n = entity(&mut g, NodeKind::Utensil, ut);
                g.edges.push((ev, n, EdgeKind::UsesUtensil));
            }
        }
        g
    }

    /// Count nodes of a kind.
    pub fn count(&self, kind: NodeKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }
}

fn escape(label: &str) -> String {
    label.replace('"', "\\\"")
}

/// Render a mined recipe as Graphviz DOT.
pub fn to_dot(model: &RecipeModel) -> String {
    let g = RecipeGraph::from_model(model);
    let mut out = String::new();
    let _ = writeln!(out, "digraph recipe {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  label=\"{}\";", escape(&model.title));
    for (i, node) in g.nodes.iter().enumerate() {
        let (shape, color) = match node.kind {
            NodeKind::Event => ("box", "#4e79a7"),
            NodeKind::Ingredient => ("ellipse", "#59a14f"),
            NodeKind::Utensil => ("diamond", "#f28e2b"),
        };
        let _ = writeln!(
            out,
            "  n{i} [label=\"{}\", shape={shape}, color=\"{color}\"];",
            escape(&node.label)
        );
    }
    for &(from, to, kind) in &g.edges {
        let style = match kind {
            EdgeKind::Next => " [style=bold]",
            EdgeKind::UsesIngredient => "",
            EdgeKind::UsesUtensil => " [style=dashed]",
        };
        let _ = writeln!(out, "  n{from} -> n{to}{style};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CookingEvent;

    fn model() -> RecipeModel {
        RecipeModel {
            title: "test".into(),
            events: vec![
                CookingEvent {
                    process: "boil".into(),
                    ingredients: vec!["water".into()],
                    utensils: vec!["pot".into()],
                    step: 0,
                },
                CookingEvent {
                    process: "add".into(),
                    ingredients: vec!["pasta".into(), "water".into()],
                    utensils: vec![],
                    step: 1,
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn graph_shares_entity_nodes() {
        let g = RecipeGraph::from_model(&model());
        // 2 events + 2 distinct ingredients (water shared) + 1 utensil.
        assert_eq!(g.count(NodeKind::Event), 2);
        assert_eq!(g.count(NodeKind::Ingredient), 2);
        assert_eq!(g.count(NodeKind::Utensil), 1);
        // water participates in both events.
        let water = g
            .nodes
            .iter()
            .position(|n| n.label == "water")
            .expect("water node");
        let uses: usize = g
            .edges
            .iter()
            .filter(|&&(_, to, k)| to == water && k == EdgeKind::UsesIngredient)
            .count();
        assert_eq!(uses, 2);
    }

    #[test]
    fn temporal_chain_links_events_in_order() {
        let g = RecipeGraph::from_model(&model());
        let nexts: Vec<_> = g
            .edges
            .iter()
            .filter(|&&(_, _, k)| k == EdgeKind::Next)
            .collect();
        assert_eq!(nexts.len(), 1);
        let &&(from, to, _) = nexts.first().unwrap();
        assert!(g.nodes[from].label.starts_with("boil"));
        assert!(g.nodes[to].label.starts_with("add"));
    }

    #[test]
    fn dot_output_is_syntactically_plausible() {
        let dot = to_dot(&model());
        assert!(dot.starts_with("digraph recipe {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("boil@1"));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("->"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn labels_with_quotes_are_escaped() {
        let mut m = model();
        m.title = "the \"best\" soup".into();
        let dot = to_dot(&m);
        assert!(dot.contains("the \\\"best\\\" soup"));
    }

    #[test]
    fn empty_model_yields_empty_graph() {
        let g = RecipeGraph::from_model(&RecipeModel::default());
        assert!(g.nodes.is_empty());
        assert!(g.edges.is_empty());
        assert!(to_dot(&RecipeModel::default()).contains("digraph"));
    }
}
