//! Structure-based rendering and translation (§IV lists "translating
//! recipes between languages" among the model's applications).
//!
//! Once a recipe is a [`RecipeModel`], translation no longer needs
//! sentence-level machine translation: the structure is language-neutral
//! and only the *lexicon* (ingredient names, units, processes, utensils)
//! plus a handful of surface templates change. A [`Lexicon`] maps the
//! mined vocabulary into a target language; [`render_recipe`] realizes the
//! structure as text.
//!
//! The embedded Spanish lexicon is deliberately small — a demonstration of
//! the mechanism, not a dictionary; unmapped words pass through unchanged
//! (standard practice for untranslatable culinary terms).

use crate::model::{CookingEvent, IngredientEntry, RecipeModel};
use std::collections::HashMap;

/// Surface templates and word mappings for one target language.
#[derive(Debug, Clone)]
pub struct Lexicon {
    /// Language tag (`"en"`, `"es"`).
    pub language: &'static str,
    /// Word-level mapping applied to names, units, processes, utensils.
    map: HashMap<&'static str, &'static str>,
    /// Template for an event with participants: `{process}`, `{list}`.
    event_template: &'static str,
    /// Joiner between list items.
    and_word: &'static str,
    /// Heading for the ingredient section.
    pub ingredients_heading: &'static str,
    /// Heading for the instruction section.
    pub instructions_heading: &'static str,
}

impl Lexicon {
    /// Identity lexicon: renders the mined structure back to English.
    pub fn english() -> Self {
        Lexicon {
            language: "en",
            map: HashMap::new(),
            event_template: "{process} the {list}",
            and_word: "and",
            ingredients_heading: "Ingredients",
            instructions_heading: "Instructions",
        }
    }

    /// Demonstration Spanish lexicon.
    pub fn spanish() -> Self {
        let map: HashMap<&str, &str> = [
            // processes
            ("add", "añadir"),
            ("bake", "hornear"),
            ("boil", "hervir"),
            ("bring", "llevar"),
            ("chop", "picar"),
            ("combine", "combinar"),
            ("cook", "cocinar"),
            ("cover", "tapar"),
            ("fry", "freír"),
            ("heat", "calentar"),
            ("mix", "mezclar"),
            ("pour", "verter"),
            ("preheat", "precalentar"),
            ("serve", "servir"),
            ("simmer", "cocer"),
            ("stir", "remover"),
            ("season", "sazonar"),
            ("drain", "escurrir"),
            ("garnish", "decorar"),
            ("transfer", "trasladar"),
            // ingredients
            ("water", "agua"),
            ("salt", "sal"),
            ("pepper", "pimienta"),
            ("flour", "harina"),
            ("sugar", "azúcar"),
            ("butter", "mantequilla"),
            ("milk", "leche"),
            ("egg", "huevo"),
            ("oil", "aceite"),
            ("olive", "oliva"),
            ("onion", "cebolla"),
            ("garlic", "ajo"),
            ("tomato", "tomate"),
            ("potato", "patata"),
            ("chicken", "pollo"),
            ("rice", "arroz"),
            ("cheese", "queso"),
            ("chopped", "picado"),
            ("ground", "molido"),
            ("fresh", "fresco"),
            ("frozen", "congelado"),
            // units
            ("cup", "taza"),
            ("teaspoon", "cucharadita"),
            ("tablespoon", "cucharada"),
            ("ounce", "onza"),
            ("pound", "libra"),
            ("pinch", "pizca"),
            ("sheet", "lámina"),
            ("clove", "diente"),
            // utensils
            ("pan", "sartén"),
            ("pot", "olla"),
            ("bowl", "cuenco"),
            ("oven", "horno"),
            ("skillet", "sartén"),
            ("whisk", "batidor"),
            ("spoon", "cuchara"),
        ]
        .into_iter()
        .collect();
        Lexicon {
            language: "es",
            map,
            event_template: "{process} {list}",
            and_word: "y",
            ingredients_heading: "Ingredientes",
            instructions_heading: "Preparación",
        }
    }

    /// Translate one word (lowercased lookup; unmapped words pass through).
    pub fn word(&self, w: &str) -> String {
        self.map
            .get(w)
            .map(|t| t.to_string())
            .unwrap_or_else(|| w.to_string())
    }

    /// Translate a (possibly multi-word) term word by word.
    pub fn term(&self, term: &str) -> String {
        term.split(' ')
            .map(|w| self.word(w))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Join a list with the language's conjunction.
    fn join_list(&self, items: &[String]) -> String {
        match items.len() {
            0 => String::new(),
            1 => items[0].clone(),
            n => format!(
                "{} {} {}",
                items[..n - 1].join(", "),
                self.and_word,
                items[n - 1]
            ),
        }
    }
}

/// Render one ingredient entry as a text line.
pub fn render_ingredient(entry: &IngredientEntry, lex: &Lexicon) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(q) = &entry.quantity {
        parts.push(q.clone());
    }
    if let Some(u) = &entry.unit {
        parts.push(lex.term(u));
    }
    if let Some(s) = &entry.size {
        parts.push(lex.term(s));
    }
    if let Some(d) = &entry.dry_fresh {
        parts.push(lex.term(d));
    }
    if let Some(t) = &entry.temperature {
        parts.push(lex.term(t));
    }
    parts.push(lex.term(&entry.name));
    let mut line = parts.join(" ");
    if let Some(state) = &entry.state {
        line.push_str(", ");
        line.push_str(&lex.term(state));
    }
    line
}

/// Render one event as an imperative clause.
pub fn render_event(event: &CookingEvent, lex: &Lexicon) -> String {
    let mut items: Vec<String> = event.ingredients.iter().map(|i| lex.term(i)).collect();
    items.extend(event.utensils.iter().map(|u| lex.term(u)));
    let process = lex.term(&event.process);
    if items.is_empty() {
        return process;
    }
    lex.event_template
        .replace("{process}", &process)
        .replace("{list}", &lex.join_list(&items))
}

/// Render the whole model as sectioned text.
pub fn render_recipe(model: &RecipeModel, lex: &Lexicon) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# {}\n\n{}\n",
        model.title, lex.ingredients_heading
    ));
    for entry in &model.ingredients {
        out.push_str(&format!("- {}\n", render_ingredient(entry, lex)));
    }
    out.push_str(&format!("\n{}\n", lex.instructions_heading));
    let mut step = usize::MAX;
    let mut n = 0usize;
    for event in &model.events {
        if event.step != step {
            step = event.step;
            n += 1;
            out.push_str(&format!("{n}. "));
        } else {
            out.push_str("   ");
        }
        out.push_str(&render_event(event, lex));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RecipeModel {
        RecipeModel {
            id: 1,
            title: "test".into(),
            cuisine: "spanish".into(),
            ingredients: vec![
                IngredientEntry {
                    name: "olive oil".into(),
                    quantity: Some("2".into()),
                    unit: Some("tablespoon".into()),
                    ..Default::default()
                },
                IngredientEntry {
                    name: "potato".into(),
                    state: Some("chopped".into()),
                    quantity: Some("3".into()),
                    ..Default::default()
                },
            ],
            events: vec![
                CookingEvent {
                    process: "fry".into(),
                    ingredients: vec!["potato".into(), "olive oil".into()],
                    utensils: vec!["pan".into()],
                    step: 0,
                },
                CookingEvent {
                    process: "serve".into(),
                    ingredients: vec![],
                    utensils: vec![],
                    step: 1,
                },
            ],
            num_steps: 2,
        }
    }

    #[test]
    fn english_rendering_is_identity_on_words() {
        let lex = Lexicon::english();
        let text = render_recipe(&model(), &lex);
        assert!(text.contains("- 2 tablespoon olive oil"));
        assert!(text.contains("- 3 potato, chopped"));
        assert!(text.contains("1. fry the potato, olive oil and pan"));
        assert!(text.contains("2. serve"));
    }

    #[test]
    fn spanish_translation_maps_the_lexicon() {
        let lex = Lexicon::spanish();
        let text = render_recipe(&model(), &lex);
        assert!(text.contains("Ingredientes"), "{text}");
        // Word-by-word mapping keeps source word order ("oliva aceite") —
        // the demonstration trades fluency for zero MT machinery.
        assert!(text.contains("2 cucharada oliva aceite"), "{text}");
        assert!(text.contains("3 patata, picado"), "{text}");
        assert!(
            text.contains("freír patata, oliva aceite y sartén"),
            "{text}"
        );
        assert!(text.contains("servir"), "{text}");
    }

    #[test]
    fn unmapped_words_pass_through() {
        let lex = Lexicon::spanish();
        assert_eq!(lex.term("gochujang"), "gochujang");
        assert_eq!(lex.term("olive gochujang"), "oliva gochujang");
    }

    #[test]
    fn list_joining() {
        let lex = Lexicon::english();
        assert_eq!(lex.join_list(&[]), "");
        assert_eq!(lex.join_list(&["a".into()]), "a");
        assert_eq!(lex.join_list(&["a".into(), "b".into()]), "a and b");
        assert_eq!(
            lex.join_list(&["a".into(), "b".into(), "c".into()]),
            "a, b and c"
        );
    }

    #[test]
    fn events_in_one_step_share_numbering() {
        let mut m = model();
        m.events.push(CookingEvent {
            process: "stir".into(),
            ingredients: vec![],
            utensils: vec![],
            step: 1,
        });
        let text = render_recipe(&m, &Lexicon::english());
        // Two events at step 1: the second is indented, not renumbered.
        assert!(text.contains("2. serve\n   stir"), "{text}");
    }
}
