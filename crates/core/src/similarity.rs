//! Recipe similarity over the mined structure (application from §IV).
//!
//! The paper reports deploying its model for "determining similarity
//! between recipes" in RecipeDB. With the structured model in hand,
//! similarity decomposes naturally:
//!
//! * **ingredient similarity** — Jaccard overlap of the ingredient-name
//!   sets (what the dish is made of);
//! * **process similarity** — cosine similarity of the cooking-technique
//!   count vectors (how the dish is made);
//! * a weighted combination of the two.

use crate::model::RecipeModel;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Weights for the combined score. Defaults to an even split.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimilarityWeights {
    /// Weight of the ingredient Jaccard term.
    pub ingredients: f64,
    /// Weight of the process cosine term.
    pub processes: f64,
}

impl Default for SimilarityWeights {
    fn default() -> Self {
        SimilarityWeights {
            ingredients: 0.5,
            processes: 0.5,
        }
    }
}

/// Jaccard similarity of two recipes' ingredient-name sets.
pub fn ingredient_similarity(a: &RecipeModel, b: &RecipeModel) -> f64 {
    let sa: HashSet<&str> = a.ingredients.iter().map(|e| e.name.as_str()).collect();
    let sb: HashSet<&str> = b.ingredients.iter().map(|e| e.name.as_str()).collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Cosine similarity of two recipes' process count vectors.
pub fn process_similarity(a: &RecipeModel, b: &RecipeModel) -> f64 {
    let count = |m: &RecipeModel| {
        let mut c: HashMap<String, f64> = HashMap::new();
        for e in &m.events {
            *c.entry(e.process.clone()).or_default() += 1.0;
        }
        c
    };
    let ca = count(a);
    let cb = count(b);
    let dot: f64 = ca
        .iter()
        .filter_map(|(k, v)| cb.get(k).map(|w| v * w))
        .sum();
    let na: f64 = ca.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// Weighted combination of ingredient and process similarity, in `[0, 1]`.
pub fn recipe_similarity(a: &RecipeModel, b: &RecipeModel, w: &SimilarityWeights) -> f64 {
    let total = w.ingredients + w.processes;
    if total == 0.0 {
        return 0.0;
    }
    (w.ingredients * ingredient_similarity(a, b) + w.processes * process_similarity(a, b)) / total
}

/// The `k` most similar models to `query` (excluding exact id matches),
/// highest first.
pub fn most_similar<'a>(
    query: &RecipeModel,
    pool: &'a [RecipeModel],
    k: usize,
    w: &SimilarityWeights,
) -> Vec<(&'a RecipeModel, f64)> {
    let mut scored: Vec<(&RecipeModel, f64)> = pool
        .iter()
        .filter(|m| m.id != query.id)
        .map(|m| (m, recipe_similarity(query, m, w)))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.id.cmp(&b.0.id)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CookingEvent, IngredientEntry};

    fn model(id: u64, names: &[&str], processes: &[&str]) -> RecipeModel {
        RecipeModel {
            id,
            ingredients: names.iter().map(|n| IngredientEntry::named(*n)).collect(),
            events: processes
                .iter()
                .enumerate()
                .map(|(i, p)| CookingEvent {
                    process: p.to_string(),
                    ingredients: vec!["x".into()],
                    utensils: vec![],
                    step: i,
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn identical_recipes_score_one() {
        let a = model(1, &["flour", "egg"], &["mix", "bake"]);
        let b = model(2, &["flour", "egg"], &["mix", "bake"]);
        assert!((recipe_similarity(&a, &b, &SimilarityWeights::default()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_recipes_score_zero() {
        let a = model(1, &["flour"], &["bake"]);
        let b = model(2, &["shrimp"], &["grill"]);
        assert_eq!(
            recipe_similarity(&a, &b, &SimilarityWeights::default()),
            0.0
        );
    }

    #[test]
    fn jaccard_is_partial_overlap() {
        let a = model(1, &["flour", "egg", "sugar"], &[]);
        let b = model(2, &["flour", "egg", "butter"], &[]);
        assert!((ingredient_similarity(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn process_cosine_counts_multiplicity() {
        let a = model(1, &[], &["stir", "stir", "bake"]);
        let b = model(2, &[], &["stir", "bake", "bake"]);
        let sim = process_similarity(&a, &b);
        // dot = 2*1 + 1*2 = 4; norms = sqrt(5) each.
        assert!((sim - 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_ordered_and_excludes_self() {
        let q = model(0, &["flour", "egg"], &["mix"]);
        let pool = vec![
            model(0, &["flour", "egg"], &["mix"]), // same id: excluded
            model(1, &["flour", "egg"], &["mix"]), // perfect match
            model(2, &["flour"], &["mix"]),
            model(3, &["shrimp"], &["grill"]),
        ];
        let top = most_similar(&q, &pool, 2, &SimilarityWeights::default());
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0.id, 1);
        assert_eq!(top[1].0.id, 2);
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn weights_shift_the_score() {
        let a = model(1, &["flour"], &["bake"]);
        let b = model(2, &["flour"], &["grill"]);
        let ing_only = SimilarityWeights {
            ingredients: 1.0,
            processes: 0.0,
        };
        let proc_only = SimilarityWeights {
            ingredients: 0.0,
            processes: 1.0,
        };
        assert_eq!(recipe_similarity(&a, &b, &ing_only), 1.0);
        assert_eq!(recipe_similarity(&a, &b, &proc_only), 0.0);
    }

    #[test]
    fn empty_models_are_safe() {
        let a = model(1, &[], &[]);
        let b = model(2, &[], &[]);
        assert_eq!(
            recipe_similarity(&a, &b, &SimilarityWeights::default()),
            0.0
        );
    }
}

/// IDF-weighted similarity: shared *rare* ingredients (saffron) are far
/// stronger evidence of relatedness than shared staples (salt). Fitted on
/// a collection of mined models; the weighted Jaccard numerator/denominator
/// sum inverse-document-frequency weights instead of counting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimilarityIndex {
    idf: HashMap<String, f64>,
    /// Models the index was fitted on.
    pub n_docs: usize,
}

impl SimilarityIndex {
    /// Fit IDF weights over the ingredient names of `models`.
    pub fn fit(models: &[RecipeModel]) -> Self {
        let mut df: BTreeMap<String, usize> = BTreeMap::new();
        for m in models {
            let names: BTreeSet<&str> = m.ingredients.iter().map(|e| e.name.as_str()).collect();
            for n in names {
                *df.entry(n.to_string()).or_insert(0) += 1;
            }
        }
        let n_docs = models.len();
        let idf = df
            .into_iter()
            .map(|(name, d)| {
                // Smoothed IDF, always positive.
                (name, ((1.0 + n_docs as f64) / (1.0 + d as f64)).ln() + 1.0)
            })
            .collect();
        SimilarityIndex { idf, n_docs }
    }

    /// Weight of one ingredient name (unseen names get the maximal,
    /// rarest-possible weight).
    pub fn idf(&self, name: &str) -> f64 {
        self.idf
            .get(name)
            .copied()
            .unwrap_or_else(|| ((1.0 + self.n_docs as f64).ln()) + 1.0)
    }

    /// IDF-weighted Jaccard over ingredient-name sets.
    pub fn weighted_ingredient_similarity(&self, a: &RecipeModel, b: &RecipeModel) -> f64 {
        // BTreeSet so the float sums below fold in a fixed (sorted) order.
        let sa: BTreeSet<&str> = a.ingredients.iter().map(|e| e.name.as_str()).collect();
        let sb: BTreeSet<&str> = b.ingredients.iter().map(|e| e.name.as_str()).collect();
        if sa.is_empty() && sb.is_empty() {
            return 0.0;
        }
        let inter: f64 = sa.intersection(&sb).map(|n| self.idf(n)).sum();
        let union: f64 = sa.union(&sb).map(|n| self.idf(n)).sum();
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// The `k` most similar models by weighted ingredient similarity.
    pub fn most_similar<'a>(
        &self,
        query: &RecipeModel,
        pool: &'a [RecipeModel],
        k: usize,
    ) -> Vec<(&'a RecipeModel, f64)> {
        let mut scored: Vec<(&RecipeModel, f64)> = pool
            .iter()
            .filter(|m| m.id != query.id)
            .map(|m| (m, self.weighted_ingredient_similarity(query, m)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.id.cmp(&b.0.id)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod idf_tests {
    use super::*;
    use crate::model::IngredientEntry;

    fn model(id: u64, names: &[&str]) -> RecipeModel {
        RecipeModel {
            id,
            ingredients: names.iter().map(|n| IngredientEntry::named(*n)).collect(),
            ..Default::default()
        }
    }

    /// A pool where salt is ubiquitous and saffron is rare.
    fn pool() -> Vec<RecipeModel> {
        vec![
            model(1, &["salt", "saffron", "rice"]),
            model(2, &["salt", "flour", "egg"]),
            model(3, &["salt", "beef", "onion"]),
            model(4, &["salt", "milk", "oats"]),
            model(5, &["salt", "saffron", "chicken"]),
        ]
    }

    #[test]
    fn rare_ingredients_weigh_more() {
        let idx = SimilarityIndex::fit(&pool());
        assert!(idx.idf("saffron") > idx.idf("salt"));
    }

    #[test]
    fn shared_rare_beats_shared_common() {
        let idx = SimilarityIndex::fit(&pool());
        let q = model(9, &["saffron", "salt", "pea"]);
        let shares_saffron = model(10, &["saffron", "lamb", "pepper"]);
        let shares_salt = model(11, &["salt", "lamb", "pepper"]);
        let s1 = idx.weighted_ingredient_similarity(&q, &shares_saffron);
        let s2 = idx.weighted_ingredient_similarity(&q, &shares_salt);
        assert!(s1 > s2, "saffron {s1} vs salt {s2}");
        // Unweighted Jaccard cannot tell them apart.
        assert!(
            (ingredient_similarity(&q, &shares_saffron) - ingredient_similarity(&q, &shares_salt))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn identical_sets_score_one() {
        let idx = SimilarityIndex::fit(&pool());
        let a = model(20, &["salt", "rice"]);
        let b = model(21, &["salt", "rice"]);
        assert!((idx.weighted_ingredient_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unseen_names_get_max_weight_and_empty_is_safe() {
        let idx = SimilarityIndex::fit(&pool());
        assert!(idx.idf("unobtainium") >= idx.idf("saffron"));
        let empty = model(30, &[]);
        assert_eq!(idx.weighted_ingredient_similarity(&empty, &empty), 0.0);
    }

    #[test]
    fn ranking_excludes_self_and_sorts() {
        let p = pool();
        let idx = SimilarityIndex::fit(&p);
        let top = idx.most_similar(&p[0], &p, 3);
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|(m, _)| m.id != p[0].id));
        // The other saffron recipe ranks first.
        assert_eq!(top[0].0.id, 5);
    }
}
