//! Instruction-section mining: NER application and the frequency-threshold
//! dictionaries of §III.A.
//!
//! The paper runs the instruction NER model over RecipeDB, then keeps only
//! processes seen at least 47 times and utensils seen at least 10 times —
//! "removing most of the inconsistencies" — to form the dictionaries used
//! by relation extraction.

use recipe_corpus::RecipeCorpus;
use recipe_ner::{InstructionTag, SequenceModel};
use recipe_runtime::Runtime;
use recipe_text::Preprocessor;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Frequency-thresholded vocabularies of cooking techniques and utensils.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dictionaries {
    /// Cooking techniques (lemmatized lowercase).
    pub processes: BTreeSet<String>,
    /// Utensils (lemmatized lowercase).
    pub utensils: BTreeSet<String>,
    /// Raw counts behind `processes` (kept for the threshold ablation).
    pub process_counts: BTreeMap<String, usize>,
    /// Raw counts behind `utensils`.
    pub utensil_counts: BTreeMap<String, usize>,
}

impl Dictionaries {
    /// Is `word` (already normalized) a known process?
    pub fn is_process(&self, word: &str) -> bool {
        self.processes.contains(word)
    }

    /// Is `word` (already normalized) a known utensil?
    pub fn is_utensil(&self, word: &str) -> bool {
        self.utensils.contains(word)
    }

    /// Re-apply different thresholds to the stored counts (ablation hook).
    pub fn with_thresholds(&self, process_min: usize, utensil_min: usize) -> Dictionaries {
        Dictionaries {
            processes: self
                .process_counts
                .iter()
                .filter(|&(_, &c)| c >= process_min)
                .map(|(w, _)| w.clone())
                .collect(),
            utensils: self
                .utensil_counts
                .iter()
                .filter(|&(_, &c)| c >= utensil_min)
                .map(|(w, _)| w.clone())
                .collect(),
            process_counts: self.process_counts.clone(),
            utensil_counts: self.utensil_counts.clone(),
        }
    }
}

/// Tag one instruction sentence (raw tokens) with the instruction NER
/// model.
pub fn tag_instruction(ner: &SequenceModel, words: &[String]) -> Vec<InstructionTag> {
    ner.predict(words)
        .iter()
        .map(|t| InstructionTag::parse(t).unwrap_or(InstructionTag::O))
        .collect()
}

/// Run the instruction NER over the whole corpus, count the predicted
/// process and utensil surface forms (lemmatized), and keep the ones above
/// the thresholds.
///
/// NER prediction over the recipes runs on `rt` in fixed-size chunks;
/// per-chunk counts are merged into ordered maps on the calling thread, so
/// the dictionaries are identical at every thread count (addition of
/// per-word counts is commutative, and `BTreeMap` iteration order never
/// depends on insertion order).
pub fn build_dictionaries(
    corpus: &RecipeCorpus,
    ner: &SequenceModel,
    pre: &Preprocessor,
    process_threshold: usize,
    utensil_threshold: usize,
    rt: &Runtime,
) -> Dictionaries {
    let chunk = corpus.recipes.len().div_ceil(64).max(1);
    let partials = rt.par_chunks_map(&corpus.recipes, chunk, |_, recipes| {
        let mut process_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut utensil_counts: BTreeMap<String, usize> = BTreeMap::new();
        for recipe in recipes {
            for sent in &recipe.instructions {
                let words = sent.words();
                let tags = tag_instruction(ner, &words);
                for (w, t) in words.iter().zip(&tags) {
                    match t {
                        InstructionTag::Process => {
                            *process_counts.entry(pre.normalize_word(w)).or_default() += 1;
                        }
                        InstructionTag::Utensil => {
                            *utensil_counts.entry(pre.normalize_word(w)).or_default() += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        (process_counts, utensil_counts)
    });
    let mut process_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut utensil_counts: BTreeMap<String, usize> = BTreeMap::new();
    for (pc, uc) in partials {
        for (w, c) in pc {
            *process_counts.entry(w).or_default() += c;
        }
        for (w, c) in uc {
            *utensil_counts.entry(w).or_default() += c;
        }
    }
    let dicts = Dictionaries {
        processes: BTreeSet::new(),
        utensils: BTreeSet::new(),
        process_counts,
        utensil_counts,
    };
    dicts.with_thresholds(process_threshold, utensil_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_filter_counts() {
        let mut d = Dictionaries::default();
        d.process_counts.insert("boil".into(), 50);
        d.process_counts.insert("zap".into(), 3);
        d.utensil_counts.insert("pan".into(), 12);
        d.utensil_counts.insert("doohickey".into(), 1);
        let filtered = d.with_thresholds(47, 10);
        assert!(filtered.is_process("boil"));
        assert!(!filtered.is_process("zap"));
        assert!(filtered.is_utensil("pan"));
        assert!(!filtered.is_utensil("doohickey"));
    }

    #[test]
    fn rethresholding_is_monotone() {
        let mut d = Dictionaries::default();
        for (w, c) in [("a", 1), ("b", 5), ("c", 20), ("d", 100)] {
            d.process_counts.insert(w.into(), c);
        }
        let strict = d.with_thresholds(50, 10);
        let loose = d.with_thresholds(2, 10);
        assert!(strict.processes.is_subset(&loose.processes));
        assert_eq!(strict.processes.len(), 1);
        assert_eq!(loose.processes.len(), 3);
    }
}
