//! Cuisine prediction from mined ingredient information (a use case the
//! paper's introduction names for the ingredients section: "food pairing,
//! flavor prediction, nutritional estimation, cost estimation and cuisine
//! prediction").
//!
//! A multinomial naive Bayes classifier over extracted ingredient names
//! with Laplace smoothing — the textbook baseline for set-of-ingredients
//! cuisine classification.

use crate::model::RecipeModel;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Multinomial naive Bayes over ingredient names.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CuisineClassifier {
    /// Recipes per cuisine.
    class_counts: BTreeMap<String, usize>,
    /// `word_counts[cuisine][ingredient]`.
    word_counts: BTreeMap<String, HashMap<String, usize>>,
    /// Total ingredient tokens per cuisine.
    token_totals: BTreeMap<String, usize>,
    /// Distinct ingredient vocabulary size (smoothing denominator).
    vocab: std::collections::BTreeSet<String>,
}

impl CuisineClassifier {
    /// Fit on mined recipe models with known cuisines.
    pub fn fit(models: &[RecipeModel]) -> Self {
        let mut c = CuisineClassifier::default();
        for m in models {
            if m.cuisine.is_empty() {
                continue;
            }
            *c.class_counts.entry(m.cuisine.clone()).or_insert(0) += 1;
            let wc = c.word_counts.entry(m.cuisine.clone()).or_default();
            let tot = c.token_totals.entry(m.cuisine.clone()).or_insert(0);
            for e in &m.ingredients {
                if e.name.is_empty() {
                    continue;
                }
                // Use the base noun (last token) so modifier-composed
                // names ("red onion") share evidence with their base.
                let base = e.name.rsplit(' ').next().unwrap_or(&e.name).to_string();
                *wc.entry(base.clone()).or_insert(0) += 1;
                *tot += 1;
                c.vocab.insert(base);
            }
        }
        c
    }

    /// Number of cuisines seen during fitting.
    pub fn num_classes(&self) -> usize {
        self.class_counts.len()
    }

    /// Log-probability scores per cuisine for an ingredient-name list,
    /// highest first.
    pub fn scores(&self, names: &[String]) -> Vec<(String, f64)> {
        let total_recipes: usize = self.class_counts.values().sum();
        if total_recipes == 0 {
            return Vec::new();
        }
        let v = self.vocab.len() as f64;
        let mut scored: Vec<(String, f64)> = self
            .class_counts
            .iter()
            .map(|(cuisine, &count)| {
                let prior = (count as f64 / total_recipes as f64).ln();
                let wc = &self.word_counts[cuisine];
                let tot = self.token_totals[cuisine] as f64;
                let ll: f64 = names
                    .iter()
                    .map(|n| {
                        let base = n.rsplit(' ').next().unwrap_or(n);
                        let c = wc.get(base).copied().unwrap_or(0) as f64;
                        ((c + 1.0) / (tot + v)).ln()
                    })
                    .sum();
                (cuisine.clone(), prior + ll)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite log-probs"));
        scored
    }

    /// Most likely cuisine for a mined recipe model.
    pub fn predict(&self, model: &RecipeModel) -> Option<String> {
        let names: Vec<String> = model.ingredients.iter().map(|e| e.name.clone()).collect();
        self.scores(&names).into_iter().next().map(|(c, _)| c)
    }

    /// Accuracy over labeled models, plus the majority-class baseline.
    pub fn evaluate(&self, models: &[RecipeModel]) -> (f64, f64) {
        if models.is_empty() {
            return (0.0, 0.0);
        }
        let correct = models
            .iter()
            .filter(|m| self.predict(m).as_deref() == Some(m.cuisine.as_str()))
            .count();
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for m in models {
            *counts.entry(m.cuisine.as_str()).or_insert(0) += 1;
        }
        let majority = counts.values().copied().max().unwrap_or(0);
        (
            correct as f64 / models.len() as f64,
            majority as f64 / models.len() as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IngredientEntry;

    fn model(cuisine: &str, names: &[&str]) -> RecipeModel {
        RecipeModel {
            cuisine: cuisine.to_string(),
            ingredients: names.iter().map(|n| IngredientEntry::named(*n)).collect(),
            ..Default::default()
        }
    }

    fn training() -> Vec<RecipeModel> {
        vec![
            model("italian", &["pasta", "tomato", "basil"]),
            model("italian", &["pasta", "olive oil", "garlic"]),
            model("italian", &["tomato", "basil", "mozzarella"]),
            model("mexican", &["tortilla", "bean", "chili"]),
            model("mexican", &["corn", "bean", "lime"]),
            model("mexican", &["tortilla", "chili", "cilantro"]),
        ]
    }

    #[test]
    fn classifies_clear_cases() {
        let clf = CuisineClassifier::fit(&training());
        assert_eq!(clf.num_classes(), 2);
        let italian = model("?", &["pasta", "basil"]);
        let mexican = model("?", &["tortilla", "bean"]);
        assert_eq!(clf.predict(&italian).as_deref(), Some("italian"));
        assert_eq!(clf.predict(&mexican).as_deref(), Some("mexican"));
    }

    #[test]
    fn modifier_names_share_base_evidence() {
        let clf = CuisineClassifier::fit(&training());
        // "heirloom tomato" backs off to "tomato".
        let m = model("?", &["heirloom tomato", "sweet basil"]);
        assert_eq!(clf.predict(&m).as_deref(), Some("italian"));
    }

    #[test]
    fn scores_are_sorted_and_finite() {
        let clf = CuisineClassifier::fit(&training());
        let scores = clf.scores(&["bean".to_string(), "unseen-thing".to_string()]);
        assert_eq!(scores.len(), 2);
        assert!(scores[0].1 >= scores[1].1);
        assert!(scores.iter().all(|(_, s)| s.is_finite()));
    }

    #[test]
    fn evaluate_beats_majority_on_training_data() {
        let clf = CuisineClassifier::fit(&training());
        let (acc, baseline) = clf.evaluate(&training());
        assert!(acc > baseline, "acc {acc} baseline {baseline}");
        assert!((baseline - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_model_predicts_nothing_sensibly() {
        let clf = CuisineClassifier::fit(&[]);
        assert!(clf.predict(&model("?", &["pasta"])).is_none());
        assert_eq!(clf.evaluate(&[]), (0.0, 0.0));
    }
}
