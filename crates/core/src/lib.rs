#![warn(missing_docs)]

//! Named-entity based recipe modelling — the paper's primary contribution.
//!
//! This crate assembles the substrates (`recipe-text`, `recipe-tagger`,
//! `recipe-ner`, `recipe-cluster`, `recipe-parser`, `recipe-corpus`) into
//! the full pipeline of Diwan, Batra & Bagler (ICDE 2020):
//!
//! 1. **Ingredient modelling** ([`pipeline`]): preprocess every ingredient
//!    phrase, POS-tag it, cluster the 1×36 POS vectors with K-Means,
//!    stratified-sample an annotation budget, train the NER model, and
//!    decompose phrases into the seven attributes of Table II
//!    ([`model::IngredientEntry`]).
//! 2. **Instruction mining** ([`instructions`], [`events`]): a second NER
//!    model tags processes/utensils/ingredients, frequency-threshold
//!    dictionaries filter them, and a dependency parser extracts
//!    many-to-many [`model::CookingEvent`] tuples per §III.B.
//! 3. **Applications** ([`nutrition`], [`similarity`]): nutritional profile
//!    estimation and recipe similarity over the mined structure, the two
//!    applications the paper reports deploying on RecipeDB.
//!
//! The resulting uniform structure is [`model::RecipeModel`] — Fig. 1 of
//! the paper.
//!
//! # Quickstart
//!
//! ```no_run
//! use recipe_core::pipeline::{PipelineConfig, TrainedPipeline};
//! use recipe_corpus::{CorpusSpec, RecipeCorpus};
//!
//! let corpus = RecipeCorpus::generate(&CorpusSpec::tiny(42));
//! let pipeline = TrainedPipeline::train(&corpus, &PipelineConfig::fast());
//! let model = pipeline.model_recipe(&corpus.recipes[0]);
//! println!("{} events", model.events.len());
//! ```

pub mod artifact;
pub mod cuisine;
pub mod events;
pub mod generation;
pub mod graph;
pub mod infer;
pub mod instructions;
pub mod model;
pub mod nutrition;
pub mod persist;
pub mod pipeline;
pub mod quantity;
pub mod render;
pub mod similarity;

pub use artifact::{ArtifactPipeline, ArtifactPipelineError};
pub use infer::{CacheStats, Inference};
pub use model::{CookingEvent, IngredientEntry, RecipeModel};
pub use pipeline::{IngredientExtractor, PipelineConfig, TrainedPipeline};
pub use quantity::Quantity;
