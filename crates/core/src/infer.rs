//! The compiled inference layer: frozen CSR models plus a bounded,
//! deterministic phrase-level memoization cache.
//!
//! A trained [`crate::pipeline::TrainedPipeline`] carries an [`Inference`]
//! bundle built at train/load time. It freezes the ingredient NER, the
//! instruction NER and the POS tagger into their compiled sparse forms
//! (see `recipe_ner::compiled` and `recipe_tagger::compiled`) and fronts
//! the two hottest per-phrase computations with memoization caches:
//!
//! * **ingredient cache** — preprocessed ingredient phrase → parsed
//!   [`IngredientEntry`]. Keys are the preprocessed (lowercased,
//!   lemmatized) tokens, so `"2 Cups Flour"` and `"2 cups flour"` share an
//!   entry — the same case/width normalization the tokenizer applies.
//! * **event cache** — raw instruction sentence → its [`CookingEvent`]s.
//!   Keys are the verbatim tokens (the analysis pipeline is
//!   case-sensitive); the step index is patched on retrieval since it is
//!   the only step-dependent field.
//!
//! Cached values are pure functions of their keys and every model is
//! frozen, so results are **identical** with the cache on or off, at any
//! thread count, with any eviction history — the cache can only change
//! *when* a value is computed, never *what* it is. Capacity is bounded by
//! refusing inserts once a shard is full (no eviction), which keeps memory
//! flat on adversarial corpora while keeping behavior trivially
//! deterministic. Hit/miss/rejected-insert counters live on a
//! per-[`Inference`] `recipe_obs::Registry` (instance-local so concurrent
//! pipelines never share counts) and are surfaced in the CLI extract/mine
//! output, the `--metrics-out` telemetry, and the `inference_throughput`
//! bench.
//!
//! Decode scratch (Viterbi buffers, feature-id buffers, tag rows) lives in
//! thread-locals: the deterministic runtime's workers have no init hook,
//! and a thread-local arena gives exactly the once-per-worker reuse the
//! compiled decoders are designed for.

use crate::model::{CookingEvent, IngredientEntry};
use crate::pipeline::entry_from_tagged;
use recipe_ner::{
    CompiledSequenceModel, DecodeScratch, IngredientTag, InstructionTag, LabelSet, NerView,
    SequenceModel,
};
use recipe_tagger::{CompiledPosTagger, PennTag, PosTagger, PosView, TagScratch};
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of independently locked cache shards. A power of two keeps the
/// shard pick a cheap mask; 16 shards keep contention negligible at the
/// runtime's worker counts.
const CACHE_SHARDS: usize = 16;

/// Default per-cache capacity (entries across all shards).
const DEFAULT_CACHE_CAPACITY: usize = 1 << 16;

/// Separator for joining tokens into cache keys. A control character that
/// the tokenizer never emits inside a token, so distinct token sequences
/// never collide.
const KEY_SEP: char = '\u{1f}';

/// Join tokens into a cache key.
fn cache_key(words: &[String]) -> String {
    let mut key = String::with_capacity(words.iter().map(|w| w.len() + 1).sum());
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            key.push(KEY_SEP);
        }
        key.push_str(w);
    }
    key
}

/// Monitoring counters for one memoization cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Combine two counters (for reporting totals across caches).
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            entries: self.entries + other.entries,
        }
    }
}

/// A bounded, sharded memoization cache shared across runtime workers.
///
/// Inserts are refused once a shard reaches its capacity slice — values
/// are pure functions of keys, so dropping an insert only costs a future
/// recompute and can never change results. Hit/miss/rejected counters are
/// `recipe_obs` counters resolved from the owning [`Inference`]'s
/// instance-local registry: monitoring data, never part of any decoded
/// output, and they count whether or not tracing is enabled because the
/// CLI's `cache` block reports them unconditionally.
#[derive(Debug)]
struct ShardedCache<V> {
    shards: Vec<Mutex<HashMap<String, V>>>,
    per_shard_capacity: usize,
    hits: Arc<recipe_obs::Counter>,
    misses: Arc<recipe_obs::Counter>,
    rejected: Arc<recipe_obs::Counter>,
    entries_gauge: Arc<recipe_obs::Gauge>,
}

impl<V: Clone> ShardedCache<V> {
    fn new(capacity: usize, registry: &recipe_obs::Registry, prefix: &str) -> Self {
        ShardedCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            per_shard_capacity: capacity.div_ceil(CACHE_SHARDS).max(1),
            hits: registry.counter(&format!("{prefix}.hits")),
            misses: registry.counter(&format!("{prefix}.misses")),
            rejected: registry.counter(&format!("{prefix}.rejected_inserts")),
            entries_gauge: registry.gauge(&format!("{prefix}.entries")),
        }
    }

    fn shard_of(&self, key: &str) -> usize {
        // DefaultHasher::new() is seed-free: shard placement is identical
        // across runs and across threads.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (CACHE_SHARDS - 1)
    }

    fn get(&self, key: &str) -> Option<V> {
        let shard = self.shards[self.shard_of(key)].lock().expect("cache lock");
        match shard.get(key) {
            Some(v) => {
                self.hits.inc();
                Some(v.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    fn insert(&self, key: String, value: V) {
        let mut shard = self.shards[self.shard_of(&key)].lock().expect("cache lock");
        if shard.len() < self.per_shard_capacity {
            shard.insert(key, value);
        } else {
            self.rejected.inc();
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").len())
            .sum()
    }

    fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("cache lock").clear();
        }
        self.hits.reset();
        self.misses.reset();
        self.rejected.reset();
        self.entries_gauge.reset();
    }

    /// Counter snapshot. Also refreshes the registry's `entries` gauge so
    /// exported telemetry carries the current fill level.
    fn stats(&self) -> CacheStats {
        let entries = self.len();
        self.entries_gauge.set(entries as f64);
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries,
        }
    }
}

thread_local! {
    /// Per-worker NER decode scratch: Viterbi buffers, feature ids, the
    /// label-id output row and the mapped tag row.
    static NER_SCRATCH: RefCell<(DecodeScratch, Vec<usize>, Vec<IngredientTag>, Vec<InstructionTag>)> =
        RefCell::new((DecodeScratch::new(), Vec::new(), Vec::new(), Vec::new()));
    /// Per-worker POS tagging scratch and tag output row.
    static POS_SCRATCH: RefCell<(TagScratch, Vec<PennTag>)> =
        RefCell::new((TagScratch::new(), Vec::new()));
}

/// A frozen sequence model behind [`Inference`]: either compiled
/// in-process from trained parameters, or a zero-copy view over loaded
/// artifact bytes. Both decode through the same scratch arenas and are
/// byte-identical on the f64 path.
pub enum NerBackend {
    /// In-process compiled CSR model.
    Compiled(CompiledSequenceModel),
    /// Zero-copy view over `.rma` artifact bytes (possibly quantized).
    Artifact(NerView),
}

impl NerBackend {
    /// The model's label inventory.
    pub fn labels(&self) -> &LabelSet {
        match self {
            NerBackend::Compiled(m) => m.labels(),
            NerBackend::Artifact(v) => v.labels(),
        }
    }

    /// Predict dense label ids into `out`, reusing `scratch`.
    ///
    /// Pure dispatch: the span and provenance hooks live in the decode
    /// kernels this delegates to; external callers go through
    /// [`Inference`].
    pub(crate) fn predict_ids(
        &self,
        tokens: &[String],
        scratch: &mut DecodeScratch,
        out: &mut Vec<usize>,
    ) {
        match self {
            NerBackend::Compiled(m) => m.predict_ids_into(tokens, scratch, out),
            NerBackend::Artifact(v) => v.predict_ids_into(tokens, scratch, out),
        }
    }
}

impl std::fmt::Debug for NerBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NerBackend::Compiled(_) => f.write_str("NerBackend::Compiled"),
            NerBackend::Artifact(v) => {
                write!(f, "NerBackend::Artifact {{ quantized: {} }}", v.quantized())
            }
        }
    }
}

/// The POS tagger behind [`Inference`]: compiled in-process or served
/// from artifact bytes. Tags are identical either way.
pub enum PosBackend {
    /// In-process compiled CSR tagger.
    Compiled(CompiledPosTagger),
    /// Zero-copy view over `.rma` artifact bytes.
    Artifact(PosView),
}

impl PosBackend {
    /// Tag a tokenized sentence into `out`, reusing `scratch`.
    ///
    /// Pure dispatch: the span lives in the tag kernels this delegates
    /// to; external callers go through [`Inference`].
    pub(crate) fn tag(&self, words: &[String], scratch: &mut TagScratch, out: &mut Vec<PennTag>) {
        match self {
            PosBackend::Compiled(t) => t.tag_into(words, scratch, out),
            PosBackend::Artifact(v) => v.tag_into(words, scratch, out),
        }
    }
}

impl std::fmt::Debug for PosBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PosBackend::Compiled(_) => f.write_str("PosBackend::Compiled"),
            PosBackend::Artifact(_) => f.write_str("PosBackend::Artifact"),
        }
    }
}

/// Compiled models plus phrase caches — the serving half of a trained
/// pipeline. Frozen at construction: retraining or mutating the source
/// models requires rebuilding (see
/// [`crate::pipeline::TrainedPipeline::recompile`]).
#[derive(Debug)]
pub struct Inference {
    ingredient: NerBackend,
    /// Label id → ingredient tag, mirroring `predict` + `parse` exactly.
    ingredient_tag_of: Vec<IngredientTag>,
    instruction: NerBackend,
    /// Label id → instruction tag.
    instruction_tag_of: Vec<InstructionTag>,
    pos: PosBackend,
    ingredient_cache: ShardedCache<IngredientEntry>,
    event_cache: ShardedCache<Vec<CookingEvent>>,
    cache_enabled: AtomicBool,
    /// Instance-local metrics registry: cache counters and per-phrase
    /// latency histograms. Instance-local (not the process-global
    /// registry) so concurrently live pipelines — e.g. parallel tests —
    /// never mix counts.
    registry: Arc<recipe_obs::Registry>,
    /// Per-phrase ingredient-parse latency (cache hits included); only
    /// recorded while tracing is enabled.
    lat_ingredient: Arc<recipe_obs::Histogram>,
    /// Per-sentence event-extraction latency (cache hits included); only
    /// recorded while tracing is enabled.
    lat_events: Arc<recipe_obs::Histogram>,
}

impl Inference {
    /// Freeze the trained models into their compiled forms with empty
    /// caches (enabled by default).
    pub fn compile(
        pos: &PosTagger,
        ingredient_ner: &SequenceModel,
        instruction_ner: &SequenceModel,
    ) -> Self {
        Self::from_backends(
            NerBackend::Compiled(CompiledSequenceModel::compile(ingredient_ner)),
            NerBackend::Compiled(CompiledSequenceModel::compile(instruction_ner)),
            PosBackend::Compiled(CompiledPosTagger::compile(pos)),
        )
    }

    /// Build an inference bundle from zero-copy artifact views (see
    /// `recipe_core::artifact`). Whether decoding uses the quantized i16
    /// kernels was fixed when the views were opened.
    pub fn from_views(pos: PosView, ingredient: NerView, instruction: NerView) -> Self {
        Self::from_backends(
            NerBackend::Artifact(ingredient),
            NerBackend::Artifact(instruction),
            PosBackend::Artifact(pos),
        )
    }

    fn from_backends(ingredient: NerBackend, instruction: NerBackend, pos: PosBackend) -> Self {
        let ingredient_tag_of = (0..ingredient.labels().len())
            .map(|id| {
                IngredientTag::parse(ingredient.labels().name(id)).unwrap_or(IngredientTag::O)
            })
            .collect();
        let instruction_tag_of = (0..instruction.labels().len())
            .map(|id| {
                InstructionTag::parse(instruction.labels().name(id)).unwrap_or(InstructionTag::O)
            })
            .collect();
        let registry = Arc::new(recipe_obs::Registry::new());
        Inference {
            ingredient,
            ingredient_tag_of,
            instruction,
            instruction_tag_of,
            pos,
            ingredient_cache: ShardedCache::new(
                DEFAULT_CACHE_CAPACITY,
                &registry,
                "cache.ingredient",
            ),
            event_cache: ShardedCache::new(DEFAULT_CACHE_CAPACITY, &registry, "cache.events"),
            cache_enabled: AtomicBool::new(true),
            lat_ingredient: registry.latency_histogram("latency.ingredient_phrase_s"),
            lat_events: registry.latency_histogram("latency.event_sentence_s"),
            registry,
        }
    }

    /// This inference bundle's instance-local metrics registry (cache
    /// counters, per-phrase latency histograms). Cache `entries` gauges
    /// are refreshed first so a snapshot taken from the returned registry
    /// is current.
    pub fn metrics_registry(&self) -> &recipe_obs::Registry {
        self.ingredient_cache.stats();
        self.event_cache.stats();
        &self.registry
    }

    /// The ingredient NER backend (compiled model or artifact view).
    pub fn ingredient_backend(&self) -> &NerBackend {
        &self.ingredient
    }

    /// The in-process compiled ingredient NER model, when this bundle
    /// was built by [`Inference::compile`] (artifact-backed bundles
    /// return `None`).
    pub fn ingredient_model(&self) -> Option<&CompiledSequenceModel> {
        match &self.ingredient {
            NerBackend::Compiled(m) => Some(m),
            NerBackend::Artifact(_) => None,
        }
    }

    /// The in-process compiled instruction NER model, when present.
    pub fn instruction_model(&self) -> Option<&CompiledSequenceModel> {
        match &self.instruction {
            NerBackend::Compiled(m) => Some(m),
            NerBackend::Artifact(_) => None,
        }
    }

    /// The in-process compiled POS tagger, when present.
    pub fn pos_model(&self) -> Option<&CompiledPosTagger> {
        match &self.pos {
            PosBackend::Compiled(t) => Some(t),
            PosBackend::Artifact(_) => None,
        }
    }

    /// Enable or disable both phrase caches. Results are identical either
    /// way; disabling exists for benchmarking and the `--no-cache` CLI
    /// flag.
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.cache_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the phrase caches are consulted.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled.load(Ordering::Relaxed)
    }

    /// Drop all cached entries and reset the counters.
    pub fn clear_caches(&self) {
        self.ingredient_cache.clear();
        self.event_cache.clear();
    }

    /// Counters for the ingredient-phrase cache.
    pub fn ingredient_cache_stats(&self) -> CacheStats {
        self.ingredient_cache.stats()
    }

    /// Counters for the instruction-sentence event cache.
    pub fn event_cache_stats(&self) -> CacheStats {
        self.event_cache.stats()
    }

    /// Combined counters over both caches.
    pub fn cache_stats(&self) -> CacheStats {
        self.ingredient_cache_stats()
            .merged(&self.event_cache_stats())
    }

    /// Parse one *preprocessed* ingredient phrase into an entry via the
    /// compiled NER model, memoized on the preprocessed tokens.
    pub fn ingredient_entry(&self, words: &[String]) -> IngredientEntry {
        if recipe_obs::enabled() {
            let t0 = Instant::now();
            let entry = self.ingredient_entry_memo(words);
            self.lat_ingredient.record(t0.elapsed().as_secs_f64());
            entry
        } else {
            self.ingredient_entry_memo(words)
        }
    }

    fn ingredient_entry_memo(&self, words: &[String]) -> IngredientEntry {
        if self.cache_enabled() {
            let key = cache_key(words);
            if let Some(entry) = self.ingredient_cache.get(&key) {
                record_cache_provenance("cache.ingredient", words, "hit");
                return entry;
            }
            record_cache_provenance("cache.ingredient", words, "miss");
            let entry = self.ingredient_entry_uncached(words);
            self.ingredient_cache.insert(key, entry.clone());
            entry
        } else {
            record_cache_provenance("cache.ingredient", words, "bypass");
            self.ingredient_entry_uncached(words)
        }
    }

    fn ingredient_entry_uncached(&self, words: &[String]) -> IngredientEntry {
        NER_SCRATCH.with(|cell| {
            let (scratch, ids, tags, _) = &mut *cell.borrow_mut();
            self.ingredient.predict_ids(words, scratch, ids);
            record_viterbi_provenance("ner.ingredient", &self.ingredient, words, ids, scratch);
            tags.clear();
            tags.extend(ids.iter().map(|&id| self.ingredient_tag_of[id]));
            entry_from_tagged(words, tags)
        })
    }

    /// Instruction NER tags for a sentence via the compiled model
    /// (identical to `tag_instruction` on the source model).
    pub fn tag_instruction(&self, words: &[String]) -> Vec<InstructionTag> {
        NER_SCRATCH.with(|cell| {
            let (scratch, ids, _, tags) = &mut *cell.borrow_mut();
            self.instruction.predict_ids(words, scratch, ids);
            record_viterbi_provenance("ner.instruction", &self.instruction, words, ids, scratch);
            tags.clear();
            tags.extend(ids.iter().map(|&id| self.instruction_tag_of[id]));
            tags.clone()
        })
    }

    /// POS tags for a sentence via the compiled tagger (identical to
    /// [`PosTagger::tag`] on the source tagger).
    pub fn pos_tag(&self, words: &[String]) -> Vec<PennTag> {
        POS_SCRATCH.with(|cell| {
            let (scratch, tags) = &mut *cell.borrow_mut();
            self.pos.tag(words, scratch, tags);
            tags.clone()
        })
    }

    /// Cached events for a sentence: `compute` runs on a miss. The cached
    /// value's `step` field is patched on every hit — it is the only
    /// step-dependent field of an event.
    pub(crate) fn events_for_sentence(
        &self,
        words: &[String],
        step: usize,
        compute: impl FnOnce() -> Vec<CookingEvent>,
    ) -> Vec<CookingEvent> {
        if recipe_obs::enabled() {
            let t0 = Instant::now();
            let events = self.events_for_sentence_memo(words, step, compute);
            self.lat_events.record(t0.elapsed().as_secs_f64());
            events
        } else {
            self.events_for_sentence_memo(words, step, compute)
        }
    }

    fn events_for_sentence_memo(
        &self,
        words: &[String],
        step: usize,
        compute: impl FnOnce() -> Vec<CookingEvent>,
    ) -> Vec<CookingEvent> {
        if !self.cache_enabled() {
            record_cache_provenance("cache.events", words, "bypass");
            return compute();
        }
        let key = cache_key(words);
        if let Some(mut events) = self.event_cache.get(&key) {
            record_cache_provenance("cache.events", words, "hit");
            for e in &mut events {
                e.step = step;
            }
            return events;
        }
        record_cache_provenance("cache.events", words, "miss");
        let events = compute();
        self.event_cache.insert(key, events.clone());
        events
    }
}

/// Record one `cache.lookup` provenance decision (hit/miss/bypass) for
/// a phrase or sentence. One relaxed load when `--explain` is off.
fn record_cache_provenance(site: &'static str, words: &[String], decision: &str) {
    if !recipe_obs::provenance::enabled() {
        return;
    }
    recipe_obs::provenance::record(recipe_obs::provenance::Record {
        kind: "cache.lookup",
        site,
        subject: words.join(" "),
        decision: decision.to_string(),
        detail: String::new(),
        index: 0,
        margin: None,
    });
}

/// Record per-token `viterbi.margin` provenance for a decoded phrase:
/// the predicted label plus the δ-row margin the decode left in
/// `scratch` (filled only while provenance is enabled). One relaxed
/// load when `--explain` is off.
fn record_viterbi_provenance(
    site: &'static str,
    model: &NerBackend,
    words: &[String],
    ids: &[usize],
    scratch: &DecodeScratch,
) {
    if !recipe_obs::provenance::enabled() {
        return;
    }
    let margins = scratch.margins();
    for (i, (&id, word)) in ids.iter().zip(words).enumerate() {
        recipe_obs::provenance::record(recipe_obs::provenance::Record {
            kind: "viterbi.margin",
            site,
            subject: word.clone(),
            decision: model.labels().name(id).to_string(),
            detail: String::new(),
            index: i,
            margin: margins.get(i).copied().filter(|m| m.is_finite()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_is_injective_on_token_boundaries() {
        let a = cache_key(&["ab".to_string(), "c".to_string()]);
        let b = cache_key(&["a".to_string(), "bc".to_string()]);
        let c = cache_key(&["ab c".to_string()]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(cache_key(&[]), "");
    }

    #[test]
    fn sharded_cache_bounds_capacity_and_counts() {
        let reg = recipe_obs::Registry::new();
        let cache: ShardedCache<usize> = ShardedCache::new(CACHE_SHARDS * 2, &reg, "cache.test");
        assert_eq!(cache.per_shard_capacity, 2);
        for i in 0..200 {
            let key = format!("key-{i}");
            if cache.get(&key).is_none() {
                cache.insert(key, i);
            }
        }
        let stats = cache.stats();
        assert!(stats.entries <= CACHE_SHARDS * 2, "{}", stats.entries);
        assert_eq!(stats.misses, 200);
        // Full shards refuse inserts; stored values stay correct.
        for i in 0..200 {
            if let Some(v) = cache.get(&format!("key-{i}")) {
                assert_eq!(v, i);
            }
        }
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (0, 0, 0));
    }

    #[test]
    fn cache_stats_hit_rate() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let merged = s.merged(&CacheStats {
            hits: 1,
            misses: 3,
            entries: 2,
        });
        assert_eq!((merged.hits, merged.misses, merged.entries), (4, 4, 3));
    }
}
